#!/usr/bin/env python3
"""Quickstart: the DOSAS public API in five minutes.

Three things happen here:

1. A single active read through the enhanced MPI-IO interface
   (``MPI_File_read_ex`` with the paper's ``struct result``), with the
   kernel really executing on real bytes — the result is checked
   against a local computation.
2. The paper's three schemes (TS / AS / DOSAS) compared at one
   contention point.
3. The contention crossover: sweep the request count and watch
   DOSAS track whichever baseline is winning.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MB, Scheme, WorkloadSpec, run_scheme
from repro.sim import Environment
from repro.cluster.config import NodeSpec, discfarm_config
from repro.cluster.probe import NodeProber
from repro.cluster.topology import ClusterTopology
from repro.core import ActiveStorageClient, ActiveStorageServer, DOSASEstimator
from repro.core.schemes import cost_models_from_registry
from repro.kernels.registry import default_registry
from repro.mpiio import DOUBLE, MPIIOContext, ResultStruct, Status
from repro.pvfs import IOServer, MetadataServer, PVFSClient


def single_active_read() -> None:
    """One MPI_File_read_ex call, end to end, with a verified result."""
    print("=== 1. One active read through the MPI-IO interface ===")
    env = Environment()
    config = discfarm_config(n_storage=1, n_compute=1)
    topo = ClusterTopology(env, config)
    mds = MetadataServer(n_io_servers=1, default_stripe_size=config.stripe_size)

    server = IOServer(env, topo.storage_node(0), topo.link_for(topo.storage_node(0)),
                      mds, config)
    prober = NodeProber(server.node, server.queue_stats)
    estimator = DOSASEstimator(
        prober=prober,
        kernel_models=cost_models_from_registry(default_registry),
        bandwidth=config.network_bandwidth,
    )
    from repro.core.runtime import RuntimeConfig
    ActiveStorageServer(env, server, estimator,
                        config=RuntimeConfig(execute_kernels=True))

    # An 8 MB file of synthetic float64 data.
    file = mds.create("/data/simulation_output", size=8 * MB, seed=7)
    node = topo.compute_node(0)
    asc = ActiveStorageClient(env, node, PVFSClient(env, node, [server], mds),
                              execute_kernels=True)
    ctx = MPIIOContext(env, asc)

    def app():
        fh = ctx.open("/data/simulation_output")
        result = ResultStruct()
        status = Status()
        count = fh.get_size() // DOUBLE.size
        yield from fh.read_ex(result, count, DOUBLE, "sum", status)
        return result, status

    result, status = env.run(until=env.process(app()))
    expected = float(np.sum(mds.lookup("/data/simulation_output")
                            .read_bytes_as_array(0, 8 * MB)))
    print(f"  completed={int(result.completed)}  sum={result.buf:.6f}  "
          f"expected={expected:.6f}")
    print(f"  simulated time: {status.finished_at:.4f}s, "
          f"demotions: {status.demotions}")
    assert abs(result.buf - expected) < 1e-6
    print("  result verified.\n")


def compare_schemes() -> None:
    """TS vs AS vs DOSAS at one contention point (paper Fig. 7)."""
    print("=== 2. The three schemes at 8 requests x 128 MB (Gaussian) ===")
    spec = WorkloadSpec(kernel="gaussian2d", n_requests=8, request_bytes=128 * MB)
    for scheme in Scheme:
        r = run_scheme(scheme, spec)
        print(f"  {scheme.value.upper():6s} makespan={r.makespan:7.2f}s  "
              f"bandwidth={r.bandwidth / MB:6.1f} MB/s  "
              f"(active={r.served_active}, demoted={r.demoted})")
    print()


def crossover_sweep() -> None:
    """The resource-contention crossover (paper Fig. 2/4)."""
    print("=== 3. Contention crossover, Gaussian filter, 128 MB requests ===")
    print(f"  {'n':>4s} {'TS':>8s} {'AS':>8s} {'DOSAS':>8s}   winner tracked?")
    for n in (1, 2, 4, 8, 16, 32, 64):
        spec = WorkloadSpec(kernel="gaussian2d", n_requests=n,
                            request_bytes=128 * MB)
        t = {s: run_scheme(s, spec).makespan for s in Scheme}
        best = min(t[Scheme.TS], t[Scheme.AS])
        tracked = "yes" if t[Scheme.DOSAS] <= best * 1.05 else "NO"
        print(f"  {n:4d} {t[Scheme.TS]:8.2f} {t[Scheme.AS]:8.2f} "
              f"{t[Scheme.DOSAS]:8.2f}   {tracked}")
    print("\n  AS wins at low contention, TS at high; DOSAS follows the winner.")


if __name__ == "__main__":
    single_active_read()
    compare_schemes()
    crossover_sweep()
