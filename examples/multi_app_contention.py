#!/usr/bin/env python3
"""The Figure-1 scenario: several applications contending for storage.

The paper's core observation is that on production machines "there may
be dozens of applications running concurrently", all funnelling normal
*and* active I/O into the same storage nodes.  This example builds that
mix with the workload generator:

* ``imaging``  — bursty active Gaussian-filter jobs (compute-heavy);
* ``climate``  — streaming active SUM reductions (network-saving);
* ``backup``   — large normal reads (pure bandwidth consumer).

All three share two storage nodes.  We run the mix under TS, AS and
DOSAS and report per-application latency — showing DOSAS both
protecting the storage nodes from kernel pile-up *and* exploiting them
when there is headroom, and exercising the interrupt/migrate path under
dynamic (Poisson) arrivals.

Run:  python examples/multi_app_contention.py
"""

from repro import MB, Scheme
from repro.core import WorkloadSpec, run_plan
from repro.workload import (
    ArrivalPattern,
    BatchApplication,
    StreamingApplication,
    WorkloadGenerator,
)


def build_plan(seed: int = 42):
    apps = [
        BatchApplication("imaging", n_processes=8, size=256 * MB,
                         operation="gaussian2d"),
        StreamingApplication("climate", n_processes=4, size=512 * MB,
                             rounds=3, think_time=5.0, operation="sum"),
        BatchApplication("backup", n_processes=4, size=1024 * MB),
    ]
    return WorkloadGenerator(seed=seed).plan(
        apps, pattern=ArrivalPattern.POISSON, rate=0.5
    )


def main() -> None:
    plan = build_plan()
    print(f"Workload: {len(plan)} requests, "
          f"{plan.total_bytes // MB} MB total, "
          f"{plan.active_fraction:.0%} active I/O\n")

    spec = WorkloadSpec(n_storage=2, probe_period=0.25)
    print(f"{'scheme':8s} {'makespan':>9s} {'mean lat':>9s}  "
          f"{'imaging':>8s} {'climate':>8s} {'backup':>8s}   decisions")
    for scheme in Scheme:
        r = run_plan(scheme, plan, spec)
        by_app = {
            app: sum(lats) / len(lats)
            for app, lats in r.latencies_by_app().items()
        }
        print(f"{scheme.value:8s} {r.makespan:9.1f} {r.mean_latency:9.1f}  "
              f"{by_app['imaging']:8.1f} {by_app['climate']:8.1f} "
              f"{by_app['backup']:8.1f}   "
              f"offloaded={r.served_active} demoted={r.demoted} "
              f"migrated={r.interrupted}")

    print("\nDOSAS keeps the cheap SUM reductions on storage, pushes the "
          "expensive filters\nback to clients when the queue builds up, and "
          "migrates in-flight kernels when\nthe balance shifts — per-request "
          "decisions no static scheme can make.")


if __name__ == "__main__":
    main()
