#!/usr/bin/env python3
"""Medical-image smoothing on active storage — the paper's motivating
Gaussian-filter domain ("widely used in the area of geographic
information systems and medical image processing").

A radiology archive holds a batch of scans on the parallel file
system.  A cohort-analysis job smooths every scan.  We run the job at
two cluster loads:

* quiet night shift — 2 concurrent scan reads per storage node;
* busy morning      — 12 concurrent scan reads per storage node;

and show that DOSAS offloads the filter at night (active storage
pays off) but pulls the computation back to the clients in the
morning rush (contention would overload the 2-core storage node).

With ``--verify`` the run uses small real images and bit-exactly
checks every filtered output against a one-shot reference filter,
including any scan whose kernel was interrupted mid-flight and
migrated to a client.

Run:  python examples/medical_imaging.py [--verify]
"""

import sys

import numpy as np

from repro import MB, Scheme, WorkloadSpec, run_scheme
from repro.kernels import get_kernel
from repro.pvfs.filehandle import SyntheticData


def run_shift(name: str, n_scans: int, scan_bytes: int, verify: bool) -> None:
    print(f"--- {name}: {n_scans} concurrent scans of {scan_bytes // MB} MB ---")
    spec = WorkloadSpec(
        kernel="gaussian2d",
        n_requests=n_scans,
        request_bytes=scan_bytes,
        execute_kernels=verify,
        image_width=512 if verify else 1024,
    )
    results = {scheme: run_scheme(scheme, spec) for scheme in Scheme}
    for scheme, r in results.items():
        print(f"  {scheme.value.upper():6s} {r.makespan:8.2f}s  "
              f"offloaded={r.served_active}/{n_scans}  demoted={r.demoted}")

    dosas = results[Scheme.DOSAS]
    best = min(results[Scheme.TS].makespan, results[Scheme.AS].makespan)
    print(f"  DOSAS within {100 * (dosas.makespan / best - 1):.1f}% of the "
          f"better baseline")

    if verify:
        kernel = get_kernel("gaussian2d")
        for i, output in enumerate(dosas.results):
            scan = SyntheticData(i).read(0, scan_bytes).reshape(-1, 512)
            reference = kernel.reference(scan)
            assert output is not None and np.allclose(output, reference), (
                f"scan {i} output diverged from reference"
            )
        print(f"  all {n_scans} filtered scans verified bit-exact "
              f"(including migrated ones)")
    print()


def main() -> None:
    verify = "--verify" in sys.argv
    scan_bytes = 2 * MB if verify else 256 * MB
    run_shift("Night shift (low contention)", 2, scan_bytes, verify)
    run_shift("Morning rush (high contention)", 12, scan_bytes, verify)
    print("DOSAS offloads when storage has headroom and demotes under "
          "contention — per-shift decisions, no application changes.")


if __name__ == "__main__":
    main()
