#!/usr/bin/env python3
"""Climate-model post-processing: reductions over large output dumps.

The paper's introduction motivates active storage with climate
modelling ("the data volume processed in climate modeling ... can
easily range from 100TBs to 10PBs").  A post-processing campaign
computes global statistics (sum, mean, min/max, variance, histogram)
over each timestep dump.  Reductions return a handful of bytes from
hundreds of megabytes — the ideal active-storage workload (paper
Fig. 6: AS always beats TS for SUM).

This example runs the campaign at paper scale in timing mode, then a
scaled-down verified pass where every statistic is checked against
numpy computed locally.

Run:  python examples/climate_reduction.py
"""

import numpy as np

from repro import GB, MB, Scheme, WorkloadSpec, run_scheme
from repro.analysis import improvement
from repro.pvfs.filehandle import SyntheticData

TIMESTEP_BYTES = 1 * GB
TIMESTEPS_PER_NODE = 16


def timing_campaign() -> None:
    print(f"=== Reductions over {TIMESTEPS_PER_NODE} timesteps x "
          f"{TIMESTEP_BYTES // GB} GB per storage node ===")
    for op in ("sum", "mean", "minmax", "variance"):
        spec = WorkloadSpec(kernel=op, n_requests=TIMESTEPS_PER_NODE,
                            request_bytes=TIMESTEP_BYTES)
        ts = run_scheme(Scheme.TS, spec)
        dosas = run_scheme(Scheme.DOSAS, spec)
        gain = improvement(ts.makespan, dosas.makespan)
        print(f"  {op:10s} TS={ts.makespan:8.1f}s  DOSAS={dosas.makespan:8.1f}s  "
              f"({100 * gain:4.1f}% faster, offloaded "
              f"{dosas.served_active}/{TIMESTEPS_PER_NODE})")
    print()


def verified_campaign() -> None:
    print("=== Scaled-down verified pass (4 timesteps x 4 MB) ===")
    n, size = 4, 4 * MB
    checks = {
        "sum": lambda d: d.sum(),
        "mean": lambda d: (d.mean(), d.size),
        "minmax": lambda d: (d.min(), d.max()),
        "variance": lambda d: (d.var(), d.mean(), d.size),
        "threshold_count": lambda d: int((d > 0.5).sum()),
    }
    for op, oracle in checks.items():
        spec = WorkloadSpec(kernel=op, n_requests=n, request_bytes=size,
                            execute_kernels=True)
        result = run_scheme(Scheme.DOSAS, spec)
        for i in range(n):
            data = SyntheticData(i).read(0, size)
            expected = oracle(data)
            got = result.results[i]
            assert np.allclose(np.asarray(got, dtype=np.float64),
                               np.asarray(expected, dtype=np.float64)), (
                f"{op} timestep {i}: {got} != {expected}"
            )
        print(f"  {op:16s} all {n} results verified against numpy")
    print("\nEvery reduction a downstream tool would consume is "
          "numerically identical to computing it locally.")


if __name__ == "__main__":
    timing_campaign()
    verified_campaign()
