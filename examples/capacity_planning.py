#!/usr/bin/env python3
"""Capacity planning with the analytic advisor + a collective verify.

An operator is sizing the I/O subsystem for a new analysis campaign:
filters at several request sizes, on machines with different
storage-node strengths.  The advisor answers instantly from the
paper's cost model (Eq. 1–7); one point is then verified both by the
event simulator and by an end-to-end collective MPI-IO run
(``read_ex_all``) with real data.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import MB, Scheme, WorkloadSpec, run_scheme
from repro.cluster.config import NodeSpec, discfarm_config
from repro.core import Advisor


def what_if_tables() -> None:
    print("=== 1. What-if: where does contention bite? ===")
    advisor = Advisor()
    print(f"  {'kernel':12s} {'request':>8s}  TS-beats-AS at")
    for kernel in ("gaussian2d", "sobel", "sum"):
        for mb in (128, 512):
            crossover = advisor.crossover(kernel, mb * MB, max_requests=128)
            label = f"{crossover} requests" if crossover else "never (≤128)"
            print(f"  {kernel:12s} {mb:6d}MB  {label}")
    print()

    print("=== 2. What-if: beefier storage nodes ===")
    for speed in (1.0, 2.0, 4.0):
        cfg = discfarm_config().with_(
            storage_spec=NodeSpec(cores=2, core_speed=speed))
        a = Advisor(cfg)
        crossover = a.crossover("gaussian2d", 256 * MB, max_requests=256)
        p = a.predict("gaussian2d", [256 * MB] * 16)
        print(f"  storage {speed:.0f}x: crossover at "
              f"{crossover or '>256'} requests; at n=16 recommend "
              f"{p.recommended.value.upper()} "
              f"(TS {p.t_traditional:.1f}s / AS {p.t_active:.1f}s / "
              f"DOSAS {p.t_dosas:.1f}s)")
    print()


def verify_one_point() -> None:
    print("=== 3. Verify one plan point against the simulator ===")
    advisor = Advisor()
    pred = advisor.predict("gaussian2d", [256 * MB] * 8)
    sim = {
        s: run_scheme(s, WorkloadSpec(kernel="gaussian2d", n_requests=8,
                                      request_bytes=256 * MB)).makespan
        for s in Scheme
    }
    print(f"  {'':8s} {'predicted':>10s} {'simulated':>10s}")
    for scheme, predicted in ((Scheme.TS, pred.t_traditional),
                              (Scheme.AS, pred.t_active),
                              (Scheme.DOSAS, pred.t_dosas)):
        print(f"  {scheme.value.upper():8s} {predicted:10.2f} "
              f"{sim[scheme]:10.2f}")
    assert abs(pred.t_dosas - sim[Scheme.DOSAS]) / sim[Scheme.DOSAS] < 0.01
    print("  analytic model within 1% of the event simulation\n")


def collective_end_to_end() -> None:
    print("=== 4. End-to-end collective read_ex_all (4 ranks, verified) ===")
    from repro.sim import Environment
    from repro.cluster import ClusterTopology, NodeProber
    from repro.core import ActiveStorageClient, ActiveStorageServer, DOSASEstimator
    from repro.core.runtime import RuntimeConfig
    from repro.core.schemes import cost_models_from_registry
    from repro.kernels.registry import default_registry
    from repro.mpiio import Communicator, DOUBLE, MPIIOContext
    from repro.pvfs import IOServer, MetadataServer, PVFSClient

    env = Environment()
    config = discfarm_config(n_storage=1, n_compute=4)
    topo = ClusterTopology(env, config)
    mds = MetadataServer(1, config.stripe_size)
    server = IOServer(env, topo.storage_node(0),
                      topo.link_for(topo.storage_node(0)), mds, config)
    estimator = DOSASEstimator(
        prober=NodeProber(server.node, server.queue_stats),
        kernel_models=cost_models_from_registry(default_registry),
        bandwidth=config.network_bandwidth,
    )
    ActiveStorageServer(env, server, estimator,
                        config=RuntimeConfig(execute_kernels=True))
    mds.create("/campaign/field", size=8 * MB, seed=99)

    contexts = []
    for i in range(4):
        node = topo.compute_node(i)
        asc = ActiveStorageClient(env, node,
                                  PVFSClient(env, node, [server], mds),
                                  execute_kernels=True)
        contexts.append(MPIIOContext(env, asc))
    comm = Communicator(contexts)
    files = comm.open_all("/campaign/field")

    def job():
        outcomes = yield from comm.read_ex_all(
            files, 8 * MB // 8, DOUBLE, "sum")
        return outcomes, env.now

    outcomes, t = env.run(until=env.process(job()))
    total = sum(o.result for o in outcomes)
    expected = float(mds.lookup("/campaign/field")
                     .read_bytes_as_array(0, 8 * MB).sum())
    assert abs(total - expected) < 1e-6
    print(f"  4 ranks reduced 8 MB collectively in {t * 1000:.1f} ms "
          f"(simulated); sum verified: {total:.4f}")


if __name__ == "__main__":
    what_if_tables()
    verify_one_point()
    collective_end_to_end()
