"""Turning application declarations into concrete request plans.

A :class:`RequestPlan` fixes, for every request: which process issues
it, when (arrival pattern), how large, active/normal, and which kernel.
Plans are deterministic under a seed, so any experiment is replayable.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.workload.apps import Application, RequestTemplate


class ArrivalPattern(enum.Enum):
    """When processes issue their first request."""

    BATCH = "batch"          # all at t=0 (the paper's experiments)
    UNIFORM = "uniform"      # evenly spaced over a window
    POISSON = "poisson"      # exponential inter-arrivals


@dataclass(frozen=True)
class PlannedRequest:
    """One fully specified request."""

    app: str
    process_index: int
    sequence: int
    arrival_time: float
    size: int
    active: bool
    operation: Optional[str]

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")


@dataclass
class RequestPlan:
    """A deterministic, ordered request schedule."""

    requests: List[PlannedRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[PlannedRequest]:
        return iter(self.requests)

    @property
    def total_bytes(self) -> int:
        """Aggregate data requested."""
        return sum(r.size for r in self.requests)

    @property
    def active_fraction(self) -> float:
        """Fraction of requests that are active I/O."""
        if not self.requests:
            return 0.0
        return sum(1 for r in self.requests if r.active) / len(self.requests)

    def by_process(self) -> dict:
        """(app, process) → list of requests, arrival-ordered."""
        out: dict = {}
        for req in self.requests:
            out.setdefault((req.app, req.process_index), []).append(req)
        for reqs in out.values():
            reqs.sort(key=lambda r: (r.arrival_time, r.sequence))
        return out


class WorkloadGenerator:
    """Builds :class:`RequestPlan` objects from applications."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def plan(
        self,
        applications: Sequence[Application],
        pattern: ArrivalPattern = ArrivalPattern.BATCH,
        window: float = 0.0,
        rate: float = 1.0,
    ) -> RequestPlan:
        """Generate a plan.

        Parameters
        ----------
        applications:
            The contending applications (Figure 1's APP1 … APPm).
        pattern:
            First-request arrival discipline.
        window:
            UNIFORM: the spread of first arrivals.
        rate:
            POISSON: arrivals per second.
        """
        rng = random.Random(self.seed)
        plan = RequestPlan()
        for app in applications:
            for pidx in range(app.n_processes):
                start = self._first_arrival(rng, pattern, window, rate)
                clock = start
                for seq, template in enumerate(app.requests_for(pidx)):
                    plan.requests.append(
                        PlannedRequest(
                            app=app.name,
                            process_index=pidx,
                            sequence=seq,
                            arrival_time=clock,
                            size=template.size,
                            active=template.active,
                            operation=template.operation,
                        )
                    )
                    clock += template.think_time
        plan.requests.sort(key=lambda r: (r.arrival_time, r.app, r.process_index, r.sequence))
        return plan

    @staticmethod
    def _first_arrival(
        rng: random.Random, pattern: ArrivalPattern, window: float, rate: float
    ) -> float:
        if pattern is ArrivalPattern.BATCH:
            return 0.0
        if pattern is ArrivalPattern.UNIFORM:
            if window < 0:
                raise ValueError("window must be non-negative")
            return rng.uniform(0.0, window)
        if pattern is ArrivalPattern.POISSON:
            if rate <= 0:
                raise ValueError("rate must be positive")
            return rng.expovariate(rate)
        raise ValueError(f"unknown pattern {pattern}")
