"""The paper's experimental grids.

Sec. IV-A: "we evaluated the situations when each storage node
processes 1, 2, 4, 8, 16, 32 and 64 active I/O requests, and each I/O
requesting 128MB, 256MB, 512MB and 1GB data respectively."

Sec. IV-B.2: "With each benchmark requesting different numbers of I/O
requests and each I/O requesting different data sizes, we generated 64
situations to evaluate the algorithm."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.cluster.config import GB, MB

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.schemes import Scheme
    from repro.parallel import SweepPoint

#: Requests per storage node (paper Sec. IV-A).
PAPER_REQUEST_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: Per-request data sizes (paper Sec. IV-A).
PAPER_REQUEST_SIZES: Tuple[int, ...] = (128 * MB, 256 * MB, 512 * MB, 1 * GB)

#: The two evaluated benchmarks (paper Table III).
PAPER_KERNELS: Tuple[str, ...] = ("sum", "gaussian2d")


@dataclass(frozen=True)
class Situation:
    """One scheduling-evaluation point (a Table IV row)."""

    index: int
    kernel: str
    n_requests: int
    request_bytes: int

    def label(self) -> str:
        """Human-readable id like ``gaussian2d/8x256MB``."""
        return f"{self.kernel}/{self.n_requests}x{self.request_bytes // MB}MB"


def paper_grid(kernel: str) -> Iterator[Tuple[int, int]]:
    """(n_requests, request_bytes) pairs of the paper's full sweep."""
    for size in PAPER_REQUEST_SIZES:
        for count in PAPER_REQUEST_COUNTS:
            yield count, size


def table4_situations() -> List[Situation]:
    """The 64 situations of the scheduling-algorithm evaluation.

    The paper's canonical grid gives 2 kernels × 7 counts × 4 sizes =
    56 situations; the paper reports 64.  We add 8 boundary-probing
    Gaussian points around the small/large crossover (3–6 requests at
    the two smaller sizes), where Sec. IV-B.2 locates the algorithm's
    misjudgments — making the extra rows the interesting ones.
    """
    situations: List[Situation] = []
    index = 1
    for kernel in PAPER_KERNELS:
        for count in PAPER_REQUEST_COUNTS:
            for size in PAPER_REQUEST_SIZES:
                situations.append(Situation(index, kernel, count, size))
                index += 1
    for count in (3, 5, 6, 7):
        for size in (128 * MB, 512 * MB):
            situations.append(Situation(index, "gaussian2d", count, size))
            index += 1
    assert len(situations) == 64
    return situations


# ----------------------------------------------------- grids as sweep points
def figure_sweep_points(
    kernel: str,
    request_bytes: int,
    schemes: Sequence["Scheme"],
    counts: Sequence[int] = PAPER_REQUEST_COUNTS,
    jitter: bool = False,
    seed: Optional[int] = None,
    **spec_overrides,
) -> List["SweepPoint"]:
    """One figure's grid as independent :class:`~repro.parallel.SweepPoint`\\ s.

    Point order is count-major then scheme (the serial loop order of
    the figure drivers), so a runner's merged results line up with the
    historical series layout.
    """
    from repro.core.schemes import WorkloadSpec
    from repro.parallel import SweepPoint

    points: List[SweepPoint] = []
    for n in counts:
        spec = WorkloadSpec(
            kernel=kernel,
            n_requests=n,
            request_bytes=request_bytes,
            jitter=jitter,
            seed=seed,
            **spec_overrides,
        )
        for scheme in schemes:
            points.append(SweepPoint(
                scheme, spec,
                label=f"{kernel}/{n}x{request_bytes // MB}MB",
            ))
    return points


def paper_grid_points(
    kernel: str,
    schemes: Sequence["Scheme"],
    sizes: Sequence[int] = PAPER_REQUEST_SIZES,
    counts: Sequence[int] = PAPER_REQUEST_COUNTS,
    **spec_overrides,
) -> List["SweepPoint"]:
    """The paper's full Sec. IV-A sweep (all sizes × counts) as points."""
    points: List["SweepPoint"] = []
    for size in sizes:
        points.extend(
            figure_sweep_points(kernel, size, schemes, counts=counts,
                                **spec_overrides)
        )
    return points
