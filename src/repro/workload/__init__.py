"""Workload generation: applications, arrival processes, sweep grids.

The paper's evaluation workload is simple — n identical processes per
storage node, each issuing one active I/O of d bytes ("we used one
benchmark but ran it with multiple instances each time") — but the
motivation (Figure 1) is many *applications* contending.  This package
provides both: the exact paper grids (``sweeps``) and richer
multi-application mixes (``apps``/``generator``) used by the examples
and the extension benchmarks.
"""

from repro.workload.apps import (
    Application,
    BatchApplication,
    MixedApplication,
    StreamingApplication,
)
from repro.workload.generator import ArrivalPattern, RequestPlan, WorkloadGenerator
from repro.workload.sweeps import (
    PAPER_REQUEST_COUNTS,
    PAPER_REQUEST_SIZES,
    paper_grid,
    table4_situations,
)
from repro.workload.traces import TraceRecord, load_trace, save_trace

__all__ = [
    "Application",
    "ArrivalPattern",
    "BatchApplication",
    "MixedApplication",
    "PAPER_REQUEST_COUNTS",
    "PAPER_REQUEST_SIZES",
    "RequestPlan",
    "StreamingApplication",
    "TraceRecord",
    "WorkloadGenerator",
    "load_trace",
    "paper_grid",
    "save_trace",
    "table4_situations",
]
