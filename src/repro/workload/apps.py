"""Application models for multi-application contention studies.

Figure 1 of the paper shows several applications (APP1 … APPm) whose
processes all funnel I/O into the same storage nodes.  These classes
describe such applications declaratively; ``WorkloadGenerator`` turns
them into concrete request plans.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class RequestTemplate:
    """One I/O operation an application process will issue."""

    size: int
    active: bool
    operation: Optional[str] = None
    think_time: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("request size must be positive")
        if self.active and not self.operation:
            raise ValueError("active requests need an operation")
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")


class Application(abc.ABC):
    """A named group of processes issuing requests."""

    def __init__(self, name: str, n_processes: int) -> None:
        if n_processes <= 0:
            raise ValueError("n_processes must be positive")
        self.name = name
        self.n_processes = n_processes

    @abc.abstractmethod
    def requests_for(self, process_index: int) -> Iterator[RequestTemplate]:
        """The ordered request sequence of one process."""

    def total_requests(self) -> int:
        """Requests across all processes."""
        return sum(
            sum(1 for _ in self.requests_for(i)) for i in range(self.n_processes)
        )


class BatchApplication(Application):
    """Every process issues exactly one request (the paper's workload)."""

    def __init__(
        self,
        name: str,
        n_processes: int,
        size: int,
        operation: Optional[str] = None,
    ) -> None:
        super().__init__(name, n_processes)
        self.template = RequestTemplate(
            size=size, active=operation is not None, operation=operation
        )

    def requests_for(self, process_index: int) -> Iterator[RequestTemplate]:
        yield self.template


class StreamingApplication(Application):
    """Each process issues ``rounds`` requests with think time between."""

    def __init__(
        self,
        name: str,
        n_processes: int,
        size: int,
        rounds: int,
        think_time: float = 0.0,
        operation: Optional[str] = None,
    ) -> None:
        super().__init__(name, n_processes)
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        self.rounds = rounds
        self.template = RequestTemplate(
            size=size,
            active=operation is not None,
            operation=operation,
            think_time=think_time,
        )

    def requests_for(self, process_index: int) -> Iterator[RequestTemplate]:
        for _ in range(self.rounds):
            yield self.template


class MixedApplication(Application):
    """Processes alternate an explicit list of request templates."""

    def __init__(
        self, name: str, n_processes: int, templates: List[RequestTemplate]
    ) -> None:
        super().__init__(name, n_processes)
        if not templates:
            raise ValueError("templates must be non-empty")
        self.templates = list(templates)

    def requests_for(self, process_index: int) -> Iterator[RequestTemplate]:
        yield from self.templates
