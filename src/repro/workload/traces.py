"""Request-trace persistence (record/replay tooling).

Simple JSON-lines format so experiment inputs can be archived next to
their outputs and replayed exactly.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Union

from repro.workload.generator import PlannedRequest, RequestPlan


@dataclass(frozen=True)
class TraceRecord:
    """Serialised form of one planned request."""

    app: str
    process_index: int
    sequence: int
    arrival_time: float
    size: int
    active: bool
    operation: str = ""


def save_trace(plan: RequestPlan, path: Union[str, Path]) -> int:
    """Write ``plan`` as JSON lines; returns the record count."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fp:
        for req in plan:
            record = TraceRecord(
                app=req.app,
                process_index=req.process_index,
                sequence=req.sequence,
                arrival_time=req.arrival_time,
                size=req.size,
                active=req.active,
                operation=req.operation or "",
            )
            fp.write(json.dumps(asdict(record)) + "\n")
    return len(plan)


def load_trace(path: Union[str, Path]) -> RequestPlan:
    """Read a JSON-lines trace back into a plan."""
    path = Path(path)
    plan = RequestPlan()
    with path.open("r", encoding="utf-8") as fp:
        for line_no, line in enumerate(fp, 1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: bad JSON: {exc}") from exc
            plan.requests.append(
                PlannedRequest(
                    app=raw["app"],
                    process_index=int(raw["process_index"]),
                    sequence=int(raw["sequence"]),
                    arrival_time=float(raw["arrival_time"]),
                    size=int(raw["size"]),
                    active=bool(raw["active"]),
                    operation=raw.get("operation") or None,
                )
            )
    plan.requests.sort(key=lambda r: (r.arrival_time, r.app, r.process_index, r.sequence))
    return plan
