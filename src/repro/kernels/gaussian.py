"""The 2-D Gaussian filter benchmark kernel (paper Table III).

"9 multiplication operations, 9 addition operations and 1 divide
operation per data item" — a 3×3 Gaussian convolution, "widely used in
the area of geographic information systems and medical image
processing".  80 MB/s/core on Discfarm: *below* the 118 MB/s network,
which is what creates the contention crossover the whole paper is
about.

Streaming model: the image arrives row-block by row-block; each block
is filtered with a one-row halo carried in the state, so interrupting
between blocks and resuming elsewhere yields a bit-identical image.
The filtered output is written back to the parallel file system at the
producing node (Son et al. [22] kernel convention), so only a small
acknowledgement crosses the network — ``result_bytes`` is ~4 KB.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.kernels.base import Kernel, KernelExecutionError, KernelState
from repro.kernels.costs import PAPER_RATES, ack_result

#: The classic 3×3 Gaussian mask with 1/16 normalisation: 9 multiplies,
#: 9 adds (8 adds of products + rounding add) and 1 divide per pixel —
#: the paper's Table III operation count.
GAUSS3 = np.array([[1.0, 2.0, 1.0], [2.0, 4.0, 2.0], [1.0, 2.0, 1.0]])
GAUSS3_NORM = 16.0


def gaussian_filter_rows(
    block: np.ndarray, top_halo: Optional[np.ndarray], bottom_halo: Optional[np.ndarray]
) -> np.ndarray:
    """Filter a row block given its halo rows (edge-replicated).

    Pure function so the property tests can compare block-wise
    streaming against one-shot filtering.
    """
    rows = [block]
    if top_halo is not None:
        rows.insert(0, top_halo.reshape(1, -1))
    else:
        rows.insert(0, block[:1])
    if bottom_halo is not None:
        rows.append(bottom_halo.reshape(1, -1))
    else:
        rows.append(block[-1:])
    padded = np.vstack(rows)
    # Replicate the left/right edges.
    padded = np.pad(padded, ((0, 0), (1, 1)), mode="edge")

    out = np.zeros_like(block)
    h = block.shape[0]
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            w = GAUSS3[dy + 1, dx + 1]
            out += w * padded[1 + dy : 1 + dy + h, 1 + dx : 1 + dx + block.shape[1]]
    return out / GAUSS3_NORM


class Gaussian2DKernel(Kernel):
    """3×3 Gaussian smoothing over a row-major float64 image."""

    name = "gaussian2d"
    default_rate = PAPER_RATES["gaussian2d"]
    dtype = np.dtype(np.float64)
    writes_output = True

    def result_bytes(self, input_bytes: float) -> float:
        return ack_result(input_bytes)

    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        if not meta or "width" not in meta:
            raise KernelExecutionError(
                "gaussian2d needs meta={'width': <pixels per row>}"
            )
        width = int(meta["width"])
        if width <= 0:
            raise KernelExecutionError(f"width must be positive, got {width}")
        state = KernelState()
        state["width"] = width
        #: Carry-over of incomplete trailing row elements.
        state["leftover"] = np.empty(0, dtype=np.float64)
        #: The last complete-but-unfiltered row block is held back one
        #: step so its bottom halo is available (pending rows).
        state["pending"] = np.empty((0, width), dtype=np.float64).reshape(-1)
        state["pending_rows"] = 0
        #: Bottom row of the block *before* pending (its top halo).
        state["halo"] = np.empty(0, dtype=np.float64)
        state["out_rows"] = 0
        #: Accumulated filtered output (flattened rows).
        state["output"] = np.empty(0, dtype=np.float64)
        return state

    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        width = state["width"]
        data = np.concatenate([state["leftover"], np.asarray(chunk, dtype=np.float64)])
        nrows = data.size // width
        state["leftover"] = data[nrows * width :].copy()
        if nrows == 0:
            return
        rows = data[: nrows * width].reshape(nrows, width)

        pending_rows = state["pending_rows"]
        if pending_rows:
            pending = state["pending"].reshape(pending_rows, width)
            top = state["halo"] if state["halo"].size else None
            filtered = gaussian_filter_rows(pending, top, rows[0])
            state["output"] = np.concatenate([state["output"], filtered.reshape(-1)])
            state["out_rows"] = state["out_rows"] + pending_rows
            state["halo"] = pending[-1].copy()

        # The new rows become pending except that all-but-last can be
        # filtered right away using the last row as their bottom halo.
        if nrows > 1:
            top = state["halo"] if state["halo"].size else None
            filtered = gaussian_filter_rows(rows[:-1], top, rows[-1])
            state["output"] = np.concatenate([state["output"], filtered.reshape(-1)])
            state["out_rows"] = state["out_rows"] + (nrows - 1)
            state["halo"] = rows[-2].copy()

        state["pending"] = rows[-1].copy()
        state["pending_rows"] = 1

    def finalize(self, state: KernelState) -> np.ndarray:
        width = state["width"]
        if state["leftover"].size:
            raise KernelExecutionError(
                f"input was not a whole number of rows: {state['leftover'].size} "
                f"trailing elements (width={width})"
            )
        if state["pending_rows"]:
            pending = state["pending"].reshape(state["pending_rows"], width)
            top = state["halo"] if state["halo"].size else None
            filtered = gaussian_filter_rows(pending, top, None)
            state["output"] = np.concatenate([state["output"], filtered.reshape(-1)])
            state["out_rows"] = state["out_rows"] + state["pending_rows"]
            state["pending"] = np.empty(0, dtype=np.float64)
            state["pending_rows"] = 0
        return state["output"].reshape(state["out_rows"], width)

    def reference(self, image: np.ndarray) -> np.ndarray:
        """One-shot filter of a whole image (test oracle)."""
        return gaussian_filter_rows(np.asarray(image, dtype=np.float64), None, None)
