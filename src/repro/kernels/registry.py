"""Kernel registry — PK deployment at both compute and storage side.

The paper deploys the Processing Kernels "both at storage nodes and
compute nodes" so a demoted active I/O can be finished client-side
"without further application intervention".  A :class:`KernelRegistry`
is therefore instantiated once per side; the module-level default
registry is pre-populated with every built-in kernel.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.kernels.base import Kernel, KernelExecutionError


class KernelRegistry:
    """Name → kernel-factory mapping with instance caching."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], Kernel]] = {}
        self._instances: Dict[str, Kernel] = {}

    def register(self, kernel_cls: Type[Kernel], **kwargs) -> Type[Kernel]:
        """Register a kernel class (usable as a decorator).

        ``kwargs`` are fixed constructor arguments (e.g. histogram bin
        count for a named variant).
        """
        name = kernel_cls.name
        if not name:
            raise KernelExecutionError(f"{kernel_cls.__name__} has no name")
        if name in self._factories:
            raise KernelExecutionError(f"kernel {name!r} already registered")
        self._factories[name] = lambda: kernel_cls(**kwargs)
        return kernel_cls

    def register_factory(self, name: str, factory: Callable[[], Kernel]) -> None:
        """Register an arbitrary zero-arg factory under ``name``."""
        if name in self._factories:
            raise KernelExecutionError(f"kernel {name!r} already registered")
        self._factories[name] = factory

    def get(self, name: str) -> Kernel:
        """A (cached) kernel instance for ``name``."""
        if name not in self._instances:
            try:
                factory = self._factories[name]
            except KeyError:
                raise KernelExecutionError(
                    f"unknown kernel {name!r}; registered: {sorted(self._factories)}"
                ) from None
            self._instances[name] = factory()
        return self._instances[name]

    def names(self) -> List[str]:
        """Sorted registered kernel names."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def fresh(self) -> "KernelRegistry":
        """A copy with the same factories but no cached instances.

        Used to give each simulated node its own PK deployment.
        """
        clone = KernelRegistry()
        clone._factories = dict(self._factories)
        return clone


def _build_default() -> KernelRegistry:
    from repro.kernels.sumk import SumKernel
    from repro.kernels.gaussian import Gaussian2DKernel
    from repro.kernels.extra import (
        HistogramKernel,
        MeanKernel,
        MinMaxKernel,
        SobelKernel,
        ThresholdCountKernel,
        VarianceKernel,
        WordCountKernel,
    )
    from repro.kernels.resample import DownsampleKernel
    from repro.kernels.text import EntropyKernel, GrepKernel

    registry = KernelRegistry()
    for cls in (
        SumKernel,
        Gaussian2DKernel,
        MinMaxKernel,
        MeanKernel,
        VarianceKernel,
        HistogramKernel,
        ThresholdCountKernel,
        SobelKernel,
        WordCountKernel,
        GrepKernel,
        EntropyKernel,
        DownsampleKernel,
    ):
        registry.register(cls)
    return registry


#: Process-wide default registry with every built-in kernel.
default_registry: KernelRegistry = _build_default()


def get_kernel(name: str) -> Kernel:
    """Look up ``name`` in the default registry."""
    return default_registry.get(name)


def list_kernels() -> List[str]:
    """Names in the default registry."""
    return default_registry.names()


def register_kernel(kernel_cls: Type[Kernel], **kwargs) -> Type[Kernel]:
    """Register a custom kernel class in the default registry."""
    return default_registry.register(kernel_cls, **kwargs)
