"""Downsampling kernel — a *partial*-reduction workload.

SUM returns 8 bytes; the Gaussian filter (with write-back) returns an
ack; ``DownsampleKernel`` sits between: it returns every k-th element,
so h(x) = x/k.  That makes the DOSAS objective genuinely size-coupled
— the g(h(d_i)) term is no longer negligible — and shifts the
AS-vs-TS crossover, which the kernel-spectrum ablation bench sweeps.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.kernels.base import Kernel, KernelExecutionError, KernelState
from repro.kernels.costs import MB


class DownsampleKernel(Kernel):
    """Keep every ``factor``-th float64 element (phase-exact).

    State carries the sampling phase so chunk boundaries anywhere
    produce the same output as a one-shot pass.
    """

    name = "downsample"
    default_rate = 600 * MB
    dtype = np.dtype(np.float64)

    def __init__(self, rate: Optional[float] = None, factor: int = 8) -> None:
        super().__init__(rate)
        if factor < 1:
            raise KernelExecutionError("factor must be >= 1")
        self.factor = int(factor)

    def result_bytes(self, input_bytes: float) -> float:
        return float(input_bytes) / self.factor

    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        state = KernelState()
        #: Elements consumed so far (mod factor drives the phase).
        state["consumed"] = 0
        state["output"] = np.empty(0, dtype=np.float64)
        return state

    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        if chunk.size == 0:
            return
        consumed = state["consumed"]
        # First kept element in this chunk: the next index that is
        # ≡ 0 (mod factor) in global element coordinates.
        first = (-consumed) % self.factor
        kept = np.asarray(chunk, dtype=np.float64)[first :: self.factor]
        state["output"] = np.concatenate([state["output"], kept])
        state["consumed"] = consumed + int(chunk.size)

    def finalize(self, state: KernelState) -> np.ndarray:
        return state["output"].copy()

    def combine(self, partials: Sequence[Any]) -> np.ndarray:
        # Per-server partials arrive in logical stripe order; phases
        # are only globally consistent for unstriped requests, so the
        # concatenation is exact per server and approximate across
        # stripes (documented, like grep).
        return np.concatenate(list(partials))

    def reference(self, data: np.ndarray) -> np.ndarray:
        """One-shot oracle for tests."""
        return np.asarray(data, dtype=np.float64).reshape(-1)[:: self.factor]
