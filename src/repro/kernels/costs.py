"""Kernel cost models — the simulator-facing view of a kernel.

Paper Table III gives measured single-core processing rates on the
Discfarm nodes:

=================  ==========================================  =============
Benchmark          Computation per data item                   Rate
=================  ==========================================  =============
SUM                1 addition                                   860 MB/s
2D Gaussian Filter 9 multiplies, 9 adds, 1 divide               80 MB/s
=================  ==========================================  =============

Those two constants, together with the 118 MB/s network, fully
determine the paper's crossovers; we inject them so the reproduced
figures share the paper's shape regardless of the host machine's
actual numpy speeds (the real rates are still measured by
``repro.kernels.calibrate`` and reported next to the paper's — see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

MB = 1024 * 1024

#: Paper Table III rates, bytes/second/core.
PAPER_RATES: Dict[str, float] = {
    "sum": 860 * MB,
    "gaussian2d": 80 * MB,
}


@dataclass(frozen=True)
class KernelCostModel:
    """What the scheduler and simulator know about a kernel.

    Attributes
    ----------
    name:
        Registered kernel name (``op`` in the paper's notation).
    rate:
        S_{C,op} at full dedication: bytes/s a single dedicated core
        processes.  The Contention Estimator scales this down by
        observed load (paper: "estimated by the CE according to its max
        value ... and the current system environment").
    result_bytes:
        h(x) — size of the result computed on x bytes of input
        (paper Table II).
    flops_per_byte:
        Arithmetic intensity, for documentation and ablations.
    """

    name: str
    rate: float
    result_bytes: Callable[[float], float]
    flops_per_byte: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    def compute_time(self, nbytes: float, capability: Optional[float] = None) -> float:
        """f(x) = x / S_{C,op} (paper Table II).

        ``capability`` overrides the dedicated-core rate with the
        estimator's degraded value when the node is loaded.
        """
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        return nbytes / (capability if capability is not None else self.rate)

    def h(self, nbytes: float) -> float:
        """Alias matching the paper's notation."""
        return self.result_bytes(nbytes)


def reduction_result(_x: float) -> float:
    """h(x) for reduction kernels: one scalar, 8 bytes."""
    return 8.0


def ack_result(_x: float) -> float:
    """h(x) for filter kernels whose output is written back to the
    parallel file system at the storage node.

    Only a small acknowledgement/status record crosses the network —
    this is how active storage saves bandwidth for filters whose output
    equals the input size (Son et al. [22], whose kernel design the
    paper adopts, write results to a companion output file).
    """
    return 4096.0


def identity_result(x: float) -> float:
    """h(x) = x: the full result is returned (worst case for AS)."""
    return float(x)


def make_paper_model(name: str) -> KernelCostModel:
    """Cost model for one of the paper's two benchmarks."""
    if name == "sum":
        return KernelCostModel(
            name="sum",
            rate=PAPER_RATES["sum"],
            result_bytes=reduction_result,
            flops_per_byte=1 / 8,
        )
    if name == "gaussian2d":
        return KernelCostModel(
            name="gaussian2d",
            rate=PAPER_RATES["gaussian2d"],
            result_bytes=ack_result,
            flops_per_byte=19 / 8,
        )
    raise KeyError(f"no paper model for kernel {name!r}")
