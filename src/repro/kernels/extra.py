"""Extended kernel library (paper future work: richer analysis kernels).

All are streaming/checkpointable like the two paper benchmarks.  Their
default rates are rough arithmetic-intensity-scaled estimates relative
to the paper's calibrated SUM/Gaussian rates; ``calibrate_rate`` can
replace them with measured host rates.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.kernels.base import Kernel, KernelExecutionError, KernelState
from repro.kernels.costs import MB, ack_result, reduction_result


class MinMaxKernel(Kernel):
    """Global minimum and maximum of the input."""

    name = "minmax"
    default_rate = 800 * MB
    dtype = np.dtype(np.float64)

    def result_bytes(self, input_bytes: float) -> float:
        return 16.0

    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        state = KernelState()
        state["min"] = float("inf")
        state["max"] = float("-inf")
        return state

    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        if chunk.size:
            state["min"] = min(state["min"], float(np.min(chunk)))
            state["max"] = max(state["max"], float(np.max(chunk)))

    def finalize(self, state: KernelState) -> tuple:
        return (state["min"], state["max"])

    def combine(self, partials: Sequence[Any]) -> tuple:
        return (
            min(p[0] for p in partials),
            max(p[1] for p in partials),
        )


class MeanKernel(Kernel):
    """Arithmetic mean (count-weighted combination across stripes)."""

    name = "mean"
    default_rate = 800 * MB
    dtype = np.dtype(np.float64)

    def result_bytes(self, input_bytes: float) -> float:
        return 16.0

    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        state = KernelState()
        state["total"] = 0.0
        state["count"] = 0
        return state

    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        state["total"] = state["total"] + float(np.sum(chunk, dtype=np.float64))
        state["count"] = state["count"] + int(chunk.size)

    def finalize(self, state: KernelState) -> tuple:
        # Return (mean, count) so stripes can combine exactly.
        count = state["count"]
        mean = state["total"] / count if count else 0.0
        return (mean, count)

    def combine(self, partials: Sequence[Any]) -> tuple:
        total = sum(mean * count for mean, count in partials)
        count = sum(count for _mean, count in partials)
        return (total / count if count else 0.0, count)


class VarianceKernel(Kernel):
    """Population variance via Chan's parallel-merge formulation."""

    name = "variance"
    default_rate = 500 * MB
    dtype = np.dtype(np.float64)

    def result_bytes(self, input_bytes: float) -> float:
        return 24.0

    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        state = KernelState()
        state["count"] = 0
        state["mean"] = 0.0
        state["m2"] = 0.0
        return state

    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        nb = int(chunk.size)
        if nb == 0:
            return
        mean_b = float(np.mean(chunk))
        m2_b = float(np.sum((chunk - mean_b) ** 2, dtype=np.float64))
        na, mean_a, m2_a = state["count"], state["mean"], state["m2"]
        n = na + nb
        delta = mean_b - mean_a
        state["mean"] = mean_a + delta * nb / n
        state["m2"] = m2_a + m2_b + delta * delta * na * nb / n
        state["count"] = n

    def finalize(self, state: KernelState) -> tuple:
        n = state["count"]
        var = state["m2"] / n if n else 0.0
        return (var, state["mean"], n)

    def combine(self, partials: Sequence[Any]) -> tuple:
        count = 0
        mean = 0.0
        m2 = 0.0
        for var_b, mean_b, nb in partials:
            if nb == 0:
                continue
            m2_b = var_b * nb
            n = count + nb
            delta = mean_b - mean
            mean = mean + delta * nb / n
            m2 = m2 + m2_b + delta * delta * count * nb / n
            count = n
        return (m2 / count if count else 0.0, mean, count)


class HistogramKernel(Kernel):
    """Fixed-bin histogram over a configured value range."""

    name = "histogram"
    default_rate = 400 * MB
    dtype = np.dtype(np.float64)

    def __init__(self, rate: Optional[float] = None, bins: int = 64,
                 lo: float = 0.0, hi: float = 1.0) -> None:
        super().__init__(rate)
        if bins <= 0:
            raise KernelExecutionError("bins must be positive")
        if not hi > lo:
            raise KernelExecutionError("hi must exceed lo")
        self.bins = int(bins)
        self.lo = float(lo)
        self.hi = float(hi)

    def result_bytes(self, input_bytes: float) -> float:
        return float(self.bins * 8)

    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        state = KernelState()
        state["counts"] = np.zeros(self.bins, dtype=np.int64)
        return state

    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        counts, _edges = np.histogram(chunk, bins=self.bins, range=(self.lo, self.hi))
        state["counts"] = state["counts"] + counts

    def finalize(self, state: KernelState) -> np.ndarray:
        return state["counts"].copy()

    def combine(self, partials: Sequence[Any]) -> np.ndarray:
        out = np.zeros(self.bins, dtype=np.int64)
        for p in partials:
            out += p
        return out


class ThresholdCountKernel(Kernel):
    """Count of elements exceeding a threshold (feature detection)."""

    name = "threshold_count"
    default_rate = 700 * MB
    dtype = np.dtype(np.float64)

    def __init__(self, rate: Optional[float] = None, threshold: float = 0.5) -> None:
        super().__init__(rate)
        self.threshold = float(threshold)

    def result_bytes(self, input_bytes: float) -> float:
        return reduction_result(input_bytes)

    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        state = KernelState()
        state["count"] = 0
        return state

    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        state["count"] = state["count"] + int(np.count_nonzero(chunk > self.threshold))

    def finalize(self, state: KernelState) -> int:
        return int(state["count"])

    def combine(self, partials: Sequence[Any]) -> int:
        return int(sum(partials))


class SobelKernel(Kernel):
    """Sobel gradient-magnitude filter (edge detection).

    Like the Gaussian filter, a 3×3 stencil whose output is written
    back at the producing node — only an ack is returned.  State
    carries a one-row halo; the implementation reuses the Gaussian
    kernel's row-block streaming scheme with different taps.
    """

    name = "sobel"
    default_rate = 60 * MB
    dtype = np.dtype(np.float64)
    writes_output = True

    def result_bytes(self, input_bytes: float) -> float:
        return ack_result(input_bytes)

    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        if not meta or "width" not in meta:
            raise KernelExecutionError("sobel needs meta={'width': <pixels per row>}")
        width = int(meta["width"])
        if width <= 0:
            raise KernelExecutionError(f"width must be positive, got {width}")
        state = KernelState()
        state["width"] = width
        state["leftover"] = np.empty(0, dtype=np.float64)
        state["pending"] = np.empty(0, dtype=np.float64)
        state["pending_rows"] = 0
        state["halo"] = np.empty(0, dtype=np.float64)
        state["out_rows"] = 0
        state["output"] = np.empty(0, dtype=np.float64)
        return state

    @staticmethod
    def _sobel_rows(block: np.ndarray, top: Optional[np.ndarray],
                    bottom: Optional[np.ndarray]) -> np.ndarray:
        rows = [block]
        rows.insert(0, top.reshape(1, -1) if top is not None else block[:1])
        rows.append(bottom.reshape(1, -1) if bottom is not None else block[-1:])
        padded = np.pad(np.vstack(rows), ((0, 0), (1, 1)), mode="edge")
        h, w = block.shape
        gx = np.zeros_like(block)
        gy = np.zeros_like(block)
        kx = np.array([[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]])
        ky = kx.T
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                window = padded[1 + dy : 1 + dy + h, 1 + dx : 1 + dx + w]
                gx += kx[dy + 1, dx + 1] * window
                gy += ky[dy + 1, dx + 1] * window
        return np.hypot(gx, gy)

    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        width = state["width"]
        data = np.concatenate([state["leftover"], np.asarray(chunk, dtype=np.float64)])
        nrows = data.size // width
        state["leftover"] = data[nrows * width :].copy()
        if nrows == 0:
            return
        rows = data[: nrows * width].reshape(nrows, width)

        if state["pending_rows"]:
            pending = state["pending"].reshape(state["pending_rows"], width)
            top = state["halo"] if state["halo"].size else None
            filtered = self._sobel_rows(pending, top, rows[0])
            state["output"] = np.concatenate([state["output"], filtered.reshape(-1)])
            state["out_rows"] = state["out_rows"] + state["pending_rows"]
            state["halo"] = pending[-1].copy()

        if nrows > 1:
            top = state["halo"] if state["halo"].size else None
            filtered = self._sobel_rows(rows[:-1], top, rows[-1])
            state["output"] = np.concatenate([state["output"], filtered.reshape(-1)])
            state["out_rows"] = state["out_rows"] + (nrows - 1)
            state["halo"] = rows[-2].copy()

        state["pending"] = rows[-1].copy()
        state["pending_rows"] = 1

    def finalize(self, state: KernelState) -> np.ndarray:
        width = state["width"]
        if state["leftover"].size:
            raise KernelExecutionError("input was not a whole number of rows")
        if state["pending_rows"]:
            pending = state["pending"].reshape(state["pending_rows"], width)
            top = state["halo"] if state["halo"].size else None
            filtered = self._sobel_rows(pending, top, None)
            state["output"] = np.concatenate([state["output"], filtered.reshape(-1)])
            state["out_rows"] = state["out_rows"] + state["pending_rows"]
            state["pending_rows"] = 0
        return state["output"].reshape(state["out_rows"], width)

    def reference(self, image: np.ndarray) -> np.ndarray:
        """One-shot Sobel magnitude of a whole image (test oracle)."""
        return self._sobel_rows(np.asarray(image, dtype=np.float64), None, None)


class WordCountKernel(Kernel):
    """Whitespace-delimited word count over byte data.

    Demonstrates a non-numeric kernel: the input dtype is uint8 and the
    state carries the in-word flag across chunk boundaries.
    """

    name = "wordcount"
    default_rate = 300 * MB
    dtype = np.dtype(np.uint8)

    _WHITESPACE = frozenset(b" \t\n\r\x0b\x0c")

    def result_bytes(self, input_bytes: float) -> float:
        return reduction_result(input_bytes)

    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        state = KernelState()
        state["words"] = 0
        state["in_word"] = False
        return state

    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        if chunk.size == 0:
            return
        data = np.asarray(chunk, dtype=np.uint8)
        is_space = (
            (data == 0x20) | (data == 0x09) | (data == 0x0A)
            | (data == 0x0D) | (data == 0x0B) | (data == 0x0C)
        )
        is_word = ~is_space
        # Word starts: word byte preceded by space (or by carry state).
        starts = int(np.count_nonzero(is_word[1:] & is_space[:-1]))
        if is_word[0] and not state["in_word"]:
            starts += 1
        state["words"] = state["words"] + starts
        state["in_word"] = bool(is_word[-1])

    def finalize(self, state: KernelState) -> int:
        return int(state["words"])

    def combine(self, partials: Sequence[Any]) -> int:
        # Stripe boundaries may split words; combining counts is then
        # an upper bound.  Exact combination needs boundary flags, so
        # we document the approximation and still combine.
        return int(sum(partials))
