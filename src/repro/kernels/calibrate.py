"""Kernel rate calibration — reproduces paper Table III's methodology.

"We tested the processing capability of a core for each benchmark, and
found that each core could process 860MB data per second for the SUM
benchmark and 80MB data per second for the 2D Gaussian Filter."

``calibrate_rate`` measures the *host's* single-core streaming rate
for any kernel; ``calibration_table`` prints the measured rates next
to the paper's.  Simulations keep using the paper's rates (so figure
shapes are host-independent), but EXPERIMENTS.md records both.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.costs import MB, PAPER_RATES


def _make_input(kernel: Kernel, nbytes: int, width: int) -> Tuple[np.ndarray, Optional[dict]]:
    """Synthesize calibration input of ``nbytes`` for ``kernel``."""
    rng = np.random.default_rng(12345)
    if kernel.dtype == np.dtype(np.uint8):
        data = rng.integers(0, 255, size=nbytes, dtype=np.uint8)
        return data, None
    n_elems = nbytes // kernel.dtype.itemsize
    if kernel.name in ("gaussian2d", "sobel"):
        rows = max(3, n_elems // width)
        data = rng.random(rows * width, dtype=np.float64)
        return data, {"width": width}
    return rng.random(n_elems, dtype=np.float64), None


def calibrate_rate(
    kernel: Kernel,
    nbytes: int = 32 * MB,
    repeats: int = 3,
    width: int = 2048,
    chunk_elems: int = 1 << 20,
) -> float:
    """Measured single-core processing rate of ``kernel``, bytes/s.

    Runs the streaming pipeline ``repeats`` times over ``nbytes`` of
    synthetic input and returns bytes/s of the best run (classic
    min-time-of-N timing to suppress scheduler noise, per the
    optimisation guide's "no optimization without measuring").
    """
    data, meta = _make_input(kernel, nbytes, width)
    actual_bytes = data.nbytes

    best = float("inf")
    for _ in range(max(1, repeats)):
        # Calibration *is* host measurement: the wall-clock read is the
        # point, not a determinism leak into simulated results.
        start = time.perf_counter()  # reprolint: disable=RPR102  calibration measures host time
        kernel.apply(data, meta=meta, chunk_elems=chunk_elems)
        elapsed = time.perf_counter() - start  # reprolint: disable=RPR102  calibration measures host time
        best = min(best, elapsed)
    if best <= 0:  # pragma: no cover - sub-resolution timing
        return float("inf")
    return actual_bytes / best


def calibration_table(
    kernels: Optional[List[Kernel]] = None,
    nbytes: int = 8 * MB,
) -> List[Dict[str, object]]:
    """Measured-vs-paper rate rows (Table III reproduction).

    Returns a list of dicts with keys ``kernel``, ``measured_mb_s``,
    ``paper_mb_s`` (None for extension kernels).
    """
    if kernels is None:
        from repro.kernels.registry import default_registry

        kernels = [default_registry.get(n) for n in ("sum", "gaussian2d")]

    rows: List[Dict[str, object]] = []
    for kernel in kernels:
        measured = calibrate_rate(kernel, nbytes=nbytes, repeats=2)
        paper = PAPER_RATES.get(kernel.name)
        rows.append(
            {
                "kernel": kernel.name,
                "measured_mb_s": measured / MB,
                "paper_mb_s": (paper / MB) if paper else None,
            }
        )
    return rows
