"""Kernel framework: chunked execution, checkpoint, restore, combine.

Paper Sec. III-E: when a kernel receives a terminating signal from the
Active I/O Runtime, "it will write the shared memory with its status,
including the values of all variables in the form (variable name,
variable type, value)".  :class:`KernelState` is that variable bag;
:class:`KernelCheckpoint` is the serialised form shipped back to the
Active Storage Client inside ``struct result``'s ``buf`` when an
interrupted active I/O is demoted to a normal I/O.

The resumed computation must produce *exactly* the result an
uninterrupted run would have produced — a property the test suite
checks for every kernel (hypothesis: split at arbitrary chunk
boundaries, migrate, compare).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class KernelExecutionError(Exception):
    """Raised when a kernel is driven incorrectly (bad state, bad data)."""


class KernelState:
    """The mutable variable bag of one in-progress kernel execution.

    Behaves like a small typed namespace.  Only numpy scalars/arrays,
    Python ints/floats/bools/strs/bytes and flat lists of those may be
    stored, so the state is always checkpointable.
    """

    _ALLOWED = (int, float, bool, str, bytes, np.ndarray, np.generic)

    def __init__(self) -> None:
        self._vars: Dict[str, Any] = {}

    def __setitem__(self, name: str, value: Any) -> None:
        if not isinstance(name, str) or not name:
            raise KernelExecutionError("variable names must be non-empty strings")
        if not isinstance(value, self._ALLOWED) and not (
            isinstance(value, list)
            and all(isinstance(v, self._ALLOWED) for v in value)
        ):
            raise KernelExecutionError(
                f"variable {name!r} has uncheckpointable type {type(value).__name__}"
            )
        self._vars[name] = value

    def __getitem__(self, name: str) -> Any:
        try:
            return self._vars[name]
        except KeyError:
            raise KernelExecutionError(f"kernel state has no variable {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def get(self, name: str, default: Any = None) -> Any:
        """Variable value or ``default``."""
        return self._vars.get(name, default)

    def names(self) -> List[str]:
        """Variable names, insertion-ordered."""
        return list(self._vars)

    def items(self) -> Iterator[Tuple[str, Any]]:
        """Iterate over (name, value) pairs."""
        return iter(self._vars.items())

    def __len__(self) -> int:
        return len(self._vars)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelState {list(self._vars)}>"


@dataclass(frozen=True)
class KernelCheckpoint:
    """Serialised kernel execution state (paper's variable records).

    Attributes
    ----------
    kernel:
        Registered kernel name.
    bytes_done:
        Input bytes fully incorporated into the state.
    records:
        Tuples of ``(variable name, variable type, value)`` exactly as
        the paper specifies the shared-memory format.
    """

    kernel: str
    bytes_done: int
    records: Tuple[Tuple[str, str, Any], ...]

    @staticmethod
    def capture(kernel_name: str, bytes_done: int, state: KernelState) -> "KernelCheckpoint":
        """Snapshot ``state`` into an immutable checkpoint."""
        records = []
        for name, value in state.items():
            if isinstance(value, np.ndarray):
                records.append((name, f"ndarray:{value.dtype}", value.copy()))
            elif isinstance(value, np.generic):
                records.append((name, f"scalar:{value.dtype}", value))
            else:
                records.append((name, type(value).__name__, value))
        return KernelCheckpoint(kernel_name, int(bytes_done), tuple(records))

    def restore(self) -> KernelState:
        """Rebuild a live :class:`KernelState` from the records."""
        state = KernelState()
        for name, _typ, value in self.records:
            state[name] = value.copy() if isinstance(value, np.ndarray) else value
        return state

    @property
    def nbytes(self) -> int:
        """Approximate wire size of the checkpoint payload."""
        total = 0
        for name, typ, value in self.records:
            total += len(name) + len(typ)
            if isinstance(value, np.ndarray):
                total += value.nbytes
            elif isinstance(value, (bytes, str)):
                total += len(value)
            else:
                total += 8
        return total


class Kernel(abc.ABC):
    """Base class for all processing kernels.

    Subclasses define the streaming protocol::

        state = k.init_state(meta)
        for chunk in chunks:                  # numpy views over the input
            k.process_chunk(state, chunk)
        result = k.finalize(state)

    plus :meth:`combine` to merge partial results from striped servers,
    and the cost-model hooks :meth:`result_bytes` / :attr:`rate` used
    by the simulator.

    Parameters
    ----------
    rate:
        Calibrated single-core processing rate, bytes/s.  Subclasses
        default to the paper's Table III value where one exists.
    """

    #: Registered name, set by subclasses.
    name: str = ""
    #: Default single-core rate (bytes/s); see Table III.
    default_rate: float = 100 * 1024 * 1024
    #: numpy dtype the kernel consumes.
    dtype: np.dtype = np.dtype(np.float64)
    #: Filter kernels whose full-size output is written back to the
    #: parallel file system at the producing node (Son et al. [22]
    #: convention) — only an acknowledgement crosses the network.
    writes_output: bool = False

    def __init__(self, rate: Optional[float] = None) -> None:
        if not self.name:
            raise KernelExecutionError(f"{type(self).__name__} did not set a name")
        self.rate = float(rate) if rate is not None else float(self.default_rate)
        if self.rate <= 0:
            raise KernelExecutionError("rate must be positive")

    # -- cost-model hooks -------------------------------------------------
    def result_bytes(self, input_bytes: float) -> float:
        """h(x): size of the result computed on ``input_bytes`` of input.

        Reduction kernels return a near-constant tiny result; filter
        kernels that write their output back to storage return an
        acknowledgement-sized payload (see DESIGN.md).
        """
        return 8.0

    # -- streaming execution ----------------------------------------------
    @abc.abstractmethod
    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        """Create the starting state for one execution.

        ``meta`` carries kernel-specific shape info (e.g. image width
        for 2-D filters).
        """

    @abc.abstractmethod
    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        """Fold one input chunk (1-D array of :attr:`dtype`) into state."""

    @abc.abstractmethod
    def finalize(self, state: KernelState) -> Any:
        """Produce the kernel's result from a fully-fed state."""

    def combine(self, partials: Sequence[Any]) -> Any:
        """Merge per-server partial results (striped-file support).

        The default refuses, so kernels that cannot be combined fail
        loudly; reduction kernels override this.
        """
        raise KernelExecutionError(
            f"kernel {self.name!r} does not support striped combination"
        )

    # -- convenience -------------------------------------------------------
    def apply(self, data: np.ndarray, meta: Optional[dict] = None, chunk_elems: int = 1 << 20) -> Any:
        """Run the full streaming pipeline over ``data`` in one call."""
        flat = np.ascontiguousarray(data).reshape(-1).view(self.dtype)
        state = self.init_state(meta)
        for start in range(0, flat.size, chunk_elems):
            self.process_chunk(state, flat[start : start + chunk_elems])
        return self.finalize(state)

    def checkpoint(self, state: KernelState, bytes_done: int) -> KernelCheckpoint:
        """Freeze ``state`` for migration (terminate-signal handler)."""
        return KernelCheckpoint.capture(self.name, bytes_done, state)

    def resume(self, checkpoint: KernelCheckpoint) -> KernelState:
        """Thaw a checkpoint produced by any node's PK instance."""
        if checkpoint.kernel != self.name:
            raise KernelExecutionError(
                f"checkpoint is for kernel {checkpoint.kernel!r}, not {self.name!r}"
            )
        return checkpoint.restore()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Kernel {self.name} rate={self.rate:.3g} B/s>"
