"""Processing Kernels (PKs) — paper Sec. III-E.

"The Processing Kernels component in the architecture is a collection
of predefined analysis kernels that are widely used in data-intensive
applications ... our approach employs a PKs component both at the
client side and storage side."

Every kernel here exists in two coupled forms:

1. **Real execution** — an actual numpy implementation operating on
   arrays, with *chunked* streaming execution so a kernel can be
   interrupted between chunks, checkpoint its state (the paper's
   ``variable name, variable type, value`` records), and be resumed on
   a different node.  Used by the examples and by rate calibration
   (paper Table III).
2. **Cost model** — the calibrated single-core processing rate
   (bytes/s) and result-size function h(x) consumed by the simulator
   and by the DOSAS scheduling algorithm.

The paper evaluates two kernels: SUM (860 MB/s/core) and a 2-D
Gaussian filter (80 MB/s/core).  The extended set (minmax, mean,
variance, histogram, threshold-count, Sobel, wordcount) realises the
paper's future-work direction of a richer kernel library.
"""

from repro.kernels.base import (
    Kernel,
    KernelCheckpoint,
    KernelExecutionError,
    KernelState,
)
from repro.kernels.costs import KernelCostModel, PAPER_RATES
from repro.kernels.registry import (
    KernelRegistry,
    default_registry,
    get_kernel,
    list_kernels,
    register_kernel,
)
from repro.kernels.sumk import SumKernel
from repro.kernels.gaussian import Gaussian2DKernel
from repro.kernels.extra import (
    HistogramKernel,
    MeanKernel,
    MinMaxKernel,
    SobelKernel,
    ThresholdCountKernel,
    VarianceKernel,
    WordCountKernel,
)
from repro.kernels.resample import DownsampleKernel
from repro.kernels.text import EntropyKernel, GrepKernel
from repro.kernels.calibrate import calibrate_rate, calibration_table

__all__ = [
    "DownsampleKernel",
    "EntropyKernel",
    "Gaussian2DKernel",
    "GrepKernel",
    "HistogramKernel",
    "Kernel",
    "KernelCheckpoint",
    "KernelCostModel",
    "KernelExecutionError",
    "KernelRegistry",
    "KernelState",
    "MeanKernel",
    "MinMaxKernel",
    "PAPER_RATES",
    "SobelKernel",
    "SumKernel",
    "ThresholdCountKernel",
    "VarianceKernel",
    "WordCountKernel",
    "calibrate_rate",
    "calibration_table",
    "default_registry",
    "get_kernel",
    "list_kernels",
    "register_kernel",
]
