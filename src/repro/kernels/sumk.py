"""The SUM benchmark kernel (paper Table III).

One addition per data item; the lightest kernel the paper evaluates.
Its 860 MB/s/core rate is far above the 118 MB/s network, which is why
"AS can always achieve better performance than TS for all scale sizes"
(Fig. 6).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.kernels.base import Kernel, KernelState
from repro.kernels.costs import PAPER_RATES, reduction_result


class SumKernel(Kernel):
    """Sum of all float64 elements of the input."""

    name = "sum"
    default_rate = PAPER_RATES["sum"]
    dtype = np.dtype(np.float64)

    def result_bytes(self, input_bytes: float) -> float:
        return reduction_result(input_bytes)

    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        state = KernelState()
        state["acc"] = 0.0
        state["count"] = 0
        return state

    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        # float(...) keeps the accumulator a checkpointable Python
        # scalar; numpy's pairwise summation handles the chunk.
        state["acc"] = state["acc"] + float(np.sum(chunk, dtype=np.float64))
        state["count"] = state["count"] + int(chunk.size)

    def finalize(self, state: KernelState) -> float:
        return float(state["acc"])

    def combine(self, partials: Sequence[Any]) -> float:
        """Partial sums from striped servers add up directly."""
        return float(sum(partials))
