"""Byte-stream kernels: pattern grep and Shannon entropy.

Pattern search is *the* canonical active-disk workload (Riedel et
al.'s Active Disks [17], Acharya et al.'s stream model [1] — both in
the paper's related work); an entropy estimate is the kind of cheap
server-side pre-filter a compression pipeline runs.  Both stream over
``uint8`` data and checkpoint exactly across any chunk boundary.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.kernels.base import Kernel, KernelExecutionError, KernelState
from repro.kernels.costs import MB, reduction_result


class GrepKernel(Kernel):
    """Count (possibly overlapping) occurrences of a byte pattern.

    State carries the trailing ``len(pattern) - 1`` bytes so matches
    spanning chunk boundaries are found; an interrupted search resumed
    on another node reports exactly the uninterrupted count.
    """

    name = "grep"
    default_rate = 400 * MB
    dtype = np.dtype(np.uint8)

    def __init__(self, rate: Optional[float] = None, pattern: bytes = b"the") -> None:
        super().__init__(rate)
        if not pattern:
            raise KernelExecutionError("pattern must be non-empty")
        self.pattern = bytes(pattern)

    def result_bytes(self, input_bytes: float) -> float:
        return reduction_result(input_bytes)

    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        state = KernelState()
        state["matches"] = 0
        state["carry"] = np.empty(0, dtype=np.uint8)
        return state

    @staticmethod
    def _count(haystack: np.ndarray, needle: bytes) -> int:
        """Overlapping-occurrence count via a boolean AND reduction."""
        n = len(needle)
        if haystack.size < n:
            return 0
        if n == 1:
            return int(np.count_nonzero(haystack == needle[0]))
        hits = haystack[: haystack.size - n + 1] == needle[0]
        for j in range(1, n):
            hits &= haystack[j : haystack.size - n + 1 + j] == needle[j]
        return int(np.count_nonzero(hits))

    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        if chunk.size == 0:
            return
        data = np.concatenate([state["carry"], np.asarray(chunk, dtype=np.uint8)])
        n = len(self.pattern)
        # Matches wholly inside the carry were counted last round; only
        # count matches that end within the new bytes.
        prior = self._count(state["carry"], self.pattern)
        state["matches"] = state["matches"] + self._count(data, self.pattern) - prior
        state["carry"] = data[max(0, data.size - (n - 1)):].copy() if n > 1 \
            else np.empty(0, dtype=np.uint8)

    def finalize(self, state: KernelState) -> int:
        return int(state["matches"])

    def combine(self, partials: Sequence[Any]) -> int:
        # Stripe boundaries can split a match; summing is a lower
        # bound (documented, mirrors the wordcount caveat).
        return int(sum(partials))

    def reference(self, data: np.ndarray) -> int:
        """One-shot oracle for tests."""
        return self._count(np.asarray(data, dtype=np.uint8), self.pattern)


class EntropyKernel(Kernel):
    """Byte-level Shannon entropy (bits/byte) with exact combination.

    The finalised value is ``(entropy_bits, counts)`` — carrying the
    256-bin histogram lets stripes combine exactly.
    """

    name = "entropy"
    default_rate = 350 * MB
    dtype = np.dtype(np.uint8)

    def result_bytes(self, input_bytes: float) -> float:
        return 256 * 8 + 8.0

    def init_state(self, meta: Optional[dict] = None) -> KernelState:
        state = KernelState()
        state["counts"] = np.zeros(256, dtype=np.int64)
        return state

    def process_chunk(self, state: KernelState, chunk: np.ndarray) -> None:
        if chunk.size:
            state["counts"] = state["counts"] + np.bincount(
                np.asarray(chunk, dtype=np.uint8), minlength=256
            )

    @staticmethod
    def _entropy(counts: np.ndarray) -> float:
        total = counts.sum()
        if total == 0:
            return 0.0
        p = counts[counts > 0] / total
        return float(-(p * np.log2(p)).sum())

    def finalize(self, state: KernelState) -> tuple:
        counts = state["counts"].copy()
        return (self._entropy(counts), counts)

    def combine(self, partials: Sequence[Any]) -> tuple:
        counts = np.zeros(256, dtype=np.int64)
        for _e, c in partials:
            counts += c
        return (self._entropy(counts), counts)
