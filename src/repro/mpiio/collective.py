"""Collective and non-blocking MPI-IO operations.

``MPI_File_read_all`` is the workhorse of parallel analysis codes: all
ranks of a communicator read disjoint partitions of a shared file and
synchronise at the end.  The DOSAS paper's workload ("each process
requests one I/O operation") is exactly one collective call — this
module lets applications express it that way.

``Communicator`` groups per-rank I/O stacks (each rank is a compute
node with its own ASC).  Collective calls return per-rank results
after an implicit barrier, matching MPI semantics.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.sim.engine import Environment
from repro.sim.events import AllOf, Event
from repro.core.asc import ActiveStorageClient
from repro.mpiio.datatypes import Datatype
from repro.mpiio.file import File, MPIIOContext, MPIIOError
from repro.mpiio.result import ResultStruct
from repro.mpiio.status import Status


class MPIRequest:
    """Handle for a non-blocking I/O operation (MPI_Request analogue)."""

    def __init__(self, env: Environment, process) -> None:
        self.env = env
        self._process = process

    def test(self) -> bool:
        """True once the operation completed (non-blocking probe)."""
        return not self._process.is_alive

    def wait(self):
        """Block (as a simulation process) until completion; returns
        the operation's value."""
        value = yield self._process
        return value


class Communicator:
    """A group of application ranks, each with its own I/O stack.

    Parameters
    ----------
    contexts:
        One :class:`MPIIOContext` per rank (rank i = contexts[i]).
    """

    def __init__(self, contexts: Sequence[MPIIOContext]) -> None:
        if not contexts:
            raise MPIIOError("a communicator needs at least one rank")
        envs = {id(ctx.env) for ctx in contexts}
        if len(envs) != 1:
            raise MPIIOError("all ranks must share one simulation environment")
        self.contexts = list(contexts)
        self.env = contexts[0].env

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.contexts)

    def open_all(self, name: str) -> List[File]:
        """Every rank opens ``name`` (collective MPI_File_open)."""
        return [ctx.open(name) for ctx in self.contexts]

    # -- partitioning -----------------------------------------------------------
    def partition(self, total_items: int, rank: int) -> tuple:
        """(offset_items, count_items) of ``rank``'s even share."""
        if not 0 <= rank < self.size:
            raise MPIIOError(f"rank {rank} out of range")
        base = total_items // self.size
        extra = total_items % self.size
        count = base + (1 if rank < extra else 0)
        offset = rank * base + min(rank, extra)
        return offset, count

    # -- collective reads ----------------------------------------------------------
    def read_all(
        self,
        files: Sequence[File],
        count: int,
        datatype: Datatype,
        statuses: Optional[Sequence[Status]] = None,
    ):
        """MPI_File_read_all: every rank reads its partition of the
        first ``count`` items (simulation process; implicit barrier).

        Returns per-rank byte counts.
        """
        self._check_files(files)

        def rank_read(rank: int):
            offset_items, count_items = self.partition(count, rank)
            fh = files[rank]
            fh.seek(offset_items * datatype.size)
            status = statuses[rank] if statuses else None
            nbytes = yield from fh.read(count_items, datatype, status)
            return nbytes

        procs = [self.env.process(rank_read(r)) for r in range(self.size)]
        yield AllOf(self.env, procs)
        return [p.value for p in procs]

    def read_ex_all(
        self,
        files: Sequence[File],
        count: int,
        datatype: Datatype,
        operation: str,
        results: Optional[Sequence[ResultStruct]] = None,
        statuses: Optional[Sequence[Status]] = None,
        meta: Optional[dict] = None,
    ):
        """Collective active read: each rank applies ``operation`` to
        its partition (simulation process; implicit barrier).

        Returns the per-rank :class:`ActiveReadOutcome` list; when
        ``results`` structs are supplied they are filled per rank.
        """
        self._check_files(files)

        def rank_read(rank: int):
            offset_items, count_items = self.partition(count, rank)
            fh = files[rank]
            fh.seek(offset_items * datatype.size)
            result = results[rank] if results else ResultStruct()
            status = statuses[rank] if statuses else None
            outcome = yield from fh.read_ex(
                result, count_items, datatype, operation, status, meta=meta
            )
            return outcome

        procs = [self.env.process(rank_read(r)) for r in range(self.size)]
        yield AllOf(self.env, procs)
        return [p.value for p in procs]

    def _check_files(self, files: Sequence[File]) -> None:
        if len(files) != self.size:
            raise MPIIOError(
                f"need one open file per rank ({self.size}), got {len(files)}"
            )


def iread(file: File, count: int, datatype: Datatype,
          status: Optional[Status] = None) -> MPIRequest:
    """MPI_File_iread: start a non-blocking read, return its handle."""
    env = file.context.env
    return MPIRequest(env, env.process(file.read(count, datatype, status)))


def iread_ex(file: File, result: ResultStruct, count: int, datatype: Datatype,
             operation: str, status: Optional[Status] = None,
             meta: Optional[dict] = None) -> MPIRequest:
    """Non-blocking active read (the paper's call, made asynchronous)."""
    env = file.context.env
    return MPIRequest(
        env,
        env.process(file.read_ex(result, count, datatype, operation, status,
                                 meta=meta)),
    )
