"""The paper's ``struct result`` (Table I).

.. code-block:: c

    struct result {
        bool completed;   // 0: I/O not completed, 1: completed
        void *buf;        // the saved result if completed, or status
                          // of operation if not completed
        MPI_File fh;      // file handle (I/O uncompleted)
        long offset;      // current data position
    };
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.kernels.base import KernelCheckpoint
from repro.pvfs.filehandle import FileHandle


@dataclass
class ResultStruct:
    """The encapsulated buf argument of ``MPI_File_read_ex``."""

    #: 0: I/O not completed, 1: completed.
    completed: bool = False
    #: The saved result if completed, or the kernel's checkpointed
    #: status if not completed.
    buf: Any = None
    #: File handle, populated while the I/O is uncompleted so the ASC
    #: can finish it.
    fh: Optional[FileHandle] = None
    #: Current data position — first byte still to process.
    offset: int = 0

    def mark_completed(self, result: Any, offset: int) -> None:
        """Fill the struct for a finished operation."""
        self.completed = True
        self.buf = result
        self.offset = offset

    def mark_uncompleted(
        self,
        checkpoint: Optional[KernelCheckpoint],
        fh: FileHandle,
        offset: int,
    ) -> None:
        """Fill the struct for a demoted/interrupted operation."""
        self.completed = False
        self.buf = checkpoint
        self.fh = fh
        self.offset = offset
