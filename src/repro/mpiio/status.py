"""The MPI_Status analogue."""

from __future__ import annotations

from typing import Optional

from repro.mpiio.datatypes import Datatype


class Status:
    """Completion information of one I/O call."""

    def __init__(self) -> None:
        self._bytes: int = 0
        self._error: int = 0
        #: Wall-clock (simulated) completion time of the call.
        self.finished_at: Optional[float] = None
        #: How many per-server pieces were demoted to normal I/O.
        self.demotions: int = 0

    def set_elements(self, nbytes: int, finished_at: float, demotions: int = 0) -> None:
        """Record a completed transfer (called by the File layer)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._bytes = int(nbytes)
        self.finished_at = finished_at
        self.demotions = demotions

    def get_count(self, datatype: Datatype) -> int:
        """MPI_Get_count: whole items of ``datatype`` transferred."""
        return self._bytes // datatype.size

    @property
    def cancelled(self) -> bool:
        """Always False — the reproduction does not cancel I/O."""
        return False

    @property
    def error(self) -> int:
        """MPI error code (0 = success)."""
        return self._error
