"""MPI datatype descriptors.

Only what ``read``/``read_ex`` need: a name, a byte size, and the
matching numpy dtype for real-execution paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """An MPI elementary datatype."""

    name: str
    size: int
    np_dtype: str

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("datatype size must be positive")

    def extent(self, count: int) -> int:
        """Total bytes of ``count`` items."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.size * count

    @property
    def dtype(self) -> np.dtype:
        """The numpy dtype equivalent."""
        return np.dtype(self.np_dtype)


BYTE = Datatype("MPI_BYTE", 1, "uint8")
CHAR = Datatype("MPI_CHAR", 1, "uint8")
INT = Datatype("MPI_INT", 4, "int32")
LONG = Datatype("MPI_LONG", 8, "int64")
FLOAT = Datatype("MPI_FLOAT", 4, "float32")
DOUBLE = Datatype("MPI_DOUBLE", 8, "float64")
