"""Enhanced MPI-IO interface — paper Sec. III-B, Table I.

"To support the DOSAS architecture, we have extended only one MPI-IO
function.  Our enhanced MPI-IO file call, ``MPI_File_read_ex()``, is a
simple extension to the existing ``MPI_File_read()`` call ... The new
API takes all the arguments in the original one and an additional
argument that specifies the operations to be executed on the storage
nodes.  In addition, a simple structure type is used to encapsulate
the buf arguments."

This package provides that interface over the simulated cluster:

.. code-block:: python

    ctx = MPIIOContext(env, asc)
    fh = ctx.open("/data/field")
    result = ResultStruct()
    status = Status()
    yield from fh.read_ex(result, count, DOUBLE, "sum", status)
    assert result.completed

Everything an ``MPI_File_read`` application touches — datatypes,
status objects, file handles with seek/tell — exists, so porting a
workload onto the reproduction is the "minimal changes" exercise the
paper advertises.
"""

from repro.mpiio.datatypes import (
    BYTE,
    CHAR,
    Datatype,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
)
from repro.mpiio.status import Status
from repro.mpiio.result import ResultStruct
from repro.mpiio.file import File, MPIIOContext, MPIIOError
from repro.mpiio.collective import Communicator, MPIRequest, iread, iread_ex

__all__ = [
    "BYTE",
    "CHAR",
    "Communicator",
    "DOUBLE",
    "Datatype",
    "FLOAT",
    "File",
    "INT",
    "LONG",
    "MPIIOContext",
    "MPIIOError",
    "MPIRequest",
    "ResultStruct",
    "Status",
    "iread",
    "iread_ex",
]
