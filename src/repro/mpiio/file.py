"""MPI_File analogue with the DOSAS ``read_ex`` extension.

A :class:`File` belongs to an :class:`MPIIOContext` — the per-process
I/O stack (one compute node's ASC and PVFS client).  ``read`` follows
``MPI_File_read`` semantics (individual file pointer, byte stream);
``read_ex`` adds the operation argument and the ``struct result``
protocol of Table I.

Both calls are simulation processes (drive with ``yield from``).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.engine import Environment
from repro.core.asc import ActiveStorageClient
from repro.mpiio.datatypes import Datatype
from repro.mpiio.result import ResultStruct
from repro.mpiio.status import Status
from repro.pvfs.filehandle import FileHandle


class MPIIOError(Exception):
    """Errors raised by the MPI-IO layer (bad counts, closed files…)."""


class MPIIOContext:
    """One application process's I/O software stack."""

    def __init__(self, env: Environment, asc: ActiveStorageClient) -> None:
        self.env = env
        self.asc = asc

    def open(self, name: str) -> "File":
        """MPI_File_open (read-only; the reproduction has no writes)."""
        handle = self.asc.pvfs.open(name)
        return File(self, handle)


class File:
    """An open file with an individual file pointer."""

    def __init__(self, context: MPIIOContext, handle: FileHandle) -> None:
        self.context = context
        self.handle = handle
        self._position = 0
        self._closed = False

    # -- pointer management ----------------------------------------------------
    def seek(self, offset: int, whence: int = 0) -> None:
        """MPI_File_seek (whence: 0=set, 1=cur, 2=end)."""
        self._ensure_open()
        if whence == 0:
            new = offset
        elif whence == 1:
            new = self._position + offset
        elif whence == 2:
            new = self.handle.size + offset
        else:
            raise MPIIOError(f"bad whence {whence}")
        if not 0 <= new <= self.handle.size:
            raise MPIIOError(f"seek to {new} outside file of size {self.handle.size}")
        self._position = new

    def tell(self) -> int:
        """MPI_File_get_position."""
        return self._position

    def get_size(self) -> int:
        """MPI_File_get_size."""
        return self.handle.size

    def close(self) -> None:
        """MPI_File_close."""
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise MPIIOError("operation on closed file")

    def _extent(self, count: int, datatype: Datatype) -> int:
        nbytes = datatype.extent(count)
        if self._position + nbytes > self.handle.size:
            raise MPIIOError(
                f"read of {nbytes} bytes at {self._position} exceeds file size "
                f"{self.handle.size}"
            )
        return nbytes

    # -- MPI_File_read ------------------------------------------------------------
    def read(self, count: int, datatype: Datatype, status: Optional[Status] = None):
        """Normal read of ``count`` items (simulation process).

        Returns the number of bytes read; fills ``status``.
        """
        self._ensure_open()
        nbytes = self._extent(count, datatype)
        yield from self.context.asc.read(
            self.handle, offset=self._position, size=nbytes
        )
        self._position += nbytes
        if status is not None:
            status.set_elements(nbytes, self.context.env.now)
        return nbytes

    def read_at(self, offset: int, count: int, datatype: Datatype,
                status: Optional[Status] = None):
        """MPI_File_read_at: explicit-offset read, pointer untouched."""
        self._ensure_open()
        nbytes = datatype.extent(count)
        if offset < 0 or offset + nbytes > self.handle.size:
            raise MPIIOError(
                f"read_at extent [{offset}, {offset + nbytes}) outside file"
            )
        yield from self.context.asc.read(self.handle, offset=offset, size=nbytes)
        if status is not None:
            status.set_elements(nbytes, self.context.env.now)
        return nbytes

    # -- MPI_File_read_ex (the DOSAS extension) ---------------------------------------
    def read_ex(
        self,
        result: ResultStruct,
        count: int,
        datatype: Datatype,
        operation: str,
        status: Optional[Status] = None,
        meta: Optional[dict] = None,
    ):
        """Active read of ``count`` items applying ``operation``.

        Signature mirrors the paper's
        ``MPI_File_read_ex(fh, struct result *buf, int count,
        MPI_datatype, char *operation, MPI_Status *status)``.

        The ASC transparently finishes any server-side demotions, so
        by return the struct is always ``completed == 1`` with ``buf``
        holding the (combined) kernel result; the intermediate
        uncompleted state is observable through ``status.demotions``
        and the lower-level ``PVFSClient.read_active`` API.
        """
        self._ensure_open()
        nbytes = self._extent(count, datatype)
        outcome = yield from self.context.asc.read_ex(
            self.handle,
            operation,
            offset=self._position,
            size=nbytes,
            meta=meta,
        )
        self._position += nbytes
        result.mark_completed(outcome.result, self._position)
        if status is not None:
            status.set_elements(
                nbytes, self.context.env.now, demotions=outcome.demotions
            )
        return outcome

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<File {self.handle.name} pos={self._position}>"
