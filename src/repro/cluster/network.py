"""Network link models.

The paper's cost model treats the compute↔storage network as a single
shared pipe of bandwidth ``bw`` (g(x) = x / bw, Table II) — when a
storage node returns data for several normal I/Os they serialise on
its NIC.  Two models are provided:

``SerialLink``
    Transfers are served strictly one at a time (FIFO).  This matches
    the g(D_N) = D_N / bw term exactly: n transfers of d bytes take
    n·d/bw total.

``FairShareLink``
    Fluid-flow processor sharing: k concurrent transfers each progress
    at bw/k.  Total completion time for simultaneous equal transfers is
    the same as serial, but individual latencies differ.  Used for
    ablations on the sharing discipline.

Both support deterministic per-transfer bandwidth jitter, reproducing
the 111–120 MB/s variation the paper observed on Discfarm.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.monitor import TimeWeightedStat
from repro.sim.resources import PriorityResource, Resource


class Link:
    """Abstract link interface.

    Subclasses implement :meth:`transfer`, returning an event that
    triggers when ``size`` bytes have crossed the link.
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        jitter: float = 0.0,
        latency: float = 0.0,
        seed: int = 0,
        name: str = "link",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must lie in [0, 1), got {jitter}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.jitter = float(jitter)
        self.latency = float(latency)
        self.name = name
        self._rng = random.Random(seed)
        #: Total bytes ever accepted for transfer.
        self.bytes_transferred = 0.0
        self.utilization = TimeWeightedStat(env.now)
        #: Fault state: bandwidth multiplier in (0, 1] and hard cut-off.
        self._derate = 1.0
        self._partitioned = False

    # -- failure hooks (see repro.faults) ------------------------------------
    @property
    def derate_factor(self) -> float:
        """Current degradation factor (1.0 = healthy)."""
        return self._derate

    @property
    def partitioned(self) -> bool:
        """True while the link is cut."""
        return self._partitioned

    def degrade(self, factor: float) -> None:
        """Reduce deliverable bandwidth to ``factor`` × nominal."""
        if not 0 < factor <= 1:
            raise ValueError(f"degrade factor must lie in (0, 1], got {factor}")
        self._apply_rate(float(factor))

    def restore(self) -> None:
        """Return the link to nominal bandwidth."""
        self._apply_rate(1.0)

    def partition(self) -> None:
        """Cut the link: no new data crosses until :meth:`heal`."""
        self._partitioned = True

    def heal(self) -> None:
        """Reconnect a partitioned link."""
        self._partitioned = False

    def _apply_rate(self, factor: float) -> None:
        """Subclass hook — fluid models must re-plan in-flight flows."""
        self._derate = factor

    def effective_bandwidth(self) -> float:
        """Draw this transfer's bandwidth from the jitter envelope."""
        bw = self.bandwidth * self._derate
        if self.jitter == 0.0:
            return bw
        lo = bw * (1 - self.jitter)
        hi = bw * (1 + self.jitter)
        return self._rng.uniform(lo, hi)

    def transfer(self, size: float, priority: int = 1) -> Event:
        """Begin moving ``size`` bytes; the event triggers on arrival.

        ``priority`` orders queued transfers on disciplines that queue
        (lower = sooner).  Bulk data uses the default; small control
        payloads — kernel results, checkpoints — pass ``0`` so a 4 KB
        ack does not wait behind gigabytes of bulk traffic (real
        messaging layers do the same)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} bw={self.bandwidth:.3g} B/s>"


class SerialLink(Link):
    """Serialising link: one transfer at a time at full bandwidth.

    Queued transfers are served in (priority, arrival) order — FIFO
    within a priority class, which is the paper's g(x) = x/bw model
    for bulk data with small control messages allowed to jump ahead.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Naming the pipe makes NIC queueing visible as slot-wait
        # spans in trace exports.
        self._pipe = PriorityResource(
            self.env, capacity=1, name=f"{self.name}.pipe" if self.name else ""
        )

    @property
    def active_transfers(self) -> int:
        """Transfers in flight or queued."""
        return self._pipe.count + self._pipe.queue_length

    def partition(self) -> None:
        """Cut the link: the in-flight transfer drains, queued ones wait."""
        if not self._partitioned:
            self._partitioned = True
            self._pipe.suspend()

    def heal(self) -> None:
        if self._partitioned:
            self._partitioned = False
            self._pipe.resume_service()

    def transfer(self, size: float, priority: int = 1) -> Event:
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        done = self.env.event()
        self.env.process(self._run(size, done, priority))
        return done

    def _run(self, size: float, done: Event, priority: int = 1):
        with self._pipe.request(priority=priority) as req:
            yield req
            self.utilization.update(self.env.now, 1.0)
            bw = self.effective_bandwidth()
            yield self.env.timeout(self.latency + size / bw)
            self.bytes_transferred += size
            if self._pipe.queue_length == 0:
                self.utilization.update(self.env.now, 0.0)
        done.succeed(size)


class _Flow:
    """One in-flight transfer on a :class:`FairShareLink`."""

    __slots__ = ("remaining", "done", "scale")

    def __init__(self, size: float, done: Event, scale: float) -> None:
        self.remaining = float(size)
        self.done = done
        #: Per-flow bandwidth multiplier from jitter.
        self.scale = scale


class FairShareLink(Link):
    """Fluid processor-sharing link.

    With k active flows each receives ``bandwidth·scale/k``.  The
    implementation keeps per-flow remaining byte counts, advances them
    lazily on every arrival/departure, and maintains a single "next
    completion" wake-up process.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._flows: List[_Flow] = []
        self._last_update = self.env.now
        #: Generation counter: wake-ups armed for an outdated flow set
        #: are ignored when they fire.
        self._generation = 0

    @property
    def active_transfers(self) -> int:
        """Number of flows currently sharing the link."""
        return len(self._flows)

    def transfer(self, size: float, priority: int = 1) -> Event:
        # A fluid fair-share link serves everyone simultaneously, so
        # priority is irrelevant here (accepted for interface parity).
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        done = self.env.event()
        if size == 0 and self.latency == 0:
            done.succeed(0.0)
            return done
        if self.latency > 0:
            self.env.process(self._latent_start(size, done))
        else:
            self._start_flow(size, done)
        return done

    def _latent_start(self, size: float, done: Event):
        yield self.env.timeout(self.latency)
        self._start_flow(size, done)

    def _start_flow(self, size: float, done: Event) -> None:
        if size == 0:
            done.succeed(0.0)
            return
        self._advance()
        flow = _Flow(size, done, self.effective_bandwidth() / self.bandwidth)
        self._flows.append(flow)
        self.utilization.update(self.env.now, 1.0)
        self._reschedule()

    # -- failure hooks -------------------------------------------------------
    def partition(self) -> None:
        """Freeze every flow: progress stops, nothing completes."""
        if self._partitioned:
            return
        self._advance()  # credit progress up to the cut at the old rate
        self._partitioned = True
        self._reschedule()  # bump generation → disarm pending wake-ups

    def heal(self) -> None:
        if not self._partitioned:
            return
        self._advance()  # zero-rate interval: only moves _last_update
        self._partitioned = False
        self._reschedule()

    def _apply_rate(self, factor: float) -> None:
        self._advance()  # old rate applies up to now
        self._derate = factor
        self._reschedule()

    # -- fluid bookkeeping ---------------------------------------------------
    def _per_flow_rate(self, flow: _Flow) -> float:
        if self._partitioned:
            return 0.0
        return self.bandwidth * self._derate * flow.scale / len(self._flows)

    def _advance(self) -> None:
        """Drain bytes for the time elapsed since the last update."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        finished: List[_Flow] = []
        for flow in self._flows:
            moved = self._per_flow_rate(flow) * dt
            flow.remaining -= moved
            self.bytes_transferred += min(moved, moved + flow.remaining)
            if flow.remaining <= 1e-9:
                finished.append(flow)
        for flow in finished:
            self._flows.remove(flow)
            flow.done.succeed()
        if not self._flows:
            self.utilization.update(now, 0.0)

    def _reschedule(self) -> None:
        """(Re)arm the wake-up for the earliest flow completion.

        Every call bumps the generation; a wake-up armed under an older
        generation is a no-op when it fires, which disarms superseded
        timers without cancellation support in the engine.
        """
        self._generation += 1
        if not self._flows or self._partitioned:
            return
        generation = self._generation
        eta = min(f.remaining / self._per_flow_rate(f) for f in self._flows)
        wakeup = self.env.timeout(eta)

        def _on_wakeup(_event: Event, _gen: int = generation) -> None:
            if _gen != self._generation:
                return
            self._advance()
            self._reschedule()

        wakeup.callbacks.append(_on_wakeup)
