"""Cluster configuration objects.

All data sizes are bytes, rates bytes/second, times seconds.  The
constants ``KB``/``MB``/``GB`` follow the paper's (binary) usage:
"each I/O requesting 128MB, 256MB, 512MB and 1GB data".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

KB: int = 1024
MB: int = 1024 * 1024
GB: int = 1024 * 1024 * 1024

#: Measured bandwidth of Discfarm's Gigabit Ethernet (paper Sec. IV-A).
DISCFARM_BANDWIDTH: float = 118 * MB

#: Observed bandwidth variation range, paper Sec. IV-B.2: "the network
#: bandwidth is not always fixed in practice and ranged from 111MB/s to
#: 120MB/s".
DISCFARM_BANDWIDTH_MIN: float = 111 * MB
DISCFARM_BANDWIDTH_MAX: float = 120 * MB


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one node.

    Parameters
    ----------
    cores:
        Number of CPU cores available to processing kernels.
    core_speed:
        Relative per-core speed multiplier applied to every kernel's
        calibrated processing rate.  1.0 means the paper's PowerEdge
        R415 core ("the storage node and the compute node have the same
        processing capability in our evaluations").
    memory_bytes:
        RAM available for kernel buffers; drives the memory-utilisation
        component of the Contention Estimator's probe.
    disk_bandwidth:
        Sequential read bandwidth of local storage.  The paper's model
        folds disk time into the constant kernel/network rates, so the
        default is fast enough not to be the bottleneck; it can be
        lowered for ablations.
    """

    cores: int = 2
    core_speed: float = 1.0
    memory_bytes: int = 8 * GB
    disk_bandwidth: float = 500 * MB

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if self.core_speed <= 0:
            raise ValueError(f"core_speed must be positive, got {self.core_speed}")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.disk_bandwidth <= 0:
            raise ValueError("disk_bandwidth must be positive")


@dataclass(frozen=True)
class ClusterConfig:
    """A complete machine description for one simulation.

    Parameters
    ----------
    n_compute, n_storage:
        Node counts.  The paper's contention experiments use a single
        storage node serving 1–64 requesting processes.
    compute_spec, storage_spec:
        Per-class hardware.  The paper restricts storage nodes to two
        cores (Sec. IV-A); compute nodes use all of theirs.
    network_bandwidth:
        Nominal point-to-point bandwidth in bytes/s.
    bandwidth_jitter:
        Fractional uniform jitter on each transfer's effective
        bandwidth, reproducing the 111–120 MB/s variation the paper
        blames for its scheduler's 5 % misjudgment rate.  0 disables.
    stripe_size:
        PVFS striping unit.
    network_latency:
        Fixed per-transfer latency in seconds (connection setup +
        propagation).  One of the real-system factors the paper's
        scheduling algorithm deliberately ignores ("other factors,
        such as the system task scheduling and network latency, are
        not considered") and a source of its boundary misjudgments.
    seed:
        Seed for every stochastic element (jitter); runs are fully
        reproducible.
    model_disk:
        When False (the paper's effective abstraction), server-side
        disk reads are folded into kernel/network service times.  When
        True, an explicit disk stage with ``disk_bandwidth`` is
        simulated before compute/transfer.
    """

    n_compute: int = 15
    n_storage: int = 1
    compute_spec: NodeSpec = field(default_factory=lambda: NodeSpec(cores=8))
    storage_spec: NodeSpec = field(default_factory=lambda: NodeSpec(cores=2))
    network_bandwidth: float = DISCFARM_BANDWIDTH
    bandwidth_jitter: float = 0.0
    stripe_size: int = 4 * MB
    network_latency: float = 0.0
    seed: int = 20120924  # CLUSTER'12 conference dates
    model_disk: bool = False

    def __post_init__(self) -> None:
        if self.n_compute <= 0 or self.n_storage <= 0:
            raise ValueError("node counts must be positive")
        if self.network_bandwidth <= 0:
            raise ValueError("network_bandwidth must be positive")
        if not 0 <= self.bandwidth_jitter < 1:
            raise ValueError("bandwidth_jitter must lie in [0, 1)")
        if self.stripe_size <= 0:
            raise ValueError("stripe_size must be positive")
        if self.network_latency < 0:
            raise ValueError("network_latency must be non-negative")

    def with_(self, **changes) -> "ClusterConfig":
        """Return a modified copy (dataclasses.replace sugar)."""
        return replace(self, **changes)


def discfarm_config(
    n_storage: int = 1,
    n_compute: Optional[int] = None,
    jitter: bool = False,
) -> ClusterConfig:
    """The paper's testbed (Sec. IV-A).

    One Dell R515 plus 15 R415 nodes on 1 GigE at a measured
    118 MB/s; experiments used only R415s, storage nodes simulated with
    2 cores, compute and storage cores equally fast.

    Parameters
    ----------
    n_storage:
        Number of storage nodes (the paper reports per-storage-node
        request counts, so 1 is the canonical choice).
    n_compute:
        Number of compute nodes; default 64 so every "64 I/Os per
        storage node" point can place each requesting process on its
        own node, matching the paper's one-process-per-I/O assumption.
    jitter:
        Enable the 111–120 MB/s bandwidth variation.
    """
    if n_compute is None:
        n_compute = 64 * n_storage
    # 111..120 around 118 is asymmetric; use the paper's span as the
    # jitter envelope: half-width ~4.5/118.
    jitter_frac = ((DISCFARM_BANDWIDTH_MAX - DISCFARM_BANDWIDTH_MIN) / 2) / DISCFARM_BANDWIDTH
    return ClusterConfig(
        n_compute=n_compute,
        n_storage=n_storage,
        compute_spec=NodeSpec(cores=8, core_speed=1.0),
        storage_spec=NodeSpec(cores=2, core_speed=1.0),
        network_bandwidth=DISCFARM_BANDWIDTH,
        bandwidth_jitter=jitter_frac if jitter else 0.0,
    )
