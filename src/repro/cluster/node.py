"""Node models: CPU cores, memory, disks.

A storage node in the paper owns two cores shared by all offloaded
processing kernels; compute nodes run client-side kernels on their own
cores.  ``CpuCores`` is the shared execution engine: it models a pool
of cores, tracks utilisation for the Contention Estimator, and exposes
an interruptible ``compute()`` process used by kernels (so the Active
I/O Runtime can preempt them mid-execution and migrate the work).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.engine import Environment
from repro.sim.exceptions import Failure, Interrupt
from repro.sim.monitor import TimeWeightedStat
from repro.sim.resources import Container, PriorityResource
from repro.cluster.config import NodeSpec


class CpuCores:
    """A pool of CPU cores with utilisation accounting.

    Kernels call :meth:`compute` inside their own process:

    .. code-block:: python

        done_bytes = yield from cores.compute(nbytes, rate)

    ``rate`` is the kernel's calibrated single-core processing rate in
    bytes/second (paper Table III); ``core_speed`` scales it.  The call
    occupies exactly one core — matching the paper's per-request
    execution model, where each active I/O's kernel runs on one core
    and concurrency comes from multiple requests.

    If the owning process is interrupted while computing, the core is
    released and the :class:`~repro.sim.exceptions.Interrupt`
    propagates to the caller, which is expected to checkpoint (see
    ``repro.kernels.base``).  ``compute`` reports how many bytes were
    finished before the interrupt through the exception's ``cause``
    augmentation — callers use :func:`partial_progress`.
    """

    def __init__(self, env: Environment, spec: NodeSpec, name: str = "cpu") -> None:
        self.env = env
        self.spec = spec
        self.name = name
        self._pool = PriorityResource(env, capacity=spec.cores, name=name)
        self.busy = TimeWeightedStat(env.now, 0.0)
        #: Straggler model: fraction of nominal per-core speed currently
        #: delivered, in (0, 1].  Applies to computations that *start*
        #: while derated; in-flight work keeps its original rate (the
        #: injector interrupts running kernels so they re-enter
        #: scheduling at the new speed).
        self._derate = 1.0

    @property
    def cores(self) -> int:
        """Total cores."""
        return self._pool.capacity

    @property
    def busy_cores(self) -> int:
        """Cores currently executing."""
        return self._pool.count

    @property
    def queued(self) -> int:
        """Computations waiting for a core."""
        return self._pool.queue_length

    def utilization(self) -> float:
        """Instantaneous fraction of busy cores in [0, 1]."""
        return self._pool.count / self._pool.capacity

    def mean_utilization(self) -> float:
        """Time-weighted mean utilisation since creation."""
        return self.busy.mean(self.env.now) / self._pool.capacity

    @property
    def derate_factor(self) -> float:
        """Current straggler slowdown factor (1.0 = healthy)."""
        return self._derate

    def derate(self, factor: float) -> None:
        """Slow every core to ``factor`` × nominal speed (failure hook)."""
        if not 0 < factor <= 1:
            raise ValueError(f"derate factor must lie in (0, 1], got {factor}")
        self._derate = float(factor)

    def restore(self) -> None:
        """Return cores to nominal speed."""
        self._derate = 1.0

    def effective_rate(self, base_rate: float) -> float:
        """Single-core processing rate for a kernel on this node."""
        return base_rate * self.spec.core_speed * self._derate

    def compute(
        self,
        nbytes: float,
        rate: float,
        priority: int = 0,
        already_done: float = 0.0,
    ) -> Generator:
        """Process ``nbytes - already_done`` bytes at ``rate`` B/s/core.

        A plain generator to be driven with ``yield from`` inside the
        calling process, so interrupts land in the caller's frame.
        Returns the total bytes completed (== ``nbytes`` normally).

        On interrupt, re-raises with the cause wrapped in
        :class:`ComputeInterrupted` carrying the bytes completed so
        far, so kernels can checkpoint precisely.
        """
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        remaining = nbytes - already_done
        if remaining <= 0:
            return nbytes

        req = self._pool.request(priority=priority)
        try:
            yield req
        except Interrupt as intr:
            req.cancel()
            raise _wrap_interrupt(intr, already_done) from None

        self.busy.update(self.env.now, float(self._pool.count))
        started = self.env.now
        speed = self.effective_rate(rate)
        try:
            yield self.env.timeout(remaining / speed)
        except Interrupt as intr:
            progressed = (self.env.now - started) * speed
            done = min(nbytes, already_done + progressed)
            req.cancel()
            self.busy.update(self.env.now, float(self._pool.count))
            raise _wrap_interrupt(intr, done) from None

        req.cancel()
        self.busy.update(self.env.now, float(self._pool.count))
        return nbytes


class ComputeInterrupted(Interrupt):
    """Interrupt enriched with the bytes completed before preemption."""

    def __init__(self, cause, bytes_done: float) -> None:
        super().__init__(cause)
        self.bytes_done = bytes_done


class FailedCompute(ComputeInterrupted, Failure):
    """A compute preempted by a component *failure*, not a scheduler.

    Inherits both :class:`ComputeInterrupted` (bytes done) and
    :class:`~repro.sim.exceptions.Failure` so handlers can distinguish
    demotion (checkpoint + migrate) from failure (checkpoint or drop).
    """


def _wrap_interrupt(intr: Interrupt, bytes_done: float) -> ComputeInterrupted:
    """Preserve failure-ness when enriching an interrupt with progress."""
    cls = FailedCompute if isinstance(intr, Failure) else ComputeInterrupted
    return cls(intr.cause, bytes_done)


class Node:
    """Base node: identity, cores, memory."""

    def __init__(self, env: Environment, name: str, spec: NodeSpec) -> None:
        self.env = env
        self.name = name
        self.spec = spec
        self.cpu = CpuCores(env, spec, name=f"{name}.cpu")
        self.memory = Container(env, capacity=float(spec.memory_bytes), init=0.0)

    def memory_utilization(self) -> float:
        """Fraction of RAM currently claimed by kernel buffers."""
        return self.memory.level / self.memory.capacity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} cores={self.spec.cores}>"


class ComputeNode(Node):
    """A client node running application processes and the ASC."""


class StorageNode(Node):
    """A server node: disk plus the I/O request queue of Figure 1.

    The actual queue object is attached by the PVFS server
    (``repro.pvfs.server``); the node only supplies hardware.
    """

    def __init__(self, env: Environment, name: str, spec: NodeSpec) -> None:
        super().__init__(env, name, spec)
        self.disk_bandwidth = spec.disk_bandwidth

    def disk_read(self, nbytes: float) -> Generator:
        """Read ``nbytes`` from local disk (yield from inside a process)."""
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        yield self.env.timeout(nbytes / self.disk_bandwidth)
        return nbytes
