"""Cluster topology: the wiring between nodes and links.

Builds the full machine from a :class:`~repro.cluster.config.ClusterConfig`:
compute nodes, storage nodes, and one network link per storage node (the
paper's bottleneck is the storage node's NIC, shared by every compute
node it serves — Figure 1).  A :mod:`networkx` graph mirror is kept for
introspection, path queries and visual debugging.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.sim.engine import Environment
from repro.cluster.config import ClusterConfig
from repro.cluster.network import FairShareLink, Link, SerialLink
from repro.cluster.node import ComputeNode, StorageNode


class ClusterTopology:
    """All nodes and links of one simulated machine.

    Parameters
    ----------
    env:
        Simulation environment.
    config:
        Machine description.
    link_cls:
        Sharing discipline for storage-node NICs; the default
        ``SerialLink`` matches the paper's g(x) = x/bw serialisation.
        Pass :class:`FairShareLink` for the processor-sharing ablation.
    """

    def __init__(
        self,
        env: Environment,
        config: ClusterConfig,
        link_cls: type = SerialLink,
    ) -> None:
        self.env = env
        self.config = config

        self.compute_nodes: List[ComputeNode] = [
            ComputeNode(env, f"cn{i}", config.compute_spec)
            for i in range(config.n_compute)
        ]
        self.storage_nodes: List[StorageNode] = [
            StorageNode(env, f"sn{i}", config.storage_spec)
            for i in range(config.n_storage)
        ]
        #: One shared link per storage node (its NIC — the contended
        #: resource in Figure 1).  Jitter seeds differ per link so the
        #: variation is independent across servers.
        self.links: Dict[str, Link] = {
            sn.name: link_cls(
                env,
                bandwidth=config.network_bandwidth,
                jitter=config.bandwidth_jitter,
                latency=config.network_latency,
                seed=config.seed + i,
                name=f"{sn.name}.nic",
            )
            for i, sn in enumerate(self.storage_nodes)
        }

        self.graph = self._build_graph()

    def _build_graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_node("switch", kind="switch")
        for cn in self.compute_nodes:
            g.add_node(cn.name, kind="compute", cores=cn.spec.cores)
            g.add_edge(cn.name, "switch", bandwidth=self.config.network_bandwidth)
        for sn in self.storage_nodes:
            g.add_node(sn.name, kind="storage", cores=sn.spec.cores)
            g.add_edge(sn.name, "switch", bandwidth=self.config.network_bandwidth)
        return g

    # -- lookup ----------------------------------------------------------
    def storage_node(self, index: int) -> StorageNode:
        """Storage node by index."""
        return self.storage_nodes[index]

    def compute_node(self, index: int) -> ComputeNode:
        """Compute node by index."""
        return self.compute_nodes[index]

    def link_for(self, storage: StorageNode) -> Link:
        """The NIC link of ``storage``."""
        return self.links[storage.name]

    def path_bandwidth(self, a: str, b: str) -> float:
        """Min edge bandwidth on the shortest path between two nodes."""
        path = nx.shortest_path(self.graph, a, b)
        return min(
            self.graph.edges[u, v]["bandwidth"] for u, v in zip(path, path[1:])
        )

    def assignment(self) -> Dict[str, str]:
        """Round-robin mapping of compute node → home storage node.

        Mirrors the Intrepid-style "64 compute nodes share one I/O
        node" fan-in the paper's introduction describes.
        """
        out: Dict[str, str] = {}
        ns = len(self.storage_nodes)
        for i, cn in enumerate(self.compute_nodes):
            out[cn.name] = self.storage_nodes[i % ns].name
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ClusterTopology compute={len(self.compute_nodes)} "
            f"storage={len(self.storage_nodes)}>"
        )
