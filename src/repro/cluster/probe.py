"""System-state probes for the Contention Estimator.

Paper Sec. III-A: "A Contention Estimator (CE) periodically probes the
system state, including CPU utilization, memory utilization and I/O
queue."  :class:`SystemProbe` is the snapshot; :class:`NodeProber`
produces one from a storage node plus its attached I/O queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence

from repro.cluster.node import StorageNode


@dataclass(frozen=True)
class SystemProbe:
    """One snapshot of a storage node's state.

    Attributes
    ----------
    time:
        Simulated time of the probe.
    cpu_utilization:
        Fraction of the node's cores busy, in [0, 1].
    memory_utilization:
        Fraction of RAM claimed, in [0, 1].
    io_queue_length:
        n — total I/O requests queued (paper Table II notation).
    active_queue_length:
        k — active I/O requests among them.
    queued_bytes:
        D — total request data size in the queue.
    active_bytes:
        D_A — data requested by active I/Os.
    running_kernels:
        Kernels presently executing on the node's cores.
    stale:
        True when this snapshot is a *replay* of an older probe because
        the live probe was lost (node unreachable / prober suppressed).
        Estimators should treat stale state as degradation.
    cpu_derate:
        Fraction of nominal core speed the node currently delivers,
        in (0, 1] — below 1.0 the node is a straggler and its
        processing capability must be scaled down accordingly.
    """

    time: float
    cpu_utilization: float
    memory_utilization: float
    io_queue_length: int
    active_queue_length: int
    queued_bytes: float
    active_bytes: float
    running_kernels: int = 0
    stale: bool = False
    cpu_derate: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.cpu_utilization <= 1 + 1e-9:
            raise ValueError(f"cpu_utilization out of range: {self.cpu_utilization}")
        if not 0 <= self.memory_utilization <= 1 + 1e-9:
            raise ValueError(
                f"memory_utilization out of range: {self.memory_utilization}"
            )
        if self.io_queue_length < 0 or self.active_queue_length < 0:
            raise ValueError("queue lengths must be non-negative")
        if self.active_queue_length > self.io_queue_length:
            raise ValueError("active queue cannot exceed total queue")

    @property
    def normal_bytes(self) -> float:
        """D_N — data requested by normal I/Os (D = D_A + D_N)."""
        return self.queued_bytes - self.active_bytes

    @property
    def is_saturated(self) -> bool:
        """True when every core is busy — new offloads will queue."""
        return self.cpu_utilization >= 1.0 - 1e-9


class NodeProber:
    """Samples a :class:`StorageNode` and its I/O queue.

    Parameters
    ----------
    node:
        The storage node to observe.
    queue_inspector:
        Zero-argument callable returning
        ``(n, k, total_bytes, active_bytes)`` for the node's I/O queue.
        Supplied by the PVFS server, which owns the queue.
    """

    def __init__(
        self,
        node: StorageNode,
        queue_inspector: Optional[Callable[[], tuple]] = None,
    ) -> None:
        self.node = node
        self.queue_inspector = queue_inspector or (lambda: (0, 0, 0.0, 0.0))
        #: Retained history of probes (most recent last).
        self.history: List[SystemProbe] = []
        #: Until this simulated time, live probes are lost (fault
        #: injection): :meth:`probe` replays the last snapshot marked
        #: ``stale`` instead of sampling the node.
        self._suppressed_until = float("-inf")

    def suppress_until(self, time: float) -> None:
        """Drop live probes until ``time`` (probe-loss fault)."""
        self._suppressed_until = max(self._suppressed_until, time)

    @property
    def suppressed(self) -> bool:
        """True while live probes are being lost."""
        return self.node.env.now < self._suppressed_until

    def probe(self) -> SystemProbe:
        """Take and record a snapshot now.

        While suppressed, returns a ``stale`` replay of the last real
        snapshot (or an empty stale snapshot if none exists yet) and
        does *not* append to :attr:`history` — the estimator sees old
        state exactly as it would if the probe message were dropped.
        """
        tr = self.node.env.tracer
        if self.suppressed:
            if self.history:
                snap = replace(self.history[-1], stale=True)
            else:
                snap = SystemProbe(
                    time=self.node.env.now,
                    cpu_utilization=0.0,
                    memory_utilization=0.0,
                    io_queue_length=0,
                    active_queue_length=0,
                    queued_bytes=0.0,
                    active_bytes=0.0,
                    stale=True,
                )
            if tr.enabled:
                tr.instant(
                    self.node.env.now,
                    "probe",
                    f"probe:{self.node.name}",
                    stale=True,
                    n=snap.io_queue_length,
                    k=snap.active_queue_length,
                )
            return snap
        n, k, total_bytes, active_bytes = self.queue_inspector()
        snap = SystemProbe(
            time=self.node.env.now,
            cpu_utilization=min(1.0, self.node.cpu.utilization()),
            memory_utilization=min(1.0, self.node.memory_utilization()),
            io_queue_length=int(n),
            active_queue_length=int(k),
            queued_bytes=float(total_bytes),
            active_bytes=float(active_bytes),
            running_kernels=self.node.cpu.busy_cores,
            cpu_derate=self.node.cpu.derate_factor,
        )
        self.history.append(snap)
        if tr.enabled:
            tr.instant(
                self.node.env.now,
                "probe",
                f"probe:{self.node.name}",
                n=snap.io_queue_length,
                k=snap.active_queue_length,
                D=snap.queued_bytes,
                D_A=snap.active_bytes,
                cpu=snap.cpu_utilization,
                mem=snap.memory_utilization,
                derate=snap.cpu_derate,
            )
        return snap

    def latest(self) -> Optional[SystemProbe]:
        """Most recent probe, or None before the first probe."""
        return self.history[-1] if self.history else None
