"""Cluster model: nodes, CPUs, network links and system probes.

The DOSAS paper evaluated its prototype on the Discfarm cluster at
Texas Tech (Sec. IV-A): Dell PowerEdge nodes on 1 Gigabit Ethernet with
a measured bandwidth of 118 MB/s, each storage node restricted to two
cores, and compute nodes with the same per-core capability as storage
nodes.  This subpackage reproduces that machine as a discrete-event
model with every rate configurable, so both the paper's testbed and
exascale-style what-if configurations can be simulated.
"""

from repro.cluster.config import (
    ClusterConfig,
    NodeSpec,
    discfarm_config,
    MB,
    GB,
    KB,
)
from repro.cluster.node import (
    ComputeNode,
    ComputeInterrupted,
    CpuCores,
    FailedCompute,
    Node,
    StorageNode,
)
from repro.cluster.network import FairShareLink, Link, SerialLink
from repro.cluster.probe import NodeProber, SystemProbe
from repro.cluster.topology import ClusterTopology

__all__ = [
    "ClusterConfig",
    "ClusterTopology",
    "ComputeInterrupted",
    "ComputeNode",
    "CpuCores",
    "FailedCompute",
    "FairShareLink",
    "GB",
    "KB",
    "Link",
    "MB",
    "Node",
    "NodeProber",
    "NodeSpec",
    "SerialLink",
    "StorageNode",
    "SystemProbe",
    "discfarm_config",
]
