"""Chaos-soak report formatting.

Turns a :class:`repro.qos.soak.SoakReport` into the table the CLI
prints: one row per (seed, scheme) with goodput, retry pressure, how
the active work was answered, and whether the run stayed clean.  The
acceptance verdict — protected DOSAS goodput at least plain AS goodput
on every seed, zero conservation violations — is computed here so the
CLI and the CI smoke job share one definition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.analysis.report import format_table

if TYPE_CHECKING:  # import cycle guard: analysis must not pull core at import
    from repro.qos.soak import SoakReport, SoakRun


def _mbps(goodput: float) -> str:
    return f"{goodput / 1e6:.1f}" if goodput else "-"


def _row(seed: int, run: "SoakRun") -> List[str]:
    status = "ok"
    if run.failed:
        status = "FAILED"
    elif run.violations:
        status = f"{len(run.violations)} violation(s)"
    return [
        str(seed),
        run.scheme,
        _mbps(run.goodput),
        "-" if run.makespan == float("inf") else f"{run.makespan:.3f}",
        str(run.retries),
        str(run.served_active),
        str(run.demoted),
        status,
    ]


def soak_acceptance(report: "SoakReport") -> List[str]:
    """Why this report fails acceptance (empty = it passes).

    A protected report must show zero invariant violations, no dead
    runs, and DOSAS goodput >= plain AS goodput on every seed.  An
    unprotected report is degradation *evidence*, so only invariant
    violations count against it — dying in a retry storm is the point.
    """
    problems = list(report.violations())
    if report.protected:
        for sr in report.seeds:
            if sr.dosas.failed:
                problems.append(f"seed {sr.seed}: DOSAS died: {sr.dosas.failed}")
            if sr.dosas.goodput < sr.plain_as.goodput:
                problems.append(
                    f"seed {sr.seed}: DOSAS goodput "
                    f"{_mbps(sr.dosas.goodput)} MB/s below plain AS "
                    f"{_mbps(sr.plain_as.goodput)} MB/s"
                )
    return problems


def format_soak_report(report: "SoakReport") -> str:
    """Human-readable soak summary: per-seed table plus the verdict."""
    rows = []
    for sr in report.seeds:
        rows.append(_row(sr.seed, sr.dosas))
        rows.append(_row(sr.seed, sr.plain_as))
    table = format_table(
        ["seed", "scheme", "MB/s", "makespan", "retries", "served", "demoted",
         "status"],
        rows,
    )
    mode = "protected" if report.protected else "UNPROTECTED"
    lines = [f"chaos soak [{mode}] — scenario '{report.scenario}', "
             f"{len(report.seeds)} seed(s)", table]
    problems = soak_acceptance(report)
    if problems:
        lines.append("acceptance: FAIL")
        lines.extend(f"  - {p}" for p in problems)
    else:
        lines.append("acceptance: PASS")
    return "\n".join(lines)
