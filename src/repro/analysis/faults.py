"""Fault-run metrics: goodput, recovery latency, retries, wasted work.

A fault run (``run_scheme(..., fault_schedule=...)``) completes the
same workload as a fault-free run — the recovery invariant guarantees
every byte is eventually delivered — so the interesting numbers are
*how much* the failures cost:

goodput
    Useful bytes per second of makespan.  Each requested byte counts
    once no matter how often a retry re-read it, so goodput degrades
    with every second recovery adds.
recovery latency
    Per recovered request: time from its first retry-triggering event
    (timeout or failed reply) until the attempt that finally succeeded
    was issued.  Measures how long the client-side retry loop needed
    to route around the failure.
retries / timeouts / failures
    Raw counts from the retry loop.
wasted bytes
    Kernel progress discarded on the storage side (work a crash or a
    stall destroyed before a checkpoint could save it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.schemes import SchemeResult


@dataclass(frozen=True)
class FaultRunMetrics:
    """Summary statistics of one scheme run under a fault schedule."""

    scheme: str
    kernel: str
    makespan: float
    #: Useful MB/s (every requested byte counted once).
    goodput_mb_s: float
    #: Fraction of the fault-free goodput retained (1.0 = unaffected).
    #: Only set when a baseline is supplied to :func:`summarize_fault_run`.
    goodput_retention: float
    retries: int
    retry_timeouts: int
    failed_requests: int
    wasted_mb: float
    #: Requests that needed at least one retry to complete.
    recovered_requests: int
    #: Mean seconds between a request's first failure signal and its
    #: final (successful) re-issue.  0.0 when nothing needed recovery.
    mean_recovery_latency: float
    max_recovery_latency: float
    #: Injected fault actions, as the injector logged them.
    fault_events: List[Dict[str, Any]] = field(default_factory=list)


def recovery_latencies(retry_events: List[Dict[str, Any]]) -> List[float]:
    """Per-parent-request recovery spans from a retry log.

    The retry log has one entry per *failed attempt* (timeout or
    failed reply) with ``time``/``parent``/``attempt``.  For each
    parent request the recovery latency is the span from its first
    failure to its last — i.e. how long the backoff loop churned
    before the attempt that went on to succeed.  A request whose first
    attempt failed exactly once recovers "instantly" (span 0.0) —
    the next re-issue succeeded.
    """
    by_parent: Dict[Any, List[float]] = {}
    for entry in retry_events:
        by_parent.setdefault(entry["parent"], []).append(entry["time"])
    return [max(times) - min(times) for times in by_parent.values()]


def summarize_fault_run(
    result: SchemeResult,
    baseline: SchemeResult = None,
) -> FaultRunMetrics:
    """Flatten a fault run into reportable numbers.

    ``baseline`` is the matching fault-free run of the *same* scheme
    and spec; when given, ``goodput_retention`` reports the fraction
    of healthy goodput the scheme kept under the schedule.
    """
    mb = 1024 * 1024
    retention = float("nan")
    if baseline is not None:
        if baseline.spec.total_bytes != result.spec.total_bytes:
            raise ValueError("baseline covers a different workload")
        if baseline.goodput > 0:
            retention = result.goodput / baseline.goodput
    latencies = recovery_latencies(result.retry_events)
    recovered = len({e["parent"] for e in result.retry_events})
    return FaultRunMetrics(
        scheme=result.scheme.value,
        kernel=result.spec.kernel,
        makespan=result.makespan,
        goodput_mb_s=result.goodput / mb,
        goodput_retention=retention,
        retries=result.retries,
        retry_timeouts=result.retry_timeouts,
        failed_requests=result.failed_requests,
        wasted_mb=result.wasted_bytes / mb,
        recovered_requests=recovered,
        mean_recovery_latency=(
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        max_recovery_latency=max(latencies) if latencies else 0.0,
        fault_events=list(result.fault_log),
    )
