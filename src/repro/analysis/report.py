"""Plain-text report rendering used by the benchmark harness."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Fixed-width text table.

    Numbers are rendered with sensible precision; columns sized to
    content.  Suitable for terminal output inside pytest-benchmark
    runs (``-s`` shows it).
    """
    def render(cell: Any) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            if abs(cell) >= 1:
                return f"{cell:.2f}"
            return f"{cell:.4f}"
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(
    title: str,
    x_label: str,
    series: Dict[str, List[tuple]],
) -> str:
    """Render {scheme: [(x, y), …]} as one table with a column per scheme."""
    xs = sorted({x for points in series.values() for x, _y in points})
    by_scheme = {
        name: dict(points) for name, points in series.items()
    }
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        rows.append([x] + [by_scheme[name].get(x, "-") for name in series])
    return f"{title}\n{format_table(headers, rows)}"
