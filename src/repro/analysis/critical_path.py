"""Per-request critical-path breakdown from trace exports.

Every traced request leaves a chain of span events behind (see
``repro.obs`` and ``docs/observability.md``):

.. code-block:: text

    enqueue → [policy-decision] → dispatch → … → reply

This module folds that chain back into one :class:`RequestPath` per
request id, splitting end-to-end latency into the stages the paper's
cost model reasons about — queueing delay, the estimator's decision
point, and service time — so a slow run can be diagnosed request by
request instead of from aggregate means.

Works on live ``Tracer.events`` lists and on events re-loaded from a
trace file (``repro.obs.export.events_from_file``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.tracer import SpanEvent
from repro.analysis.report import format_table


@dataclass
class RequestPath:
    """Lifecycle milestones of one traced request.

    Milestones that did not occur (e.g. ``decided_at`` for a plain
    normal I/O that never reached a policy) stay ``None``.
    """

    rid: int
    track: str = ""
    kind: str = ""
    enqueued_at: Optional[float] = None
    decided_at: Optional[float] = None
    dispatched_at: Optional[float] = None
    replied_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Request-span outcome attr: completed | demoted | crashed | cancelled.
    outcome: Optional[str] = None
    #: Policy verdict, when a decision was traced: active | normal.
    verdict: Optional[str] = None
    #: Dispatch modes seen, in order (normal, write, kernel, demote).
    dispatch_modes: List[str] = field(default_factory=list)
    retries: int = 0
    demotions: int = 0

    @property
    def closed(self) -> bool:
        """True when the request span was explicitly ended."""
        return self.finished_at is not None

    @property
    def queue_time(self) -> Optional[float]:
        """Enqueue → first dispatch (None when either is missing)."""
        if self.enqueued_at is None or self.dispatched_at is None:
            return None
        return self.dispatched_at - self.enqueued_at

    @property
    def decision_time(self) -> Optional[float]:
        """Enqueue → policy decision."""
        if self.enqueued_at is None or self.decided_at is None:
            return None
        return self.decided_at - self.enqueued_at

    @property
    def service_time(self) -> Optional[float]:
        """First dispatch → reply."""
        if self.dispatched_at is None or self.replied_at is None:
            return None
        return self.replied_at - self.dispatched_at

    @property
    def total_time(self) -> Optional[float]:
        """Enqueue → end of the request span."""
        if self.enqueued_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.enqueued_at


def _attrs(event: SpanEvent) -> Dict[str, object]:
    return dict(event.attrs)


def critical_paths(events: Iterable[SpanEvent]) -> Dict[int, RequestPath]:
    """Fold span events into one :class:`RequestPath` per request id."""
    paths: Dict[int, RequestPath] = {}

    def path(rid: int) -> RequestPath:
        if rid not in paths:
            paths[rid] = RequestPath(rid=rid)
        return paths[rid]

    for ev in sorted(events, key=lambda e: e.time):
        if ev.rid is None:
            continue
        attrs = _attrs(ev)
        if ev.kind == "request":
            p = path(ev.rid)
            if ev.phase == "b":
                p.track = ev.track
                p.kind = str(attrs.get("io", p.kind))
            elif ev.phase == "e":
                p.finished_at = ev.time
                p.outcome = str(attrs.get("outcome", "")) or p.outcome
        elif ev.kind == "enqueue":
            p = path(ev.rid)
            if p.enqueued_at is None:
                p.enqueued_at = ev.time
        elif ev.kind == "policy-decision":
            p = path(ev.rid)
            if p.decided_at is None:
                p.decided_at = ev.time
                p.verdict = str(attrs.get("verdict", "")) or None
        elif ev.kind == "dispatch":
            p = path(ev.rid)
            if p.dispatched_at is None:
                p.dispatched_at = ev.time
            mode = attrs.get("mode")
            if mode is not None:
                p.dispatch_modes.append(str(mode))
        elif ev.kind == "reply":
            p = path(ev.rid)
            if p.replied_at is None:
                p.replied_at = ev.time
        elif ev.kind == "retry":
            path(ev.rid).retries += 1
        elif ev.kind == "demote":
            path(ev.rid).demotions += 1
    return paths


def unclosed_requests(events: Iterable[SpanEvent]) -> List[int]:
    """Request ids whose ``request`` span began but never ended.

    A non-empty result on a run that drained all its work means a
    lifecycle accounting bug — every completed, demoted, crashed or
    cancelled request must close its span.
    """
    opened: Dict[int, int] = {}
    for ev in events:
        if ev.kind != "request" or ev.rid is None:
            continue
        if ev.phase == "b":
            opened[ev.rid] = opened.get(ev.rid, 0) + 1
        elif ev.phase == "e":
            opened[ev.rid] = opened.get(ev.rid, 0) - 1
    return sorted(rid for rid, depth in opened.items() if depth > 0)


def format_critical_path_table(paths: Dict[int, RequestPath]) -> str:
    """Render the per-request breakdown as a fixed-width table."""
    headers = [
        "rid", "server", "kind", "outcome", "verdict",
        "queue", "service", "total", "retries",
    ]
    rows = []
    for rid in sorted(paths):
        p = paths[rid]

        def cell(value: Optional[float]) -> object:
            return "-" if value is None else value

        rows.append([
            p.rid,
            p.track or "-",
            p.kind or "-",
            p.outcome or ("open" if not p.closed else "-"),
            p.verdict or "-",
            cell(p.queue_time),
            cell(p.service_time),
            cell(p.total_time),
            p.retries,
        ])
    return format_table(headers, rows)
