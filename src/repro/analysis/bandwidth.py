"""Achieved-bandwidth computations (paper Figures 11–12).

The paper plots "Bandwidth achieved of each scheme": aggregate
requested data divided by total execution time — the mirror image of
the execution-time figures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.cluster.config import MB
from repro.core.schemes import SchemeResult


def achieved_bandwidth(result: SchemeResult) -> float:
    """Aggregate bandwidth in bytes/s for one run."""
    if result.makespan <= 0:
        raise ValueError("run has non-positive makespan")
    return result.spec.total_bytes / result.makespan


def bandwidth_series(
    results: Sequence[SchemeResult],
) -> List[Tuple[int, float]]:
    """(n_requests, MB/s) pairs sorted by request count."""
    series = [
        (r.spec.n_requests, achieved_bandwidth(r) / MB) for r in results
    ]
    return sorted(series)
