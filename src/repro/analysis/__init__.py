"""Analysis layer: metrics, figure/table drivers, report formatting.

``figures`` contains one driver per evaluation artefact of the paper
(Figure 2, 4–12, Table III, Table IV) — the benchmarks call these and
print the same rows/series the paper reports.
"""

from repro.analysis.metrics import (
    RunMetrics,
    improvement,
    speedup,
    summarize_run,
)
from repro.analysis.bandwidth import achieved_bandwidth, bandwidth_series
from repro.analysis.faults import (
    FaultRunMetrics,
    recovery_latencies,
    summarize_fault_run,
)
from repro.analysis.charts import render_chart
from repro.analysis.critical_path import (
    RequestPath,
    critical_paths,
    format_critical_path_table,
    unclosed_requests,
)
from repro.analysis.timeline import (
    RequestRecord,
    records_from_plan_result,
    records_from_scheme_result,
    render_gantt,
)
from repro.analysis.report import format_table, render_series
from repro.analysis.soak import format_soak_report, soak_acceptance
from repro.analysis.figures import (
    figure_series,
    bandwidth_figure,
    headline_improvements,
    table3_rows,
    table4_rows,
)

__all__ = [
    "FaultRunMetrics",
    "RequestPath",
    "RequestRecord",
    "RunMetrics",
    "achieved_bandwidth",
    "critical_paths",
    "bandwidth_figure",
    "bandwidth_series",
    "figure_series",
    "format_critical_path_table",
    "format_soak_report",
    "format_table",
    "headline_improvements",
    "improvement",
    "records_from_plan_result",
    "records_from_scheme_result",
    "recovery_latencies",
    "render_chart",
    "render_gantt",
    "render_series",
    "soak_acceptance",
    "speedup",
    "summarize_fault_run",
    "summarize_run",
    "table3_rows",
    "table4_rows",
    "unclosed_requests",
]
