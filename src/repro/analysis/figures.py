"""One driver per evaluation artefact of the paper.

Every figure and table of DOSAS's Sec. IV maps to a function here:

==========  =======================================================
Artefact    Driver
==========  =======================================================
Table III   :func:`table3_rows` — kernel processing rates
Fig. 2/4/5  :func:`figure_series` (gaussian2d, TS vs AS)
Fig. 6      :func:`figure_series` (sum, TS vs AS)
Table IV    :func:`table4_rows` — decision accuracy
Fig. 7–10   :func:`figure_series` (all three schemes, four sizes)
Fig. 11–12  :func:`bandwidth_figure`
headline    :func:`headline_improvements` — the ~40 % / ~21 % claims
==========  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import DISCFARM_BANDWIDTH, MB
from repro.core.model import CostModel, SchedulingInstance
from repro.core.scheduler import Scheduler, ThresholdScheduler
from repro.core.schemes import Scheme, SchemeResult, WorkloadSpec, run_scheme
from repro.kernels.costs import make_paper_model
from repro.workload.sweeps import PAPER_REQUEST_COUNTS, Situation, table4_situations


# ---------------------------------------------------------------- Table III
def table3_rows(nbytes: int = 8 * MB) -> List[dict]:
    """Measured-vs-paper kernel rates (delegates to the calibrator)."""
    from repro.kernels.calibrate import calibration_table

    return calibration_table(nbytes=nbytes)


# ------------------------------------------------------- time figures (2, 4–10)
def _sweep(
    kernel: str,
    request_bytes: int,
    schemes: Sequence[Scheme],
    counts: Sequence[int],
    jitter: bool,
    seed: Optional[int],
    jobs: int,
    cache_dir: Optional[str],
    **spec_overrides,
):
    """Run one figure grid through the sweep runner; yield (point, result)."""
    from repro.cache import ResultCache
    from repro.parallel import SweepRunner
    from repro.workload.sweeps import figure_sweep_points

    points = figure_sweep_points(
        kernel, request_bytes, schemes, counts=counts, jitter=jitter,
        seed=seed, **spec_overrides,
    )
    runner = SweepRunner(
        jobs=jobs,
        cache=ResultCache(cache_dir) if cache_dir else None,
    )
    return zip(points, runner.run(points))


def figure_series(
    kernel: str,
    request_bytes: int,
    schemes: Sequence[Scheme],
    counts: Sequence[int] = PAPER_REQUEST_COUNTS,
    jitter: bool = False,
    seed: Optional[int] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    **spec_overrides,
) -> Dict[str, List[Tuple[int, float]]]:
    """Execution-time series: scheme name → [(n_requests, makespan s)].

    Figure 2 and 4: ``figure_series("gaussian2d", 128*MB, [TS, AS])``.
    Figure 5: same at 512 MB.  Figure 6: ``"sum"`` at 128 MB.
    Figures 7–10: all three schemes at 128 MB–1 GB.

    ``jobs`` fans the grid's independent points across worker
    processes; ``cache_dir`` memoises completed points on disk (see
    ``repro.parallel`` / ``repro.cache``).  The merged series is
    identical whatever ``jobs`` is.
    """
    out: Dict[str, List[Tuple[int, float]]] = {s.value: [] for s in schemes}
    for point, result in _sweep(kernel, request_bytes, schemes, counts,
                                jitter, seed, jobs, cache_dir,
                                **spec_overrides):
        out[point.scheme.value].append((point.spec.n_requests, result.makespan))
    return out


# ------------------------------------------------------ bandwidth figures (11–12)
def bandwidth_figure(
    request_bytes: int,
    kernel: str = "gaussian2d",
    counts: Sequence[int] = PAPER_REQUEST_COUNTS,
    jitter: bool = False,
    seed: Optional[int] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Bandwidth series: scheme → [(n_requests, MB/s)] (Fig. 11–12)."""
    schemes = (Scheme.TS, Scheme.AS, Scheme.DOSAS)
    out: Dict[str, List[Tuple[int, float]]] = {s.value: [] for s in schemes}
    for point, result in _sweep(kernel, request_bytes, schemes, counts,
                                jitter, seed, jobs, cache_dir):
        out[point.scheme.value].append(
            (point.spec.n_requests, result.bandwidth / MB)
        )
    return out


# ------------------------------------------------------------------ Table IV
@dataclass(frozen=True)
class Table4Row:
    """One line of the scheduling-algorithm evaluation."""

    situation: int
    label: str
    algorithm: str   # "Active" | "Normal"
    practice: str    # empirically better choice
    judgment: bool   # algorithm == practice
    margin: float    # |AS - TS| / max — how close the call was


def algorithm_decision(
    kernel: str,
    n_requests: int,
    request_bytes: int,
    scheduler: Optional[Scheduler] = None,
    bandwidth: float = DISCFARM_BANDWIDTH,
) -> str:
    """The DOSAS algorithm's verdict for one homogeneous situation.

    Builds the Eq. 4 instance with nominal parameters and reports
    "Active" when the solver keeps the majority of requests offloaded.
    """
    model = CostModel(
        kernel=make_paper_model(kernel),
        storage_capability=make_paper_model(kernel).rate,
        compute_capability=make_paper_model(kernel).rate,
        bandwidth=bandwidth,
    )
    instance = SchedulingInstance.from_sizes(
        model, [float(request_bytes)] * n_requests
    )
    decision = (scheduler or ThresholdScheduler()).solve(instance)
    return "Active" if decision.n_active * 2 > instance.k else "Normal"


def empirical_best(
    kernel: str,
    n_requests: int,
    request_bytes: int,
    jitter: bool = True,
    seed: int = 0,
    kernel_overhead: float = 0.1,
    network_latency: float = 0.0005,
) -> Tuple[str, float]:
    """Simulate AS and TS; report which won and by what margin.

    The "practice" runs include the two real-system effects the
    paper's Sec. IV-B.2 names as misjudgment causes and which the
    algorithm ignores: bandwidth variation (``jitter``, 111–120 MB/s)
    and system scheduling / network latency (``kernel_overhead``,
    ``network_latency``).
    """
    spec = WorkloadSpec(
        kernel=kernel,
        n_requests=n_requests,
        request_bytes=request_bytes,
        jitter=jitter,
        seed=seed,
        kernel_overhead=kernel_overhead,
        network_latency=network_latency,
    )
    t_as = run_scheme(Scheme.AS, spec).makespan
    t_ts = run_scheme(Scheme.TS, spec).makespan
    margin = abs(t_as - t_ts) / max(t_as, t_ts)
    return ("Active" if t_as <= t_ts else "Normal"), margin


def table4_rows(
    jitter: bool = True,
    seed: int = 0,
    situations: Optional[List[Situation]] = None,
    scheduler: Optional[Scheduler] = None,
) -> List[Table4Row]:
    """The full 64-situation decision-accuracy evaluation (Table IV)."""
    rows: List[Table4Row] = []
    for situation in situations if situations is not None else table4_situations():
        algo = algorithm_decision(
            situation.kernel,
            situation.n_requests,
            situation.request_bytes,
            scheduler=scheduler,
        )
        practice, margin = empirical_best(
            situation.kernel,
            situation.n_requests,
            situation.request_bytes,
            jitter=jitter,
            seed=seed + situation.index,
        )
        rows.append(
            Table4Row(
                situation=situation.index,
                label=situation.label(),
                algorithm=algo,
                practice=practice,
                judgment=algo == practice,
                margin=margin,
            )
        )
    return rows


def table4_accuracy(rows: Sequence[Table4Row]) -> float:
    """Fraction of TRUE judgments (the paper reports 95 %)."""
    if not rows:
        raise ValueError("no rows")
    return sum(1 for r in rows if r.judgment) / len(rows)


# ------------------------------------------------------------- headline claims
def headline_improvements(
    kernel: str = "gaussian2d",
    request_bytes: int = 256 * MB,
    low_contention: int = 1,
    high_contention: int = 32,
    seed: int = 0,
) -> Dict[str, float]:
    """The Sec. IV-B.3 claims.

    "DOSAS achieved roughly the same performance with the AS scheme
    when there was little resource contention, and gained about 40%
    performance improvement compared to the TS scheme.  Meanwhile, the
    DOSAS achieved nearly equal performance to the TS scheme when
    there were more I/O requests, and gained about 21% performance
    improvement compared to the AS scheme."
    """
    from repro.analysis.metrics import improvement

    lo = {
        s: run_scheme(s, WorkloadSpec(kernel=kernel, n_requests=low_contention,
                                      request_bytes=request_bytes, seed=seed)).makespan
        for s in (Scheme.TS, Scheme.AS, Scheme.DOSAS)
    }
    hi = {
        s: run_scheme(s, WorkloadSpec(kernel=kernel, n_requests=high_contention,
                                      request_bytes=request_bytes, seed=seed)).makespan
        for s in (Scheme.TS, Scheme.AS, Scheme.DOSAS)
    }
    return {
        "low_vs_ts": improvement(lo[Scheme.TS], lo[Scheme.DOSAS]),
        "low_vs_as": improvement(lo[Scheme.AS], lo[Scheme.DOSAS]),
        "high_vs_as": improvement(hi[Scheme.AS], hi[Scheme.DOSAS]),
        "high_vs_ts": improvement(hi[Scheme.TS], hi[Scheme.DOSAS]),
    }
