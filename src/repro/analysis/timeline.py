"""Per-request timelines and terminal Gantt rendering.

Answers the operator question the aggregate figures can't: *which*
requests were offloaded, which were demoted, which got migrated, and
how their lifetimes interleave.  The scheme and plan runners produce
:class:`RequestRecord` lists; ``render_gantt`` draws them as lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

#: Lane glyphs by request disposition.
GLYPHS = {
    "offloaded": "█",   # kernel ran on storage
    "demoted": "░",     # client finished the work
    "migrated": "▓",    # started on storage, checkpointed, moved
    "normal": "─",      # plain read (TS / non-active traffic)
}


@dataclass(frozen=True)
class RequestRecord:
    """One request's lifetime and disposition."""

    label: str
    start: float
    end: float
    disposition: str  # one of GLYPHS' keys

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"end {self.end} precedes start {self.start}")
        if self.disposition not in GLYPHS:
            raise ValueError(
                f"unknown disposition {self.disposition!r}; "
                f"choose from {sorted(GLYPHS)}"
            )

    @property
    def duration(self) -> float:
        """Lifetime in simulated seconds."""
        return self.end - self.start


def records_from_scheme_result(result) -> List[RequestRecord]:
    """Build records from a :class:`~repro.core.schemes.SchemeResult`.

    The scheme runner's batch workload arrives at t=0 (or spaced), so
    starts are reconstructed from the spec; dispositions come from the
    run's aggregate counters distributed over completion order —
    offloads finish in executor order, demotions in NIC order.
    """
    from repro.core.schemes import Scheme

    spec = result.spec
    records: List[RequestRecord] = []
    times = result.per_request_times
    if result.scheme is Scheme.TS:
        dispositions = ["normal"] * len(times)
    else:
        # Completion-ordered approximation: served-active completions
        # and demotions interleave; label by counts.
        dispositions = (
            ["offloaded"] * result.served_active
            + ["migrated"] * result.interrupted
            + ["demoted"] * (result.demoted - result.interrupted)
        )
        dispositions = dispositions[: len(times)]
        dispositions += ["demoted"] * (len(times) - len(dispositions))
        dispositions.sort()  # deterministic lane grouping
    for i, end in enumerate(times):
        start = spec.arrival_spacing * i if spec.arrival_spacing else 0.0
        records.append(
            RequestRecord(
                label=f"r{i:02d}",
                start=min(start, end),
                end=end,
                disposition=dispositions[i],
            )
        )
    return records


def records_from_plan_result(result) -> List[RequestRecord]:
    """Build records from a :class:`~repro.core.planrun.PlanResult`.

    Plan outcomes carry their true per-request disposition; striped
    requests that split across server/client ("mixed") render with the
    migrated glyph.
    """
    records: List[RequestRecord] = []
    for outcome in sorted(result.outcomes,
                          key=lambda o: (o.started_at, o.request.app)):
        req = outcome.request
        disposition = outcome.disposition
        if disposition == "mixed":
            disposition = "migrated"
        records.append(
            RequestRecord(
                label=f"{req.app}/{req.process_index}.{req.sequence}",
                start=outcome.started_at,
                end=outcome.finished_at,
                disposition=disposition,
            )
        )
    return records


def render_gantt(
    records: Sequence[RequestRecord],
    width: int = 72,
    title: str = "",
) -> str:
    """Draw request lifetimes as one lane per request.

    .. code-block:: text

        r00 █████
        r01 ░░░░░░░░░░░
        r02    ▓▓▓▓▓▓▓░░░░
            └──────────────┘ 0 .. 12.8 s
    """
    if not records:
        raise ValueError("no records to render")
    if width < 10:
        raise ValueError("width too small")
    t_end = max(r.end for r in records)
    t_start = min(r.start for r in records)
    span = max(t_end - t_start, 1e-12)

    def col(t: float) -> int:
        return int((t - t_start) / span * (width - 1))

    label_width = max(len(r.label) for r in records)
    lines = [title] if title else []
    for record in records:
        lane = [" "] * width
        c0, c1 = col(record.start), col(record.end)
        glyph = GLYPHS[record.disposition]
        for c in range(c0, max(c0 + 1, c1 + 1)):
            lane[c] = glyph
        lines.append(f"{record.label:<{label_width}} " + "".join(lane))
    lines.append(
        f"{'':<{label_width}} └{'─' * (width - 2)}┘ "
        f"{t_start:.3g} .. {t_end:.3g} s"
    )
    legend = "   ".join(f"{g} {name}" for name, g in GLYPHS.items())
    lines.append(f"{'':<{label_width}} {legend}")
    return "\n".join(lines)
