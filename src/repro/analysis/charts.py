"""Terminal line charts — matplotlib-free figure rendering.

The benchmarks print numeric series; for quick visual inspection the
CLI can also draw them as Unicode line charts, so the paper's figures
are *viewable* on a headless cluster node:

.. code-block:: text

    Figure 4 — Gaussian exec time (s)
    102.4 ┤                                                   ● as
          │                                              ●
     71.0 ┤                                                   ○ ts
          │                              ●    ○
      1.6 ┼──●─────────────────────────────────────────
          1    2    4    8   16   32   64
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Plot glyphs cycled across series.
MARKERS = "●○▲△■□◆◇"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, round(frac * (steps - 1))))


def render_chart(
    title: str,
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    log_x: bool = False,
) -> str:
    """Render {name: [(x, y), …]} as a text chart.

    Parameters
    ----------
    title:
        Printed above the plot.
    series:
        One or more point lists; x positions are shared.
    width, height:
        Character cell dimensions of the plot area.
    y_label:
        Axis annotation.
    log_x:
        Place x ticks by rank rather than value (the paper's request
        counts are powers of two, so rank placement reads best).
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("chart too small")

    all_points = [(x, y) for pts in series.values() for x, y in pts]
    xs = sorted({x for x, _y in all_points})
    y_lo = min(y for _x, y in all_points)
    y_hi = max(y for _x, y in all_points)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def x_cell(x: float) -> int:
        if log_x or True:
            # Rank placement: evenly space the distinct x values.
            rank = xs.index(x)
            return _scale(rank, 0, max(1, len(xs) - 1), width)
        return _scale(x, xs[0], xs[-1], width)  # pragma: no cover

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for i, (name, pts) in enumerate(series.items()):
        marker = MARKERS[i % len(MARKERS)]
        legend.append(f"{marker} {name}")
        # Connect consecutive points with interpolated cells.
        cells = []
        for x, y in sorted(pts):
            col = x_cell(x)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            cells.append((col, row))
        for (c0, r0), (c1, r1) in zip(cells, cells[1:]):
            span = max(1, c1 - c0)
            for step in range(span + 1):
                col = c0 + step
                row = round(r0 + (r1 - r0) * step / span)
                if grid[row][col] == " ":
                    grid[row][col] = "·"
        for col, row in cells:
            grid[row][col] = marker

    label_hi = f"{y_hi:.4g}"
    label_lo = f"{y_lo:.4g}"
    margin = max(len(label_hi), len(label_lo)) + 1

    lines = [title] if title else []
    if y_label:
        lines.append(f"{'':>{margin}} {y_label}")
    for r, row in enumerate(grid):
        if r == 0:
            prefix = f"{label_hi:>{margin}} ┤"
        elif r == height - 1:
            prefix = f"{label_lo:>{margin}} ┼"
        else:
            prefix = f"{'':>{margin}} │"
        lines.append(prefix + "".join(row))
    # X axis with tick labels at their columns.
    axis = [" "] * width
    labels_row = [" "] * (width + 8)
    for x in xs:
        col = x_cell(x)
        axis[col] = "┬"
        text = f"{x:g}"
        for j, ch in enumerate(text):
            if col + j < len(labels_row):
                labels_row[col + j] = ch
    lines.append(f"{'':>{margin}} └" + "".join(axis))
    lines.append(f"{'':>{margin}}  " + "".join(labels_row).rstrip())
    lines.append(f"{'':>{margin}}  " + "   ".join(legend))
    return "\n".join(lines)
