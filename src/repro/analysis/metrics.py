"""Run-level metrics derived from scheme results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.schemes import SchemeResult


@dataclass(frozen=True)
class RunMetrics:
    """Summary statistics of one scheme run."""

    scheme: str
    kernel: str
    n_requests: int
    request_mb: float
    makespan: float
    mean_latency: float
    p95_latency: float
    bandwidth_mb_s: float
    served_active: int
    demoted: int
    interrupted: int


def summarize_run(result: SchemeResult) -> RunMetrics:
    """Flatten a :class:`SchemeResult` into reportable numbers."""
    times = result.per_request_times
    p95_index = max(0, int(round(0.95 * (len(times) - 1))))
    mb = 1024 * 1024
    return RunMetrics(
        scheme=result.scheme.value,
        kernel=result.spec.kernel,
        n_requests=result.spec.n_requests,
        request_mb=result.spec.request_bytes / mb,
        makespan=result.makespan,
        mean_latency=result.mean_latency,
        p95_latency=sorted(times)[p95_index],
        bandwidth_mb_s=result.bandwidth / mb,
        served_active=result.served_active,
        demoted=result.demoted,
        interrupted=result.interrupted,
    )


def speedup(baseline: float, improved: float) -> float:
    """baseline / improved (×)."""
    if improved <= 0:
        raise ValueError("improved time must be positive")
    return baseline / improved


def improvement(baseline: float, improved: float) -> float:
    """Fractional reduction vs baseline, as the paper reports it.

    "gained about 40% performance improvement compared to the TS
    scheme" ⇔ improvement(TS, DOSAS) ≈ 0.40.
    """
    if baseline <= 0:
        raise ValueError("baseline time must be positive")
    return (baseline - improved) / baseline
