"""The straggler-aware dispatcher: candidate ordering and hedge policy.

One :class:`StragglerDispatcher` is shared by every Active Storage
Client in a run (like the :class:`~repro.straggler.latency.LatencyBoard`
it consults).  It decides, per request attempt:

*where to send the primary* — power-of-two-choices over the replica
candidate set, scored by the board's EWMA latency, with two overrides:
an **open circuit breaker** excludes a server from the candidate set
outright (composing with the PR 5 breaker board — read-only
:meth:`~repro.qos.breaker.CircuitBreaker.blocked`, so no probe slots
are consumed here), and **deadline pressure** (remaining slack below
``deadline_slack_factor`` hedge-delays) switches to greedy best-first
ordering, because a deadline-critical request cannot afford the
exploration that P2C buys;

*when to hedge* — after the board's adaptive delay (recent p95,
floored), and only while the hedge budget holds:
``hedges_issued < hedge_max_ratio × primary submits``, so a cold or
degraded board cannot amplify load, in the spirit of
"The Tail at Scale" hedging and PADLL's dynamic (not statically
configured) control.

The dispatcher's only randomness is one ``random.Random(seed)``; the
simulation is single-threaded, so the shared-rng call order — and with
it every placement decision — is deterministic per seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.qos.breaker import BreakerBoard
from repro.straggler.config import StragglerConfig
from repro.straggler.latency import LatencyBoard

__all__ = ["StragglerDispatcher"]


class StragglerDispatcher:
    """Orders replica candidates and meters hedged requests."""

    __slots__ = ("board", "config", "rng", "stats")

    def __init__(self, board: LatencyBoard, seed: int = 0) -> None:
        self.board = board
        self.config: StragglerConfig = board.config
        self.rng = random.Random(seed)
        self.stats: Dict[str, int] = {
            "primary_submits": 0,
            "p2c_picks": 0,
            "deadline_overrides": 0,
            "hedges_issued": 0,
            "hedges_denied_budget": 0,
        }

    # -- candidate ordering ---------------------------------------------------
    def order(
        self,
        candidates: Sequence[int],
        now: float,
        breakers: Optional[BreakerBoard] = None,
        deadline: Optional[float] = None,
    ) -> List[int]:
        """Rank ``candidates`` best-first: ``[primary, backup, ...]``.

        Servers whose breaker is open (still cooling down) are excluded
        unless that would empty the set — with nowhere healthy to go,
        the original candidates stand and the submit-time ``allow``
        call arbitrates.
        """
        if not candidates:
            raise ValueError("need at least one candidate server")
        eligible = [
            c
            for c in candidates
            if breakers is None or not breakers.for_server(c).blocked(now)
        ]
        if not eligible:
            eligible = list(candidates)
        # Queue depth leads, latency breaks ties: in-flight counts
        # react the moment a request is submitted, where the EWMA lags
        # a full request behind.  Final ties break by *candidate
        # position* (primary first), so a cold board routes exactly
        # like the classic layout path instead of herding onto
        # low-numbered servers.
        pos = {c: k for k, c in enumerate(candidates)}

        def key(c: int) -> Tuple[int, float, int]:
            return (self.board.inflight_of(c), self.board.score(c), pos[c])

        ranked = sorted(eligible, key=key)
        if len(ranked) <= 1:
            return ranked
        if deadline is not None:
            slack = deadline - now
            if slack < self.config.deadline_slack_factor * self.board.hedge_delay():
                self.stats["deadline_overrides"] += 1
                return ranked
        primary = candidates[0]
        if primary not in eligible:
            # Layout primary is breaker-blocked: full reroute.
            return ranked
        # Power of two choices with primary stickiness: compare the
        # layout primary against one sampled alternative.  The
        # alternative takes over when it is strictly less loaded, or
        # equally loaded with a clear (``reroute_ratio``) latency edge
        # — plain argmin flips on noise and un-balances the NICs.
        alts = [c for c in eligible if c != primary]
        alt = alts[0] if len(alts) == 1 else self.rng.choice(alts)
        alt_load = self.board.inflight_of(alt)
        primary_load = self.board.inflight_of(primary)
        lead = primary
        if alt_load < primary_load or (
            alt_load == primary_load
            and self.board.score(alt) * self.config.reroute_ratio
            < self.board.score(primary)
        ):
            lead = alt
            self.stats["p2c_picks"] += 1
        return [lead] + [c for c in ranked if c != lead]

    # -- hedge policy ---------------------------------------------------------
    def note_primary(self) -> None:
        """Record a primary submission (the hedge budget's denominator)."""
        self.stats["primary_submits"] += 1

    def hedge_delay(self) -> float:
        """Seconds to wait on the primary before issuing a backup."""
        return self.board.hedge_delay()

    def try_hedge(self) -> bool:
        """Consume one hedge from the budget, or refuse.

        Called when the hedge timer fires; the budget caps total hedge
        volume at ``hedge_max_ratio`` of primary submissions.
        """
        allowed = (
            self.stats["hedges_issued"]
            < self.config.hedge_max_ratio * self.stats["primary_submits"]
        )
        if allowed:
            self.stats["hedges_issued"] += 1
        else:
            self.stats["hedges_denied_budget"] += 1
        return allowed

    def observe(self, server: int, latency: float) -> None:
        """Feed one request-lifecycle latency back into the board."""
        self.board.observe(server, latency)
