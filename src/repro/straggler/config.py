"""Tuning knobs for the straggler-aware client dispatcher."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StragglerConfig:
    """Policy parameters for candidate scoring and hedging.

    The defaults are deliberately conservative: hedge only after the
    observed p95 (never sooner than ``hedge_delay_floor``), and cap
    hedge volume at ``hedge_max_ratio`` of primary submissions so a
    cold-start board cannot start a hedge storm.
    """

    #: EWMA smoothing factor for per-server latency scores, in (0, 1].
    ewma_alpha: float = 0.3
    #: Ring-buffer size of the recent-latency histograms.
    window: int = 64
    #: Observations required before quantiles are trusted; below this
    #: the hedge delay stays at the floor.
    min_samples: int = 8
    #: Never hedge sooner than this many simulated seconds.
    hedge_delay_floor: float = 0.5
    #: The adaptive hedge delay is this percentile of recent latencies.
    hedge_quantile: float = 95.0
    #: Hedges issued may not exceed this fraction of primary submits.
    hedge_max_ratio: float = 0.5
    #: Maximum backup requests per attempt.
    max_hedges: int = 1
    #: Deadline pressure: when remaining slack falls below this many
    #: multiples of the current hedge delay, abandon power-of-two
    #: sampling and greedily pick the lowest-latency candidates.
    deadline_slack_factor: float = 2.0
    #: Reroute stickiness: a sampled alternative replaces the layout
    #: primary only when ``alt_score × reroute_ratio < primary_score``.
    #: Plain argmin routing flips on noise and un-balances NIC load
    #: (the primary sits idle while the "better" server serves two
    #: streams); demanding a clear gap keeps routing conservative.
    reroute_ratio: float = 1.5

    def __post_init__(self) -> None:
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must lie in (0, 1]")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.hedge_delay_floor <= 0:
            raise ValueError("hedge_delay_floor must be positive")
        if not 0 < self.hedge_quantile <= 100:
            raise ValueError("hedge_quantile must lie in (0, 100]")
        if self.hedge_max_ratio < 0:
            raise ValueError("hedge_max_ratio must be >= 0")
        if self.max_hedges < 0:
            raise ValueError("max_hedges must be >= 0")
        if self.deadline_slack_factor < 0:
            raise ValueError("deadline_slack_factor must be >= 0")
        if self.reroute_ratio < 1:
            raise ValueError("reroute_ratio must be >= 1")
