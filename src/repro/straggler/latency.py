"""Client-side per-server latency estimation.

One :class:`LatencyBoard` is shared by every Active Storage Client in
a run — each individual client issues too few requests to learn
anything, but together they see every server's recent behaviour.  The
board keeps, per server, an EWMA *score* (cheap, smooth, used for
candidate ordering) and a :class:`~repro.obs.metrics.WindowedHistogram`
(used for quantile readouts), plus one global windowed histogram that
drives the adaptive hedge delay.

All inputs come from the request lifecycle the clients already
observe — submit and reply times in simulated seconds — so the board
adds no new instrumentation to the servers and stays a purely
client-side construct, as in the straggler-aware scheduler of
Tavakoli/Dai/Chen (arXiv:1805.06156).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.obs.metrics import WindowedHistogram
from repro.straggler.config import StragglerConfig

__all__ = ["LatencyTracker", "LatencyBoard"]


class LatencyTracker:
    """One server's latency estimate, as seen from the client side."""

    __slots__ = ("ewma", "hist", "_alpha")

    def __init__(self, server: int, config: StragglerConfig) -> None:
        #: Smoothed latency score; 0.0 until the first observation —
        #: optimistic initialisation, so unobserved servers get tried.
        self.ewma = 0.0
        self.hist = WindowedHistogram(f"latency.server{server}", config.window)
        self._alpha = config.ewma_alpha

    def observe(self, latency: float) -> None:
        if self.hist.count == 0:
            self.ewma = latency
        else:
            self.ewma = self._alpha * latency + (1 - self._alpha) * self.ewma
        self.hist.observe(latency)


class LatencyBoard:
    """Per-server latency trackers shared across a run's clients."""

    __slots__ = ("config", "trackers", "overall", "inflight")

    def __init__(self, config: StragglerConfig) -> None:
        self.config = config
        self.trackers: Dict[int, LatencyTracker] = {}
        #: Every observation regardless of server — the hedge-delay
        #: reference distribution.
        self.overall = WindowedHistogram("latency.overall", config.window)
        #: Outstanding submissions per server, across all clients.  A
        #: queue-depth signal reacts instantly where the EWMA lags a
        #: full request, so the dispatcher uses it as the *primary*
        #: routing key (least-outstanding-requests, latency as the
        #: tie-break).
        self.inflight: Dict[int, int] = {}

    def tracker(self, server: int) -> LatencyTracker:
        t = self.trackers.get(server)
        if t is None:
            t = self.trackers[server] = LatencyTracker(server, self.config)
        return t

    def observe(self, server: int, latency: float) -> None:
        """Record one completed (or abandoned-at-timeout) request."""
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self.tracker(server).observe(latency)
        self.overall.observe(latency)

    def score(self, server: int) -> float:
        """EWMA latency for ordering candidates (lower is better)."""
        t = self.trackers.get(server)
        return t.ewma if t is not None else 0.0

    def note_submit(self, server: int) -> None:
        """A request went out to ``server`` (primary or hedge)."""
        self.inflight[server] = self.inflight.get(server, 0) + 1

    def note_settle(self, server: int) -> None:
        """A submission to ``server`` settled (won, lost, or timed out)."""
        left = self.inflight.get(server, 0) - 1
        if left < 0:
            raise ValueError(f"settle without submit for server {server}")
        self.inflight[server] = left

    def inflight_of(self, server: int) -> int:
        """Outstanding submissions to ``server`` right now."""
        return self.inflight.get(server, 0)

    def hedge_delay(self) -> float:
        """How long to wait on the primary before issuing a backup.

        The ``hedge_quantile`` (default p95) of recent latencies across
        all servers, floored at ``hedge_delay_floor``; until
        ``min_samples`` observations exist the floor stands alone.
        """
        cfg = self.config
        if len(self.overall) < cfg.min_samples:
            return cfg.hedge_delay_floor
        return max(cfg.hedge_delay_floor, self.overall.percentile(cfg.hedge_quantile))

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic summary for reports."""
        return {
            "overall": self.overall.snapshot(),
            "servers": {
                str(i): {
                    "ewma": self.trackers[i].ewma,
                    **self.trackers[i].hist.snapshot(),
                }
                for i in sorted(self.trackers)
            },
        }
