"""The tail-latency bench: schemes × scheduler on/off under stragglers.

``run_tail_bench`` drives one seeded straggler scenario (persistent
slow servers plus transient slowdowns, see
:func:`repro.faults.schedule.stragglers`) through every scheme twice —
straggler-aware dispatch off, then on — and reports the per-request
latency tail (p50/p95/p99/max) next to the hedge ledger.  The paper's
DOSAS machinery answers *where to run the kernel*; this bench measures
the orthogonal robustness question this repo adds on top: *where to
send the bytes when a server limps*.

The report is plain data with a deterministic JSON rendering (same
seed ⇒ byte-identical text), so the CI smoke job can archive it and
regressions diff cleanly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.cluster.config import MB
from repro.core.asc import RetryPolicy
from repro.core.schemes import Scheme, WorkloadSpec, run_scheme
from repro.faults.schedule import stragglers
from repro.pvfs.client import reset_parent_ids
from repro.pvfs.requests import reset_request_ids
from repro.sim.monitor import percentile

__all__ = ["TAIL_QUANTILES", "run_tail_bench", "tail_bench_json"]

#: The latency quantiles every report row carries.
TAIL_QUANTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


def _tail(latencies: Sequence[float]) -> Dict[str, float]:
    if not latencies:
        return {f"p{q:g}": 0.0 for q in TAIL_QUANTILES} | {"max": 0.0}
    out = {f"p{q:g}": percentile(latencies, q) for q in TAIL_QUANTILES}
    out["max"] = max(latencies)
    return out


def run_tail_bench(
    seed: int,
    schemes: Sequence[Scheme] = (Scheme.TS, Scheme.AS, Scheme.DOSAS),
    n_requests: int = 32,
    request_bytes: int = 32 * MB,
    n_storage: int = 4,
    arrival_spacing: float = 0.15,
    n_replicas: int = 2,
    n_transient: int = 2,
    retry: Optional[RetryPolicy] = None,
) -> Dict[str, Any]:
    """One seed's tail-latency comparison, scheduler off vs on.

    Every run shares the same fault schedule and workload shape; only
    ``straggler_scheduler`` differs between the ``off`` and ``on``
    rows, so the delta is attributable to dispatch policy alone.
    """
    if retry is None:
        # Generous per-attempt timeout: the scheduler-off baseline must
        # be allowed to *finish* on a badly derated server (its pain
        # shows up in the tail), not die in RetryExhausted.
        retry = RetryPolicy(timeout=20.0, max_retries=6)
    results: Dict[str, Any] = {}
    for scheme in schemes:
        per_mode: Dict[str, Any] = {}
        for label, on in (("off", False), ("on", True)):
            # Rebased id sequences keep every run — and therefore the
            # whole report — byte-identical for a given seed.
            reset_request_ids()
            reset_parent_ids()
            spec = WorkloadSpec(
                n_requests=n_requests,
                request_bytes=request_bytes,
                n_storage=n_storage,
                arrival_spacing=arrival_spacing,
                seed=seed,
                straggler_scheduler=on,
                n_replicas=n_replicas,
            )
            r = run_scheme(
                scheme,
                spec,
                fault_schedule=stragglers(
                    seed=seed, n_servers=n_storage, n_transient=n_transient
                ),
                retry_policy=retry,
            )
            per_mode[label] = {
                "latency": _tail(r.per_request_latencies),
                "makespan": r.makespan,
                "retries": r.retries,
                "hedges_issued": r.hedges_issued,
                "hedges_won": r.hedges_won,
                "hedges_wasted": r.hedges_wasted,
            }
        results[scheme.value] = per_mode
    return {
        "bench": "straggler_tail",
        "seed": seed,
        "workload": {
            "n_requests": n_requests,
            "request_mb": request_bytes // MB,
            "n_storage": n_storage,
            "arrival_spacing": arrival_spacing,
            "n_replicas": n_replicas,
            "n_transient": n_transient,
        },
        "schemes": results,
    }


def tail_bench_json(reports: Sequence[Dict[str, Any]]) -> str:
    """Byte-stable rendering of one or more seeds' reports."""
    return json.dumps(list(reports), sort_keys=True, indent=2)
