"""Straggler-aware client dispatch: tail-latency mitigation.

DOSAS (the paper this repo reproduces) decides *where compute runs*;
this package closes the complementary gap of *where reads go* when
servers degrade unevenly.  A transiently slow server — thermal
throttling, a noisy co-tenant, a dying controller — drags the whole
stripe's tail latency unless the client routes around it, the problem
the straggler-aware object scheduler of Tavakoli/Dai/Chen
(arXiv:1805.06156) addresses for object-based parallel file systems.

Pieces (all client-side; servers are untouched):

:class:`~repro.straggler.config.StragglerConfig`
    Policy knobs (EWMA smoothing, hedge delay/quantile/budget).
:class:`~repro.straggler.latency.LatencyBoard`
    Shared per-server EWMA + windowed-quantile latency estimators fed
    from the request lifecycle the clients already observe.
:class:`~repro.straggler.dispatch.StragglerDispatcher`
    Power-of-two-choices candidate ordering with breaker exclusion and
    deadline-aware greedy override, plus the adaptive hedge policy
    (backup read after the recent p95, first reply wins, loser defused
    through the late-reply path).
:mod:`repro.straggler.bench`
    The tail-latency benchmark core (p50/p95/p99 for TS/AS/DOSAS with
    the scheduler on vs. off under straggler injection).

Degraded servers themselves are modelled in :mod:`repro.faults`
(``SLOWDOWN`` events; ``stragglers`` scenario), and the hedged attempt
loop lives in :meth:`repro.core.asc.ActiveStorageClient` — see
``docs/failure_model.md`` for the full design.
"""

from repro.straggler.config import StragglerConfig
from repro.straggler.dispatch import StragglerDispatcher
from repro.straggler.latency import LatencyBoard, LatencyTracker

__all__ = [
    "LatencyBoard",
    "LatencyTracker",
    "StragglerConfig",
    "StragglerDispatcher",
]
