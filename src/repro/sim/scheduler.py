"""Pluggable event schedulers for the discrete-event engine.

The engine processes events in ``(when, priority, eid)`` order — time
first, then scheduling priority (resource bookkeeping before user
events), then insertion order.  Historically that order came from one
global binary heap; at large client counts the O(log n) per-operation
cost dominates the run loop.  This module puts the pending-event set
behind a small :class:`EventScheduler` interface with two
implementations:

``heap``
    The reference implementation: one binary heap of ``(when,
    priority, eid, event)`` tuples — exactly the historical engine
    order, kept as the oracle the calendar queue is tested against.

``calendar``
    A calendar queue (Brown 1988) over *distinct timestamps* with
    slotted same-timestamp batch execution.  All events sharing a
    timestamp form one *slot*: a pair of urgent/normal FIFO queues in
    insertion order — which **is** eid order, because event ids are
    handed out monotonically and every push follows an id increment.
    Enqueue is O(1): an event landing on the currently open slot
    appends straight to it, bypassing the calendar entirely (the
    common case — zero-delay triggers dominate scheme runs), while
    future timestamps hash into unsorted bucket lists by
    ``floor(when / width) % n_buckets``.  Dequeue is amortized O(1):
    the open slot drains by ``popleft`` and the next slot is found by
    the classic year-window bucket scan, falling back to a direct min
    when the calendar is sparse.  The bucket array resizes (doubling /
    halving, re-derived width) as the distinct-timestamp population
    grows and shrinks.

Both schedulers produce the *identical* pop order for any push
sequence — pinned by the ``tests/sim/test_scheduler.py`` property
tests and the heap-vs-calendar byte-identity tests on full scheme and
soak reports — so the simulation is deterministic per seed whichever
scheduler is active.

Lazy deletion: cancelled :class:`~repro.sim.events.Timer`\\ s and
events explicitly abandoned via ``Event.abandon()`` (decided-race
deadlines, defused hedge timers) stay queued, as in the heap days, but
are counted.  Once the dead set is at least ``COMPACT_MIN_DEAD``
strong *and* makes up half the pending set, a single O(n) sweep drops
the corpses, so long soaks no longer carry thousands of decided
deadline timers all the way to their timestamps.  Only membership
tests ever touch the dead set — it is never iterated, so object hash
order cannot leak into simulation behavior.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.sim.events import Event, PRIORITY_NORMAL, PRIORITY_URGENT
from repro.sim.exceptions import SimulationError
from repro.sim.hotstate import FlyweightPool

Infinity = float("inf")

#: Registered scheduler names, in preference order.
SCHEDULERS: Tuple[str, ...] = ("calendar", "heap")

#: Compaction trigger: sweep once at least this many dead entries are
#: pending *and* they make up at least half the pending set.  The
#: floor keeps tiny models from sweeping constantly; the ratio bounds
#: the amortized cost at O(1) per dead entry.
COMPACT_MIN_DEAD = 64

_SlotPair = Tuple[Deque[Event], Deque[Event]]


def _make_slot_pair() -> _SlotPair:
    return (deque(), deque())


class EventScheduler:
    """Interface between :class:`~repro.sim.engine.Environment` and the
    pending-event set.

    The contract mirrors the historical heap exactly:

    - ``push(when, prio, event)`` enqueues; ties at equal ``(when,
      prio)`` pop in push order.
    - ``pop(stop)`` returns the next event — setting ``env._now`` to
      its timestamp as a side effect — or ``None`` when the queue is
      empty or the next event lies at/after ``stop`` (events at
      exactly the horizon stay queued, simpy semantics).
    - ``mark_dead(event)`` registers a queued event whose processing
      is known to be a no-op, for lazy-deletion compaction.
    """

    __slots__ = ("env", "max_depth", "compactions")

    name = "abstract"

    def __init__(self, env: Any) -> None:
        self.env = env
        #: High-water mark of the pending set (queue stats).
        self.max_depth = 0
        #: Number of lazy-deletion sweeps performed.
        self.compactions = 0

    def push(self, when: float, prio: int, event: Event) -> None:
        raise NotImplementedError

    def pop(self, stop: float = Infinity) -> Optional[Event]:
        raise NotImplementedError

    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` when empty."""
        raise NotImplementedError

    def mark_dead(self, event: Event) -> None:
        raise NotImplementedError

    def compact(self) -> None:
        raise NotImplementedError

    def slot_blocked(self, stop: float) -> bool:
        """True if a half-drained slot sits at/after ``stop``.

        A previous ``run(until=event)`` can exit mid-slot; a later
        bounded run whose horizon equals that timestamp must not
        process the remainder.  Schedulers without slot state always
        return False.
        """
        return False

    def __len__(self) -> int:
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """Queue statistics for benches and debugging (stable keys)."""
        return {
            "scheduler": self.name,
            "pending": len(self),
            "max_depth": self.max_depth,
            "compactions": self.compactions,
        }


class HeapScheduler(EventScheduler):
    """The reference binary-heap scheduler (historical engine order)."""

    __slots__ = ("_queue", "_n", "_dead")

    name = "heap"

    def __init__(self, env: Any) -> None:
        super().__init__(env)
        self._queue: List[Tuple[float, int, int, Event]] = []
        #: Monotonic sequence number: the heap's eid tie-break.
        self._n = 0
        self._dead: Set[Event] = set()

    def push(self, when: float, prio: int, event: Event) -> None:
        self._n += 1
        heappush(self._queue, (when, prio, self._n, event))
        if len(self._queue) > self.max_depth:
            self.max_depth = len(self._queue)

    def pop(self, stop: float = Infinity) -> Optional[Event]:
        queue = self._queue
        if not queue:
            return None
        when = queue[0][0]
        if when >= stop:
            return None
        event = heappop(queue)[3]
        self.env._now = when
        return event

    def peek(self) -> float:
        return self._queue[0][0] if self._queue else Infinity

    def mark_dead(self, event: Event) -> None:
        dead = self._dead
        dead.add(event)
        if len(dead) >= COMPACT_MIN_DEAD and 2 * len(dead) >= len(self._queue):
            self.compact()

    def compact(self) -> None:
        dead = self._dead
        if not dead:
            return
        kept: List[Tuple[float, int, int, Event]] = []
        for entry in self._queue:
            if entry[3] in dead:
                # Equivalent to processing with no callbacks attached.
                entry[3].callbacks = None
            else:
                kept.append(entry)
        kept.sort()
        # In place: the engine's inlined hot loop holds a reference to
        # this list while dispatching, so rebinding would strand it on
        # a stale snapshot.
        self._queue[:] = kept
        # Entries already popped naturally would otherwise linger in
        # the set forever; clearing wholesale keeps the count honest.
        dead.clear()
        self.compactions += 1

    def __len__(self) -> int:
        return len(self._queue)


class CalendarScheduler(EventScheduler):
    """Calendar queue over distinct timestamps with slotted batches.

    Structure: ``_groups`` maps each pending timestamp to its slot
    pair (urgent deque, normal deque); ``_buckets`` holds the distinct
    timestamps themselves, hashed by ``floor(when / width) %
    n_buckets``.  The currently executing timestamp lives outside the
    calendar in ``_cur_when`` / ``_cur_urgent`` / ``_cur_normal`` so
    the two hot paths — push-at-now and pop-from-slot — touch no dict
    and no bucket at all.

    Pop order: the open slot serves its urgent deque before its normal
    deque, re-checking urgent first on every pop so an URGENT event
    pushed *mid-slot* (e.g. a resource release fired from a callback)
    still overtakes queued NORMAL events, exactly as the heap orders
    ``(when, 0, eid) < (when, 1, eid')``.  Within one deque, append
    order is eid order (event ids are monotonic), so FIFO pop
    reproduces the heap's eid tie-break without ever sorting.
    """

    __slots__ = (
        "_groups",
        "_buckets",
        "_n_buckets",
        "_width",
        "_size",
        "_cur_when",
        "_cur_urgent",
        "_cur_normal",
        "_cur_pair",
        "_pool",
        "_dead",
        "resizes",
    )

    name = "calendar"

    #: Bucket-count floor; also the initial calendar size.
    MIN_BUCKETS = 8

    def __init__(self, env: Any) -> None:
        super().__init__(env)
        #: Distinct timestamp -> (urgent deque, normal deque).
        self._groups: Dict[float, _SlotPair] = {}
        #: Unsorted lists of the distinct timestamps, by bucket.
        self._buckets: List[List[float]] = [[] for _ in range(self.MIN_BUCKETS)]
        self._n_buckets = self.MIN_BUCKETS
        self._width = 1.0
        #: Events pending in the calendar (excludes the open slot).
        self._size = 0
        #: The open slot: its timestamp and live deques.  ``-inf``
        #: means "no slot has ever opened" (also makes the push
        #: fast-path comparison false before the first pop).
        self._cur_when = -Infinity
        self._cur_pair = _make_slot_pair()
        self._cur_urgent, self._cur_normal = self._cur_pair
        #: Recycles drained slot pairs (flyweight hot state).
        self._pool: FlyweightPool[_SlotPair] = FlyweightPool(_make_slot_pair)
        self._dead: Set[Event] = set()
        self.resizes = 0

    # -- enqueue ----------------------------------------------------------
    def push(self, when: float, prio: int, event: Event) -> None:
        # No sequence counter: deque append order *is* eid order
        # (every historical eid increment preceded exactly one push),
        # so the tie-break comes for free.
        if when == self._cur_when:
            # Fast path: lands on the open slot.  No bucket, no dict,
            # no size bookkeeping (the slot was already debited from
            # ``_size`` when it opened).
            if prio:
                if prio != PRIORITY_NORMAL:
                    raise SimulationError(f"unsupported priority {prio!r}")
            else:
                self._cur_urgent.append(event)
                return
            self._cur_normal.append(event)
            return
        if prio != PRIORITY_URGENT and prio != PRIORITY_NORMAL:
            raise SimulationError(f"unsupported priority {prio!r}")
        groups = self._groups
        group = groups.get(when)
        if group is None:
            group = self._pool.take()
            groups[when] = group
            n = self._n_buckets
            # ``//`` floors like math.floor (negative-safe) without a
            # function call; the same mapping is used at every bucket
            # placement site.
            self._buckets[int(when // self._width) % n].append(when)
            if len(groups) > 2 * n:
                self._resize(2 * n)
        group[prio].append(event)
        self._size += 1

    # -- dequeue ----------------------------------------------------------
    def pop(self, stop: float = Infinity) -> Optional[Event]:
        # Slot fast path: batch-drain the open timestamp.  No clock
        # write, no queue probe — `env._now` was set once when the
        # slot opened and every event here shares it.
        urgent = self._cur_urgent
        if urgent:
            return urgent.popleft()
        normal = self._cur_normal
        if normal:
            # Urgent is checked first on *every* pop so a mid-slot
            # URGENT push overtakes the remaining NORMAL backlog.
            return normal.popleft()
        return self._open_slot(stop)

    def _open_slot(self, stop: float) -> Optional[Event]:
        if not self._groups:
            return None
        when = self._find_min()
        if when >= stop:
            return None
        # Queue-depth high-water mark, sampled once per distinct
        # timestamp instead of per push (events already drained from
        # the open slot are excluded — a stat, not an invariant).
        if self._size > self.max_depth:
            self.max_depth = self._size
        # Promote the earliest timestamp group to the open slot.
        group = self._groups.pop(when)
        self._buckets[int(when // self._width) % self._n_buckets].remove(when)
        old_pair = self._cur_pair
        self._cur_when = when
        self._cur_pair = group
        self._cur_urgent, self._cur_normal = group
        self._size -= len(group[0]) + len(group[1])
        # The previous slot's deques drained to empty; recycle them.
        self._pool.give(old_pair)
        self.env._now = when
        if 4 * len(self._groups) < self._n_buckets and self._n_buckets > self.MIN_BUCKETS:
            self._resize(max(self.MIN_BUCKETS, self._n_buckets // 2))
        urgent, normal = group
        if urgent:
            return urgent.popleft()
        return normal.popleft()

    def _find_min(self) -> float:
        """Earliest pending timestamp.

        Classic calendar-queue search: scan buckets starting at the
        one covering the last-opened timestamp, accepting the smallest
        entry that still falls inside the bucket's current "year"
        window.  If one full cycle finds nothing (the calendar is
        sparse relative to the time horizon), fall back to a direct
        min over the distinct timestamps — still cheap, as there is
        one key per timestamp, not per event.
        """
        width = self._width
        n = self._n_buckets
        buckets = self._buckets
        cur = self._cur_when
        if cur == -Infinity:
            return min(self._groups)
        start = int(cur // width)
        best = Infinity
        for i in range(n):
            bucket = buckets[(start + i) % n]
            if not bucket:
                continue
            # Current-year membership must use the *same* floor
            # division as bucket placement: deriving the year edge by
            # multiplication ((start+i+1)*width) disagrees with
            # ``when // width`` at bucket boundaries under floating
            # point, silently excluding a timestamp from its own year
            # and returning a later one — time runs backwards.
            year = start + i
            for when in bucket:
                if when < best and when // width == year:
                    best = when
            if best < Infinity:
                # Timestamps in later scan positions are strictly
                # larger (floor division is monotonic), so the first
                # in-year hit is the global minimum.
                return best
        return min(self._groups)

    def peek(self) -> float:
        if self._cur_urgent or self._cur_normal:
            return self._cur_when
        if not self._groups:
            return Infinity
        return self._find_min()

    def slot_blocked(self, stop: float) -> bool:
        return self._cur_when >= stop and bool(
            self._cur_urgent or self._cur_normal
        )

    # -- resize -----------------------------------------------------------
    def _resize(self, n_buckets: int) -> None:
        """Rebuild the bucket array with ``n_buckets`` buckets.

        Width is re-derived from the pending timestamp span so the
        population spreads across roughly one bucket per distinct
        timestamp; a degenerate span (single timestamp) keeps the
        current width.  Only distinct timestamps move — events stay in
        their group deques untouched — so a resize costs O(distinct
        timestamps), not O(events).
        """
        groups = self._groups
        if len(groups) > 1:
            tmin = min(groups)
            tmax = max(groups)
            span = tmax - tmin
            if span > 0.0:
                width = span / len(groups)
                # Guard against denormal-tiny widths that would make
                # floor(when / width) overflow into huge ints.
                if width < 1e-9:
                    width = 1e-9
                self._width = width
        self._n_buckets = n_buckets
        buckets: List[List[float]] = [[] for _ in range(n_buckets)]
        width = self._width
        for when in groups:
            buckets[int(when // width) % n_buckets].append(when)
        self._buckets = buckets
        self.resizes += 1

    # -- lazy deletion ----------------------------------------------------
    def mark_dead(self, event: Event) -> None:
        dead = self._dead
        dead.add(event)
        if len(dead) >= COMPACT_MIN_DEAD and 2 * len(dead) >= len(self):
            self.compact()

    def compact(self) -> None:
        dead = self._dead
        if not dead:
            return
        # Sweep the open slot in place (membership tests only — the
        # dead set is never iterated, so object hash order cannot
        # influence anything observable).
        for queue in (self._cur_urgent, self._cur_normal):
            if queue:
                kept = []
                for e in queue:
                    if e in dead:
                        # Indistinguishable from processing with no
                        # callbacks attached.
                        e.callbacks = None
                    else:
                        kept.append(e)
                if len(kept) != len(queue):
                    queue.clear()
                    queue.extend(kept)
        # Sweep the calendar groups; drop timestamps that empty out.
        emptied = False
        removed = 0
        for group in self._groups.values():
            for queue in group:
                if queue:
                    kept = []
                    for e in queue:
                        if e in dead:
                            e.callbacks = None
                        else:
                            kept.append(e)
                    if len(kept) != len(queue):
                        removed += len(queue) - len(kept)
                        queue.clear()
                        queue.extend(kept)
            if not group[0] and not group[1]:
                emptied = True
        self._size -= removed
        if emptied:
            survivors = {
                when: group
                for when, group in self._groups.items()
                if group[0] or group[1]
            }
            self._groups = survivors
            n = self._n_buckets
            width = self._width
            buckets: List[List[float]] = [[] for _ in range(n)]
            for when in survivors:
                buckets[int(when // width) % n].append(when)
            self._buckets = buckets
        # Anything still in the set was already popped naturally (and
        # processed) before the sweep; clearing wholesale keeps the
        # dead count honest for the next threshold check.
        dead.clear()
        self.compactions += 1

    # -- stats ------------------------------------------------------------
    def __len__(self) -> int:
        return self._size + len(self._cur_urgent) + len(self._cur_normal)

    def stats(self) -> Dict[str, Any]:
        base = super().stats()
        base.update(
            {
                "resizes": self.resizes,
                "n_buckets": self._n_buckets,
                "bucket_width": self._width,
                "slot_pairs_created": self._pool.created,
                "slot_pairs_recycled": self._pool.recycled,
            }
        )
        return base


def make_event_scheduler(name: str, env: Any) -> EventScheduler:
    """Instantiate the scheduler registered under ``name``."""
    if name == "calendar":
        return CalendarScheduler(env)
    if name == "heap":
        return HeapScheduler(env)
    raise ValueError(
        f"unknown scheduler {name!r} (expected one of {', '.join(SCHEDULERS)})"
    )
