"""Generator-coroutine processes.

A :class:`Process` drives a Python generator: each value the generator
yields must be an :class:`~repro.sim.events.Event`; the process sleeps
until the event triggers and is then resumed with the event's value
(``gen.send(value)``) or, for failed events, has the exception thrown
into it (``gen.throw(exc)``).

Processes are themselves events: they trigger when the generator
returns (value = the ``return`` value) or raises.  Other processes can
therefore ``yield proc`` to join on completion.

``interrupt(cause)`` injects :class:`~repro.sim.exceptions.Interrupt`
into the generator at its current suspension point.  This is the
mechanism the Active I/O Runtime uses to preempt a processing kernel
mid-execution so it can be demoted to client-side processing (paper
Sec. III-C: "record and interrupt current active I/O being serviced").
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING, Type

from repro.sim.events import Event, Initialize, PENDING, PRIORITY_NORMAL, PRIORITY_URGENT
from repro.sim.exceptions import Interrupt, SimulationError, StopProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Process(Event):
    """A running simulation process wrapping a generator coroutine."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None when
        #: it has not started or is being resumed).
        self._target: Optional[Event] = None
        self.name: str = getattr(generator, "__name__", str(generator))
        Initialize(env, self)

    # -- introspection ------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is waiting on, if any."""
        return self._target

    # -- interruption -------------------------------------------------------
    def interrupt(self, cause: Any = None, exc_type: Type[Interrupt] = Interrupt) -> None:
        """Throw :class:`Interrupt` (or a subclass) into this process.

        The interrupt is delivered asynchronously via an urgent
        zero-delay event so that an interrupter running at the same
        timestamp does not re-enter the target's frame directly.
        Interrupting a dead process raises ``SimulationError``;
        interrupting yourself is forbidden (it could not be delivered).

        ``exc_type`` selects the exception class — pass
        :class:`~repro.sim.exceptions.Failure` to signal a component
        failure rather than a scheduling decision.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        if not (isinstance(exc_type, type) and issubclass(exc_type, Interrupt)):
            raise TypeError(f"exc_type must be an Interrupt subclass, got {exc_type!r}")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = exc_type(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.env.schedule(interrupt_event, priority=PRIORITY_URGENT)

    # -- engine callback ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Resume the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self

        # Detach from the previous target: if we are resumed by an
        # interrupt while still waiting on another event, that event's
        # callback must no longer resume us.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The event failed or carries an Interrupt: deliver
                    # the exception into the generator.
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                outcome, ok = stop.value, True
                break
            except StopProcess as stop:
                outcome, ok = stop.value, True
                break
            except BaseException as exc:
                outcome, ok = exc, False
                break

            # The generator yielded: validate and hook the next event.
            if not isinstance(next_event, Event):
                outcome = RuntimeError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                ok = False
                break
            if next_event.env is not env:
                outcome = SimulationError(
                    f"process {self.name!r} yielded an event from another environment"
                )
                ok = False
                break

            if next_event.callbacks is not None:
                # Not yet processed: subscribe and go to sleep.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                env._active_process = None
                return

            # Already processed: loop and deliver its outcome at once.
            event = next_event

        # The generator finished (or died).
        env._active_process = None
        self._ok = ok
        self._value = outcome
        env._push(env._now, PRIORITY_NORMAL, self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name} ({state}) at {id(self):#x}>"
