"""Object stores — the building block for I/O request queues.

``Store`` is an unbounded-or-bounded FIFO of arbitrary Python objects
with blocking ``put``/``get``.  The per-storage-node I/O queue that
Figure 1 of the paper depicts (normal and active requests from many
applications funnelled into one server) is a ``PriorityStore`` in this
reproduction, so the Active I/O Runtime can drain requests in arrival
or priority order and the Contention Estimator can inspect the backlog.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, List, TYPE_CHECKING

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class StorePut(Event):
    """Pending insertion of ``item`` into a store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._trigger()


class StoreGet(Event):
    """Pending removal of one item from a store."""

    __slots__ = ("store",)

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        self.store = store
        store._get_waiters.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw this get if it has not been satisfied yet.

        A triggered get already consumed an item; cancelling then is a
        no-op so teardown code can cancel unconditionally.
        """
        if self in self.store._get_waiters:
            self.store._get_waiters.remove(self)


class Store:
    """FIFO object store with optional capacity bound."""

    __slots__ = ("env", "_capacity", "items", "_put_waiters", "_get_waiters")

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        # Deques: waiter backlogs drain from the head on every put/get,
        # and list.pop(0) would make a long pipeline quadratic.
        self._put_waiters: Deque[StorePut] = deque()
        self._get_waiters: Deque[StoreGet] = deque()

    @property
    def capacity(self) -> float:
        """Maximum number of stored items."""
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item`` (blocks while the store is full)."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove and return the next item (blocks while empty)."""
        return StoreGet(self)

    def remove(self, item: Any) -> bool:
        """Withdraw one occurrence of ``item`` without a get (tombstone).

        Lets an owner revoke a queued item — the Active I/O Runtime
        demotes queued requests this way, and failure paths drop work
        the same way, instead of reaching into :attr:`items` directly.
        Returns True if the item was present; a blocked put that now
        fits is admitted.
        """
        try:
            self.items.remove(item)
        except ValueError:
            return False
        self._removed(item)
        self._trigger()
        return True

    def _removed(self, item: Any) -> None:
        """Hook for subclasses whose ``items`` has extra structure."""

    # -- internals ---------------------------------------------------------
    def _do_put(self, put: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self._insert(put.item)
            put.succeed()
            return True
        return False

    def _do_get(self, get: StoreGet) -> bool:
        if self.items:
            get.succeed(self._extract(get))
            return True
        return False

    def _insert(self, item: Any) -> None:
        self.items.append(item)

    def _extract(self, get: StoreGet) -> Any:
        return self.items.pop(0)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._put_waiters:
                if not self._do_put(self._put_waiters[0]):
                    break
                self._put_waiters.popleft()
                progressed = True
            while self._get_waiters:
                if not self._do_get(self._get_waiters[0]):
                    break
                self._get_waiters.popleft()
                progressed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} items={len(self.items)}>"


class PriorityItem:
    """Wrapper ordering arbitrary payloads by an explicit priority."""

    __slots__ = ("priority", "item", "_order")
    _counter = itertools.count()

    def __init__(self, priority: float, item: Any) -> None:
        self.priority = priority
        self.item = item
        self._order = next(PriorityItem._counter)

    def __lt__(self, other: "PriorityItem") -> bool:
        return (self.priority, self._order) < (other.priority, other._order)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """A store that yields the lowest-priority item first.

    Items must be :class:`PriorityItem` instances (or anything
    totally ordered).
    """

    __slots__ = ()

    def _insert(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _extract(self, get: StoreGet) -> Any:
        return heapq.heappop(self.items)

    def _removed(self, item: Any) -> None:
        # list.remove broke the heap invariant; rebuild it.
        heapq.heapify(self.items)


class FilterStoreGet(StoreGet):
    """A get that only matches items satisfying a predicate."""

    __slots__ = ("filter",)

    def __init__(self, store: "FilterStore", filt: Callable[[Any], bool]) -> None:
        self.filter = filt
        super().__init__(store)


class FilterStore(Store):
    """A store whose consumers select items with a predicate.

    Used by the PVFS client to collect per-server responses matched by
    request id without imposing a completion order.
    """

    __slots__ = ()

    def get(self, filt: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        """Remove the first item matching ``filt`` (blocks until one exists)."""
        return FilterStoreGet(self, filt)

    def _do_get(self, get: StoreGet) -> bool:
        assert isinstance(get, FilterStoreGet)
        for i, item in enumerate(self.items):
            if get.filter(item):
                del self.items[i]
                get.succeed(item)
                return True
        return False

    def _trigger(self) -> None:
        # Unlike FIFO stores, a blocked head-of-line get must not stall
        # later gets whose predicates could match.
        progressed = True
        while progressed:
            progressed = False
            while self._put_waiters:
                if not self._do_put(self._put_waiters[0]):
                    break
                self._put_waiters.popleft()
                progressed = True
            satisfied = []
            for get in self._get_waiters:
                if self._do_get(get):
                    satisfied.append(get)
                    progressed = True
            for get in satisfied:
                self._get_waiters.remove(get)
