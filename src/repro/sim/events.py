"""Waitable event primitives for the DES engine.

Every object a simulation process can ``yield`` derives from
:class:`Event`.  An event has a *value* (delivered to waiting
processes), an ordered list of callbacks, and a tri-state lifecycle:

``pending``  — not yet triggered; ``value`` is the sentinel ``PENDING``.
``triggered`` — scheduled on the environment's event queue.
``processed`` — callbacks have run; waiting processes were resumed.

Events may *succeed* (normal value) or *fail* (carry an exception that
is re-raised inside each waiting process).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.sim.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment
    from repro.sim.process import Process


class _Pending:
    """Sentinel for the value of an event that has not triggered."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _Pending()

#: Scheduling priorities.  Lower values run first at equal timestamps.
#: URGENT is used for resource bookkeeping (releases must precede the
#: requests they unblock), NORMAL for ordinary events.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot waitable.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks invoked with the event when it is processed.  Set
        #: to ``None`` once processed — appending afterwards is an error.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (scheduled or processed)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not yet been triggered")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failure has been marked as handled.

        An un-defused failed event that nobody waits on crashes the
        simulation at processing time, so errors cannot pass silently.
        """
        return self._defused

    def defuse(self) -> None:
        """Mark a failure as handled (suppresses crash-on-unhandled)."""
        self._defused = True

    def abandon(self) -> None:
        """Declare this *triggered* event dead weight for the scheduler.

        Caller contract: no process will ever yield on or inspect this
        event again, and processing it would be a no-op (every
        attached condition is already decided).  The scheduler may
        then sweep it from the pending set early instead of carrying
        it to its timestamp — the lazy-deletion path that keeps
        decided-race deadlines and defused hedge timers from bloating
        the queue during long soaks.  Safe to call more than once; a
        no-op on events that were never queued or already processed.
        """
        if self.callbacks is not None and self._value is not PENDING:
            self.env._sched.mark_dead(self)

    # -- triggering -------------------------------------------------------
    # Triggering is the engine's hottest write path (every grant,
    # resume and completion lands here), so the zero-delay NORMAL
    # schedule is inlined rather than routed through env.schedule().

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._push(env._now, PRIORITY_NORMAL, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed, carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._push(env._now, PRIORITY_NORMAL, self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another (triggered) event onto this one.

        Used as a callback target so condition events can chain.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        env = self.env
        env._push(env._now, PRIORITY_NORMAL, self)

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} ({state}) at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts dominate event creation, so Event.__init__ and
        # env.schedule() (which would re-check the delay) are inlined.
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self.delay = delay
        env._push(env._now + delay, PRIORITY_NORMAL, self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Timer(Event):
    """A cancellable one-shot timer that runs a callback when it fires.

    Unlike :class:`Timeout`, a Timer is not meant to be yielded on: it
    carries a zero-argument callback that the event loop invokes at
    ``now + delay`` unless :meth:`cancel` ran first.  Cancellation is
    O(1): the timer stays queued but is reported dead to the
    scheduler, whose lazy-deletion sweep reclaims the entry once
    enough corpses accumulate (see ``repro.sim.scheduler``) — so long
    soaks no longer carry every cancelled deadline to its timestamp.

    Used for server-side deadline enforcement, where most timers are
    cancelled by normal completion long before they fire.
    """

    __slots__ = ("delay", "cancelled", "_fn")

    def __init__(self, env: "Environment", delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = [self._fire]
        self._ok = True
        self._value: Any = None
        self._defused = False
        self.delay = delay
        self.cancelled = False
        self._fn: Optional[Callable[[], None]] = fn
        env._push(env._now + delay, PRIORITY_NORMAL, self)

    def cancel(self) -> None:
        """Suppress the callback; safe to call after the timer fired."""
        if not self.cancelled:
            self.cancelled = True
            self._fn = None
            if self.callbacks is not None:
                # Still queued: nobody yields on a Timer, so once the
                # callback is suppressed the pending entry is pure dead
                # weight — eligible for the compaction sweep.
                self.env._sched.mark_dead(self)

    def _fire(self, event: "Event") -> None:
        fn = self._fn
        self._fn = None
        if fn is not None and not self.cancelled:
            fn()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "armed"
        return f"<Timer delay={self.delay} ({state}) at {id(self):#x}>"


class Initialize(Event):
    """Internal event that kicks off a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        self._defused = False
        env._push(env._now, PRIORITY_URGENT, self)


class Condition(Event):
    """Waits for a boolean combination of other events.

    The condition's value is a dict mapping each *triggered* constituent
    event to its value, in trigger order — a simplified analogue of
    SimPy's ``ConditionValue``.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List["Event"], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        # Immediately check already-processed events.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        # An empty condition is trivially satisfied.
        if not self._events and self._value is PENDING:
            self.succeed({})

    def _collect_values(self) -> Dict["Event", Any]:
        """Values of the constituent events that have fired so far.

        ``processed`` (not ``triggered``) is the right test: a Timeout
        carries its value from construction and is therefore always
        "triggered", but it has only *fired* once the event loop
        processed it.
        """
        return {e: e._value for e in self._events if e.processed}

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return  # already decided

        self._count += 1
        if not event._ok:
            # Any failure fails the whole condition.
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Evaluate to True when all events have triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        """Evaluate to True when at least one event has triggered."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition satisfied when *all* of ``events`` have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition satisfied when *any* of ``events`` has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
