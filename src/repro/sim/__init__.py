"""Discrete-event simulation engine underlying the DOSAS reproduction.

This subpackage is a from-scratch, dependency-free discrete-event
simulation (DES) kernel in the style of SimPy: simulation *processes*
are Python generator coroutines that ``yield`` :class:`Event` objects
and are resumed by the :class:`Environment` event loop when those
events trigger.

The DOSAS paper evaluated its prototype on a real 16-node cluster
(Discfarm at Texas Tech).  We do not have that hardware, so the cluster
— compute nodes, storage nodes, NICs, disks — is modelled on top of
this engine with rates calibrated from the paper (see
``repro.cluster``).  The engine itself is generic and reusable.

Public surface
--------------
``Environment``
    The event loop: owns simulated time, schedules events, runs
    processes.
``Event``, ``Timeout``, ``Process``, ``AllOf``, ``AnyOf``
    Waitable objects.
``Interrupt``, ``Failure``
    Exceptions raised inside a process when another process interrupts
    it — ``Interrupt`` for scheduling decisions (the Active I/O Runtime
    preempting a kernel), ``Failure`` for injected component failures
    (crash, degrade, cancellation; see ``repro.faults``).
``Resource``, ``PriorityResource``, ``Container``, ``Store``
    Shared-resource primitives used to model CPU cores, NIC links and
    I/O queues.
``Monitor``, ``TimeSeries``
    Statistics helpers.
``EventScheduler``, ``HeapScheduler``, ``CalendarScheduler``
    Pluggable pending-event schedulers (``Environment(scheduler=...)``)
    — the calendar queue is the amortized-O(1) default, the binary
    heap the reference; both give identical results per seed.
"""

from repro.sim.exceptions import Failure, Interrupt, SimulationError, StopProcess
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    PENDING,
    Timeout,
    Timer,
)
from repro.sim.engine import Environment
from repro.sim.hotstate import FlyweightPool
from repro.sim.scheduler import (
    SCHEDULERS,
    CalendarScheduler,
    EventScheduler,
    HeapScheduler,
    make_event_scheduler,
)
from repro.sim.process import Process
from repro.sim.resources import (
    Container,
    PriorityRequest,
    PriorityResource,
    Release,
    Request,
    Resource,
)
from repro.sim.store import FilterStore, PriorityStore, Store, StoreGet, StorePut
from repro.sim.monitor import Monitor, TimeSeries, TimeWeightedStat

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarScheduler",
    "Condition",
    "Container",
    "Environment",
    "Event",
    "EventScheduler",
    "Failure",
    "FilterStore",
    "FlyweightPool",
    "HeapScheduler",
    "Interrupt",
    "Monitor",
    "PENDING",
    "PriorityRequest",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "Release",
    "Request",
    "Resource",
    "SCHEDULERS",
    "SimulationError",
    "StopProcess",
    "Store",
    "StoreGet",
    "StorePut",
    "TimeSeries",
    "TimeWeightedStat",
    "Timeout",
    "Timer",
    "make_event_scheduler",
]
