"""Shared-resource primitives.

``Resource`` models a pool of identical capacity slots (e.g. the cores
of a storage node, paper Sec. IV-A: "we simulated each storage node
with 2 cores").  Processes ``yield resource.request()`` to acquire a
slot and ``yield resource.release(req)`` (or use the request as a
context manager) to give it back.

``PriorityResource`` adds a priority queue so that normal I/O can take
precedence over active I/O when a storage node saturates ("normal I/O
will take the priority", paper Sec. I).

``Container`` models a scalar quantity (memory bytes, buffer space).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Deque, List, Tuple, TYPE_CHECKING

from repro.sim.events import Event, PRIORITY_URGENT
from repro.sim.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "_seq")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        #: Deterministic per-resource sequence number; keys the
        #: slot-wait trace span (memory addresses would not replay).
        self._seq = next(resource._tokens)
        resource._do_request(self)

    # Context-manager sugar: ``with res.request() as req: yield req``
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc_val: Any, exc_tb: Any) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Withdraw the claim: release if granted, dequeue if pending."""
        self.resource._do_cancel(self)


class Release(Event):
    """Event that returns a slot to the resource (triggers immediately)."""

    __slots__ = ("resource", "request")

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(self)
        self._ok = True
        self._value = None
        env = resource.env
        env._push(env._now, PRIORITY_URGENT, self)


class Resource:
    """A pool of ``capacity`` identical slots with a FIFO wait queue.

    ``name`` labels the resource in trace exports: a *named* resource
    emits ``slot-wait`` spans (queued → granted/cancelled) when the
    environment's tracer is enabled; anonymous resources stay silent
    so traces show only meaningful contention points.
    """

    __slots__ = ("env", "name", "_capacity", "_suspended", "_tokens",
                 "users", "queue")

    def __init__(self, env: "Environment", capacity: int = 1, name: str = "") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.name = name
        self._capacity = int(capacity)
        self._suspended = False
        self._tokens = itertools.count()
        #: Requests currently holding a slot.
        self.users: List[Request] = []
        #: Requests waiting for a slot (FIFO).  A deque: under heavy
        #: contention (hundreds of waiters per slot) the head pop must
        #: stay O(1) or granting degenerates to O(n²) per drain.
        self.queue: Deque[Request] = deque()

    # -- public API ----------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def suspended(self) -> bool:
        """True while the resource has stopped granting slots."""
        return self._suspended

    def suspend(self) -> None:
        """Stop granting slots (failure hook).

        Requests made while suspended queue up instead of being
        granted; current holders are unaffected (interrupt their
        processes separately to model a hard crash).  Idempotent.
        """
        self._suspended = True

    def resume_service(self) -> None:
        """Resume granting slots and serve the backlog.  Idempotent."""
        self._suspended = False
        self._grant_next()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self.queue)

    def request(self) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Return the slot held by ``request``."""
        return Release(self, request)

    # -- tracing ---------------------------------------------------------------
    def _trace_wait_begin(self, request: Request) -> None:
        tr = self.env.tracer
        if tr.enabled and self.name:
            tr.begin(
                self.env.now,
                "slot-wait",
                f"res:{self.name}",
                span_id=request._seq,
                queued=len(self.queue),
            )

    def _trace_wait_end(self, request: Request, cancelled: bool = False) -> None:
        tr = self.env.tracer
        if tr.enabled and self.name:
            if cancelled:
                tr.end(
                    self.env.now,
                    "slot-wait",
                    f"res:{self.name}",
                    span_id=request._seq,
                    cancelled=True,
                )
            else:
                tr.end(
                    self.env.now, "slot-wait", f"res:{self.name}", span_id=request._seq
                )

    # -- internals -------------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if not self._suspended and len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)
            self._trace_wait_begin(request)

    def _do_release(self, release: Release) -> None:
        try:
            self.users.remove(release.request)
        except ValueError:
            raise SimulationError(
                "released a request that does not hold this resource"
            ) from None
        self._grant_next()

    def _do_cancel(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        elif request in self.queue:
            self.queue.remove(request)
            self._trace_wait_end(request, cancelled=True)
        # else: already fully released — cancel is idempotent.

    def _grant_next(self) -> None:
        while not self._suspended and self.queue and len(self.users) < self._capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            self._trace_wait_end(nxt)
            nxt.succeed()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.count}/{self._capacity} used, "
            f"{len(self.queue)} queued>"
        )


class PriorityRequest(Request):
    """A resource claim with a priority (lower value = more urgent)."""

    __slots__ = ("priority", "time", "_order")

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        self.time = resource.env.now
        self._order = next(resource._counter)
        super().__init__(resource)

    @property
    def key(self) -> Tuple[int, float, int]:
        """Heap ordering: priority, then arrival time, then FIFO order."""
        return (self.priority, self.time, self._order)


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is ordered by priority.

    Invariant (checked by ``tests/sim/test_resources.py``): ``.queue``
    and ``._heap`` always hold exactly the same requests — the heap
    orders grants, the list keeps FIFO-introspection compatibility —
    and neither ever shares a request with ``.users``.
    """

    __slots__ = ("_counter", "_heap")

    def __init__(self, env: "Environment", capacity: int = 1, name: str = "") -> None:
        self._counter = itertools.count()
        super().__init__(env, capacity, name=name)
        self._heap: List[Tuple[Tuple[int, float, int], PriorityRequest]] = []

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        """Claim a slot with ``priority`` (lower is served first)."""
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if not self._suspended and len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            heapq.heappush(self._heap, (request.key, request))
            self.queue.append(request)  # keep .queue introspectable
            self._trace_wait_begin(request)

    def _do_cancel(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        elif request in self.queue:
            self.queue.remove(request)
            self._heap = [(k, r) for (k, r) in self._heap if r is not request]
            heapq.heapify(self._heap)
            self._trace_wait_end(request, cancelled=True)

    def _grant_next(self) -> None:
        while not self._suspended and self._heap and len(self.users) < self._capacity:
            _key, nxt = heapq.heappop(self._heap)
            self.queue.remove(nxt)
            self.users.append(nxt)
            self._trace_wait_end(nxt)
            nxt.succeed()


class ContainerPut(Event):
    """Pending deposit of ``amount`` into a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._puts.append(self)
        container._trigger()


class ContainerGet(Event):
    """Pending withdrawal of ``amount`` from a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._gets.append(self)
        container._trigger()


class Container:
    """A homogeneous scalar reservoir with blocking put/get.

    Used to model memory pressure on storage nodes: the Contention
    Estimator's probe reads ``level / capacity`` as the node's memory
    utilisation.
    """

    __slots__ = ("env", "_capacity", "_level", "_puts", "_gets")

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not (0 <= init <= capacity):
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = init
        self._puts: Deque[ContainerPut] = deque()
        self._gets: Deque[ContainerGet] = deque()

    @property
    def capacity(self) -> float:
        """Maximum level."""
        return self._capacity

    @property
    def level(self) -> float:
        """Current content."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Deposit ``amount`` (blocks while it would overflow)."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Withdraw ``amount`` (blocks until available)."""
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        """Serve queued puts/gets in FIFO order while they fit."""
        progressed = True
        while progressed:
            progressed = False
            if self._puts and self._level + self._puts[0].amount <= self._capacity:
                put = self._puts.popleft()
                self._level += put.amount
                put.succeed()
                progressed = True
            if self._gets and self._level >= self._gets[0].amount:
                get = self._gets.popleft()
                self._level -= get.amount
                get.succeed()
                progressed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Container {self._level}/{self._capacity}>"
