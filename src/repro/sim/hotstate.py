"""Flyweight pools for dispatch-loop hot state.

The dispatch loop allocates short-lived container objects at a high
rate: every distinct timestamp the calendar scheduler opens needs a
pair of FIFO queues (urgent/normal) holding the per-request hot state
— the event references the loop actually touches.  At million-client
scale those allocations (and the garbage they leave behind) show up
directly in events/second, so drained containers are recycled through
a free list instead of being re-allocated.

The pool is deliberately dumb: a LIFO free list with a factory.  The
*caller* owns the reset contract — an object must be back in its
pristine state (for queue pairs: empty) before it is given back.
"""

from __future__ import annotations

from typing import Callable, Generic, List, TypeVar

T = TypeVar("T")


class FlyweightPool(Generic[T]):
    """A LIFO free list of reusable objects.

    ``take()`` pops a recycled object or builds a fresh one with the
    factory; ``give(obj)`` returns one.  ``created``/``recycled`` count
    factory calls and free-list hits — the scheduler surfaces them in
    its queue stats so the bench trajectory can see allocator pressure.
    """

    __slots__ = ("_make", "_free", "_cap", "created", "recycled")

    def __init__(self, make: Callable[[], T], cap: int = 65536) -> None:
        self._make = make
        self._free: List[T] = []
        #: Free-list bound: beyond it, returned objects are dropped to
        #: the allocator (protects pathological workloads from pinning
        #: unbounded memory in the pool).
        self._cap = cap
        self.created = 0
        self.recycled = 0

    def take(self) -> T:
        """A recycled object if available, else a fresh one."""
        free = self._free
        if free:
            self.recycled += 1
            return free.pop()
        self.created += 1
        return self._make()

    def give(self, obj: T) -> None:
        """Return ``obj`` (already reset by the caller) for reuse."""
        if len(self._free) < self._cap:
            self._free.append(obj)

    def __len__(self) -> int:
        return len(self._free)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FlyweightPool free={len(self._free)} created={self.created} "
            f"recycled={self.recycled}>"
        )
