"""The simulation event loop.

:class:`Environment` owns simulated time and a pluggable scheduler of
triggered events (see :mod:`repro.sim.scheduler`).  ``run()`` pops
events in ``(time, priority, insertion order)`` order, advances the
clock, and fires callbacks — which resume waiting processes.

Determinism: ties at equal timestamps are broken first by the event's
scheduling priority (resource bookkeeping before user events) and then
by a monotonically increasing sequence number, so two runs of the same
model produce identical traces.  This matters for the reproduction:
the paper's Table IV compares scheduler decisions against empirically
best choices, and nondeterministic tie-breaking would make that
comparison flaky.  Both schedulers implement exactly this order, so
the choice of scheduler changes wall-clock speed, never results.
"""

from __future__ import annotations

from heapq import heappop
from typing import Any, Dict, Generator, Iterable, Optional

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    PRIORITY_NORMAL,
    Timeout,
)
from repro.sim.exceptions import SimulationError
from repro.sim.process import Process
from repro.sim.scheduler import (
    CalendarScheduler,
    EventScheduler,
    HeapScheduler,
    make_event_scheduler,
)

Infinity = float("inf")


class _EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds by convention
        throughout this codebase).
    scheduler:
        Pending-event scheduler: ``"calendar"`` (amortized O(1),
        default) or ``"heap"`` (the reference binary heap).  Both
        produce identical results per seed; see
        :mod:`repro.sim.scheduler`.
    """

    __slots__ = ("_now", "_sched", "_push", "_active_process", "tracer")

    def __init__(
        self, initial_time: float = 0.0, scheduler: str = "calendar"
    ) -> None:
        self._now = float(initial_time)
        self._sched = make_event_scheduler(scheduler, self)
        #: Bound push method, cached so the inlined trigger paths in
        #: events.py/process.py/resources.py pay one attribute load.
        self._push = self._sched.push
        self._active_process: Optional[Process] = None
        #: Request-lifecycle tracer (see ``repro.obs``).  Components
        #: read this at call time, so swapping in a real ``Tracer``
        #: before the run instruments the whole stack; the default
        #: no-op tracer costs one ``enabled`` check per site.
        self.tracer: Tracer = NULL_TRACER

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def scheduler(self) -> EventScheduler:
        """The active event scheduler (for stats and introspection)."""
        return self._sched

    def scheduler_stats(self) -> Dict[str, Any]:
        """Queue statistics of the active scheduler (stable keys)."""
        return self._sched.stats()

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition that waits for every event in ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition that waits for the first of ``events``."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def schedule(
        self,
        event: Event,
        priority: int = PRIORITY_NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Queue ``event`` to be processed ``delay`` units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._push(self._now + delay, priority, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._sched.peek()

    def step(self) -> None:
        """Process the single next event (advancing the clock to it)."""
        event = self._sched.pop()
        if event is None:
            raise _EmptySchedule()

        if self.tracer.trace_engine:
            # High-volume: every processed event.  Gated by its own
            # flag so normal tracing runs don't pay for it.
            self.tracer.instant(
                self._now, "event", "engine", etype=type(event).__name__
            )
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks is not None:
            for callback in callbacks:
                callback(event)

        if event._ok is False and not event._defused:
            # An unhandled failure: crash the run so errors are loud.
            exc = event._value
            raise exc

    def _dispatch(self, event: Event, trace_engine: bool) -> None:
        """Fire ``event``'s callbacks (generic-scheduler slow path)."""
        if trace_engine:
            self.tracer.instant(
                self._now, "event", "engine", etype=type(event).__name__
            )
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event._ok is False and not event._defused:
            # Unhandled failure: crash loudly.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the event queue is exhausted.
            a number — run until the clock reaches that time.  The
            boundary follows simpy: the run stops *before* processing
            events scheduled at exactly ``until``; they fire on the
            next ``run()``/``step()`` call.
            an :class:`Event` — run until that event is processed and
            return its value (re-raising its exception on failure).
        """
        at_event: Optional[Event] = None
        stop_time = Infinity

        if until is not None:
            if isinstance(until, Event):
                at_event = until
                if at_event.callbacks is None:
                    # Already processed.
                    if at_event.ok:
                        return at_event.value
                    raise at_event.value
            else:
                stop_time = float(until)
                if stop_time < self._now:
                    raise SimulationError(
                        f"until={stop_time} lies in the past (now={self._now})"
                    )

        # Inlined hot loops, specialized per scheduler so the per-event
        # cost is the data-structure touch itself, not interface
        # plumbing:
        #
        # - calendar: slotted batch execution.  The open slot's two
        #   deques are drained through locals — one or two truthiness
        #   tests plus a C ``popleft`` per event, no method call, no
        #   clock write, no queue probe.  ``_open_slot`` runs once per
        #   *distinct timestamp* and does the clock update and min
        #   search for the whole batch.  Urgent is re-checked first on
        #   every iteration, so a mid-batch URGENT push overtakes the
        #   remaining NORMAL backlog exactly as the heap would order
        #   it.  (``_open_slot`` swaps the deque objects; compaction
        #   filters them in place — so the locals stay valid between
        #   refreshes.)
        # - heap: the historical inlined ``heappop`` loop.
        # - anything else: the generic ``pop()`` interface.
        #
        # The engine-trace check is hoisted to a local so the common
        # untraced (NULL_TRACER) case pays a single bool test per
        # event.  ``step()``/``peek()`` remain for single-stepping
        # callers.  Each specialization comes in a bounded
        # (until=<time>) and an unbounded (until=None / until=<event>)
        # variant so the unbounded one skips the stop-time comparison
        # entirely.
        sched = self._sched
        tracer = self.tracer
        trace_engine = tracer.trace_engine
        if stop_time < Infinity:
            # A slot left half-drained by a previous run(until=event)
            # may sit exactly at the horizon; events at `stop_time`
            # must stay queued (simpy semantics), so refuse to re-open
            # it before entering the compare-free batch loop.
            if not sched.slot_blocked(stop_time):
                if type(sched) is CalendarScheduler:
                    urgent = sched._cur_urgent
                    normal = sched._cur_normal
                    while True:
                        if urgent:
                            event = urgent.popleft()
                        elif normal:
                            event = normal.popleft()
                        else:
                            ev = sched._open_slot(stop_time)
                            if ev is None:
                                break
                            event = ev
                            urgent = sched._cur_urgent
                            normal = sched._cur_normal
                        if trace_engine:
                            tracer.instant(
                                self._now, "event", "engine",
                                etype=type(event).__name__,
                            )
                        callbacks = event.callbacks
                        event.callbacks = None  # mark processed
                        if callbacks:
                            for callback in callbacks:
                                callback(event)
                        if event._ok is False and not event._defused:
                            # Unhandled failure: crash loudly.
                            raise event._value
                elif type(sched) is HeapScheduler:
                    queue = sched._queue
                    while queue:
                        if queue[0][0] >= stop_time:
                            # Events at exactly `stop_time` stay queued
                            # (simpy semantics).
                            break
                        when, _prio, _eid, event = heappop(queue)
                        self._now = when
                        if trace_engine:
                            tracer.instant(
                                when, "event", "engine",
                                etype=type(event).__name__,
                            )
                        callbacks = event.callbacks
                        event.callbacks = None  # mark processed
                        if callbacks:
                            for callback in callbacks:
                                callback(event)
                        if event._ok is False and not event._defused:
                            # Unhandled failure: crash loudly.
                            raise event._value
                else:  # pragma: no cover - third-party schedulers
                    pop = sched.pop
                    while True:
                        maybe = pop(stop_time)
                        if maybe is None:
                            break
                        self._dispatch(maybe, trace_engine)
            # Whether the horizon cut the run short or the queue
            # drained, the clock ends exactly at the horizon.
            self._now = stop_time
        elif type(sched) is CalendarScheduler:
            urgent = sched._cur_urgent
            normal = sched._cur_normal
            while True:
                if at_event is not None and at_event.callbacks is None:
                    break
                if urgent:
                    event = urgent.popleft()
                elif normal:
                    event = normal.popleft()
                else:
                    ev = sched._open_slot(Infinity)
                    if ev is None:
                        if at_event is not None:
                            raise SimulationError(
                                "run(until=event) exhausted the event "
                                "queue before the event triggered — the "
                                "model deadlocked"
                            )
                        break
                    event = ev
                    urgent = sched._cur_urgent
                    normal = sched._cur_normal
                if trace_engine:
                    tracer.instant(
                        self._now, "event", "engine",
                        etype=type(event).__name__,
                    )
                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event._defused:
                    # Unhandled failure: crash loudly.
                    raise event._value
        elif type(sched) is HeapScheduler:
            queue = sched._queue
            while True:
                if at_event is not None and at_event.callbacks is None:
                    break
                if not queue:
                    if at_event is not None:
                        raise SimulationError(
                            "run(until=event) exhausted the event queue "
                            "before the event triggered — the model "
                            "deadlocked"
                        )
                    break
                when, _prio, _eid, event = heappop(queue)
                self._now = when
                if trace_engine:
                    tracer.instant(
                        when, "event", "engine",
                        etype=type(event).__name__,
                    )
                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event._defused:
                    # Unhandled failure: crash loudly.
                    raise event._value
        else:  # pragma: no cover - third-party schedulers
            pop = sched.pop
            while True:
                if at_event is not None and at_event.callbacks is None:
                    break
                maybe = pop()
                if maybe is None:
                    if at_event is not None:
                        raise SimulationError(
                            "run(until=event) exhausted the event queue "
                            "before the event triggered — the model "
                            "deadlocked"
                        )
                    break
                self._dispatch(maybe, trace_engine)

        if at_event is not None:
            if at_event.ok:
                return at_event.value
            at_event.defuse()
            raise at_event.value
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Environment now={self._now} queued={len(self._sched)} "
            f"scheduler={self._sched.name}>"
        )
