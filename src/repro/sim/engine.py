"""The simulation event loop.

:class:`Environment` owns simulated time and a priority queue of
triggered events.  ``run()`` pops events in ``(time, priority,
insertion order)`` order, advances the clock, and fires callbacks —
which resume waiting processes.

Determinism: ties at equal timestamps are broken first by the event's
scheduling priority (resource bookkeeping before user events) and then
by a monotonically increasing sequence number, so two runs of the same
model produce identical traces.  This matters for the reproduction:
the paper's Table IV compares scheduler decisions against empirically
best choices, and nondeterministic tie-breaking would make that
comparison flaky.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    PRIORITY_NORMAL,
    Timeout,
)
from repro.sim.exceptions import SimulationError
from repro.sim.process import Process

Infinity = float("inf")


class _EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds by convention
        throughout this codebase).
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process", "tracer")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Request-lifecycle tracer (see ``repro.obs``).  Components
        #: read this at call time, so swapping in a real ``Tracer``
        #: before the run instruments the whole stack; the default
        #: no-op tracer costs one ``enabled`` check per site.
        self.tracer: Tracer = NULL_TRACER

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition that waits for every event in ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition that waits for the first of ``events``."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def schedule(
        self,
        event: Event,
        priority: int = PRIORITY_NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Queue ``event`` to be processed ``delay`` units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process the single next event (advancing the clock to it)."""
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise _EmptySchedule() from None

        self._now = when
        if self.tracer.trace_engine:
            # High-volume: every processed event.  Gated by its own
            # flag so normal tracing runs don't pay for it.
            self.tracer.instant(
                when, "event", "engine", etype=type(event).__name__, prio=_prio
            )
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks is not None:
            for callback in callbacks:
                callback(event)

        if event._ok is False and not event._defused:
            # An unhandled failure: crash the run so errors are loud.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the event queue is exhausted.
            a number — run until the clock reaches that time.  The
            boundary follows simpy: the run stops *before* processing
            events scheduled at exactly ``until``; they fire on the
            next ``run()``/``step()`` call.
            an :class:`Event` — run until that event is processed and
            return its value (re-raising its exception on failure).
        """
        at_event: Optional[Event] = None
        stop_time = Infinity

        if until is not None:
            if isinstance(until, Event):
                at_event = until
                if at_event.callbacks is None:
                    # Already processed.
                    if at_event.ok:
                        return at_event.value
                    raise at_event.value
            else:
                stop_time = float(until)
                if stop_time < self._now:
                    raise SimulationError(
                        f"until={stop_time} lies in the past (now={self._now})"
                    )

        # Inlined hot loop: one heap access per event (no peek+pop
        # double touch), no exception-driven exit on an empty queue,
        # and the engine-trace check hoisted to a local so the common
        # untraced (NULL_TRACER) case pays a single bool test per
        # event.  `step()`/`peek()` remain for single-stepping callers.
        # The loop comes in a bounded (until=<time>) and an unbounded
        # (until=None / until=<event>) variant so the unbounded one
        # skips the stop-time comparison entirely.
        queue = self._queue
        tracer = self.tracer
        trace_engine = tracer.trace_engine
        pop = heappop
        if stop_time < Infinity:
            while queue:
                if queue[0][0] >= stop_time:
                    # Events at exactly `stop_time` stay queued (simpy
                    # semantics).
                    break
                when, _prio, _eid, event = pop(queue)
                self._now = when
                if trace_engine:
                    tracer.instant(
                        when, "event", "engine",
                        etype=type(event).__name__, prio=_prio,
                    )
                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event._defused:
                    # Unhandled failure: crash the run so errors are loud.
                    raise event._value
            # Whether the horizon cut the run short or the queue
            # drained, the clock ends exactly at the horizon.
            self._now = stop_time
        else:
            while True:
                if at_event is not None and at_event.callbacks is None:
                    break
                if not queue:
                    if at_event is not None:
                        raise SimulationError(
                            "run(until=event) exhausted the event queue "
                            "before the event triggered — the model "
                            "deadlocked"
                        )
                    break
                when, _prio, _eid, event = pop(queue)
                self._now = when
                if trace_engine:
                    tracer.instant(
                        when, "event", "engine",
                        etype=type(event).__name__, prio=_prio,
                    )
                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event._defused:
                    # Unhandled failure: crash the run so errors are loud.
                    raise event._value

        if at_event is not None:
            if at_event.ok:
                return at_event.value
            at_event.defuse()
            raise at_event.value
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Environment now={self._now} queued={len(self._queue)}>"
