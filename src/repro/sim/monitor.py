"""Statistics collection for simulation runs.

The Contention Estimator (paper Sec. III-D) "monitors current system
status, including I/O queue, memory usage and CPU usage".  These
helpers provide the raw series those probes read, plus generic
utilisation accounting used by the analysis package to compute achieved
bandwidth (Figures 11–12).
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, Iterable, List, Optional, Tuple


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    __slots__ = ("times", "values", "name")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample.  Times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"non-monotonic sample time {time} < {self.times[-1]} in {self.name!r}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Optional[float]:
        """Most recent value, or None if empty."""
        return self.values[-1] if self.values else None

    def mean(self) -> float:
        """Unweighted mean of the sampled values."""
        if not self.values:
            raise ValueError(f"empty series {self.name!r}")
        return sum(self.values) / len(self.values)

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Mean of the piecewise-constant signal over ``[times[0], until]``.

        Each value holds from its sample time to the next sample (or to
        ``until`` for the last sample).  ``until`` defaults to the last
        sample time; an ``until`` inside the series integrates only the
        prefix, and one *before the first sample* raises ``ValueError``
        — there is no signal to average there.  A zero-width window
        (``until == times[0]``) returns the instantaneous value.
        """
        if not self.values:
            raise ValueError(f"empty series {self.name!r}")
        end = self.times[-1] if until is None else until
        if end < self.times[0]:
            raise ValueError(
                f"until={end} precedes the first sample at {self.times[0]}"
                f" in {self.name!r}"
            )
        span = end - self.times[0]
        if span <= 0:
            # All mass at one instant: the signal's value at `end` is
            # the last sample recorded at or before it.
            idx = bisect.bisect_right(self.times, end) - 1
            return self.values[idx]
        total = 0.0
        for i in range(len(self.times)):
            t0 = self.times[i]
            if t0 >= end:
                break
            t1 = self.times[i + 1] if i + 1 < len(self.times) else end
            total += self.values[i] * (min(t1, end) - t0)
        return total / span


class TimeWeightedStat:
    """Online time-weighted average of a piecewise-constant signal.

    Cheaper than :class:`TimeSeries` when only the mean is needed —
    used for CPU-busy fractions on storage-node cores.
    """

    __slots__ = ("_last_time", "_last_value", "_area", "_start")

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._start = start_time
        self._last_time = start_time
        self._last_value = initial
        self._area = 0.0

    @property
    def current(self) -> float:
        """The signal's present value."""
        return self._last_value

    def update(self, time: float, value: float) -> None:
        """Advance the signal to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError(f"time went backwards: {time} < {self._last_time}")
        self._area += self._last_value * (time - self._last_time)
        self._last_time = time
        self._last_value = value

    def mean(self, now: float) -> float:
        """Time-weighted mean over ``[start, now]``."""
        if now < self._last_time:
            raise ValueError("now precedes the last update")
        span = now - self._start
        if span <= 0:
            return self._last_value
        return (self._area + self._last_value * (now - self._last_time)) / span


class Monitor:
    """Named collection of counters and time series for one run."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.series: Dict[str, TimeSeries] = {}

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def record(self, name: str, time: float, value: float) -> None:
        """Append a sample to the series ``name`` (created on demand)."""
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        self.series[name].record(time, value)

    def get_counter(self, name: str) -> float:
        """Counter value (0 if never incremented)."""
        return self.counters.get(name, 0.0)

    def get_series(self, name: str) -> TimeSeries:
        """The series ``name``; raises KeyError if absent."""
        return self.series[name]

    def summary(self) -> Dict[str, Any]:
        """Flat dict of counters plus per-series mean/sample_mean/last.

        Series are piecewise-constant signals, so ``<name>.mean`` is the
        *time-weighted* mean; the unweighted mean of the raw samples is
        kept under ``<name>.sample_mean`` (the two differ whenever the
        signal dwells longer at some values than at others).
        """
        out: Dict[str, Any] = dict(self.counters)
        for name, series in self.series.items():
            if len(series):
                out[f"{name}.mean"] = series.time_weighted_mean()
                out[f"{name}.sample_mean"] = series.mean()
                out[f"{name}.last"] = series.last()
        return out


def percentile(values: Iterable[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) without numpy.

    Provided so the lightweight stats path has no array dependency;
    heavy analyses use numpy directly.
    """
    data = sorted(values)
    if not data:
        raise ValueError("percentile of empty data")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac
