"""Exception types used by the simulation engine."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine itself.

    Raised for misuse of the API (e.g. triggering an event twice,
    running an environment with no scheduled events and an ``until``
    bound that can never be reached).
    """


class StopProcess(Exception):
    """Raised internally to terminate a process early with a value.

    Processes normally finish by returning from their generator; code
    that needs to end a process from a non-generator helper can raise
    ``StopProcess(value)`` instead.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised *inside* a process when another process interrupts it.

    In the DOSAS architecture the Active I/O Runtime interrupts a
    processing kernel that is executing on a storage node when the
    Contention Estimator demotes its request to a normal I/O (paper
    Sec. III-C).  The kernel catches ``Interrupt``, checkpoints its
    state through the shared-memory channel, and the computation
    migrates to the requesting compute node.

    Parameters
    ----------
    cause:
        Arbitrary payload describing why the interrupt happened.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The payload passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"


class Failure(Interrupt):
    """An interrupt whose cause is a *component failure*, not a
    scheduling decision.

    The fault-injection subsystem (``repro.faults``) delivers node
    crashes, degradation signals and client-side cancellations into
    running processes as ``Failure`` so handlers can distinguish "the
    policy demoted you — checkpoint and migrate" (plain
    :class:`Interrupt`) from "the component you were running on broke"
    and react accordingly (drop silently on crash, checkpoint and
    migrate on degrade, abort on cancel).

    ``cause`` carries the failure kind — by convention one of the
    string constants used by ``repro.core.runtime`` ("node-crash",
    "node-degrade", "client-cancel", "kernel-stall") or a richer
    payload from the injector.
    """

    @property
    def kind(self) -> Any:
        """Alias of :attr:`cause` — the failure kind."""
        return self.args[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Failure({self.cause!r})"
