"""The once-per-run project model behind the flow-aware rules.

``lint_paths`` parses every discovered file a single time and builds a
:class:`ProjectModel` before any rule runs:

- a **module import graph** (every ``import``/``from ... import``
  edge, classified ``toplevel`` / ``typecheck`` / ``deferred``) — the
  input of the RPR5xx architecture gate;
- **class/attribute summaries**: which attributes a class assigns in
  ``__init__``, which it *rebinds* elsewhere, and which it mutates in
  place (``self.xs.append``, ``self.xs[k] = ...``) — the volatility
  facts the cross-yield dataflow pass (RPR401/404) keys on;
- a **conservative call graph**: per function, the dotted names it
  calls, plus a project-wide method index so ``rk.preempt(...)`` can
  be resolved (by name — receiver types are unknown) to candidate
  method bodies (used by RPR403 to accept guarded wrappers).

Known approximations, by design (documented in
``docs/static_analysis.md``):

- Method resolution is by *name only* — any class with a matching
  method is a candidate (over-approximate), and unknown receivers are
  assumed well-behaved (under-approximate).
- Attribute volatility is computed per class, not per instance, and
  subclass mutations do not propagate to base-class summaries.
- Single-file linting (``lint_source`` without a project) builds a
  one-module model, so per-class facts still work but cross-module
  facts (layering, cycles) are vacuous.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

__all__ = [
    "ImportEdge",
    "ClassSummary",
    "ModuleSummary",
    "ProjectModel",
    "module_name_for_path",
    "interrupt_guard_status",
    "unguarded_interrupt_sites",
    "MUTATING_METHODS",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Container methods that mutate the receiver in place.
MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "add",
    "discard", "remove", "pop", "popleft", "popitem", "clear", "update",
    "setdefault", "sort", "reverse",
})


@dataclass(frozen=True)
class ImportEdge:
    """One import statement edge out of a module."""

    module: str
    lineno: int
    col: int
    #: ``"toplevel"`` (module scope), ``"typecheck"`` (under
    #: ``if TYPE_CHECKING:``), or ``"deferred"`` (inside a function).
    context: str


@dataclass
class ClassSummary:
    """Attribute facts for one class definition."""

    name: str
    module: str
    #: Attributes assigned (``self.x = ...``) inside ``__init__`` /
    #: ``__post_init__`` / class body only.
    init_attrs: Set[str] = field(default_factory=set)
    #: Attributes *rebound* (``self.x = ...``) outside the
    #: constructors — reading a cached reference across a yield races
    #: with the rebind.
    rebound_attrs: Set[str] = field(default_factory=set)
    #: Attributes mutated in place (``self.x.append(...)``,
    #: ``self.x[k] = v``, ``del self.x[k]``, ``self.x += ...``)
    #: anywhere in the class — cached *values* (length, element) go
    #: stale across a yield.
    mutated_attrs: Set[str] = field(default_factory=set)
    #: method name → AST node.
    methods: Dict[str, FunctionNode] = field(default_factory=dict)

    def volatile_ref_attrs(self) -> Set[str]:
        return self.rebound_attrs

    def volatile_content_attrs(self) -> Set[str]:
        return self.rebound_attrs | self.mutated_attrs


@dataclass
class ModuleSummary:
    """Per-module facts extracted in one pass over its AST."""

    name: str
    path: str
    imports: List[ImportEdge] = field(default_factory=list)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: Module-level names rebound from inside functions (``global x``
    #: plus an assignment) — cached module state, same hazard as a
    #: rebound attribute.
    rebound_globals: Set[str] = field(default_factory=set)
    #: Conservative call graph: function qualname → called dotted
    #: names (as written; resolution is by final-name matching).
    calls: Dict[str, Set[str]] = field(default_factory=dict)


class ProjectModel:
    """All modules of one lint run, plus derived indexes."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        self._by_path: Dict[str, ModuleSummary] = {}
        #: method name → [(class summary, method node)] across the
        #: whole project (name-based conservative method resolution).
        self.methods_by_name: Dict[str, List[Tuple[ClassSummary, FunctionNode]]] = {}
        #: Populated lazily by the cycle rule.
        self._scc_cache: Optional[Dict[str, Set[str]]] = None

    # -- construction -----------------------------------------------------
    @classmethod
    def build(cls, trees: Dict[str, ast.Module]) -> "ProjectModel":
        """Build the model from ``path → parsed module`` (sorted order)."""
        model = cls()
        for path in sorted(trees):
            model.add_module(path, trees[path])
        return model

    @classmethod
    def from_tree(cls, path: str, tree: ast.Module) -> "ProjectModel":
        """One-module model for standalone ``lint_source`` runs."""
        model = cls()
        model.add_module(path, tree)
        return model

    def add_module(self, path: str, tree: ast.Module) -> None:
        name = module_name_for_path(path)
        summary = _summarize_module(name, path, tree)
        self.modules[name] = summary
        self._by_path[os.path.normpath(path)] = summary
        for cls_summary in summary.classes.values():
            for mname, mnode in cls_summary.methods.items():
                self.methods_by_name.setdefault(mname, []).append(
                    (cls_summary, mnode))

    # -- lookups ----------------------------------------------------------
    def module_for_path(self, path: str) -> Optional[str]:
        summary = self._by_path.get(os.path.normpath(path))
        return summary.name if summary is not None else None

    def class_in_module(self, module: Optional[str], name: str) -> Optional[ClassSummary]:
        if module is None:
            return None
        summary = self.modules.get(module)
        if summary is None:
            return None
        return summary.classes.get(name)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file path.

    Prefers the real package structure (walking up while
    ``__init__.py`` exists).  For paths that do not exist on disk
    (snippet fixtures), falls back to the textual convention: the
    components after a ``src`` directory, else from a ``repro``
    component, else the bare stem.
    """
    norm = os.path.normpath(path)
    stem = os.path.splitext(os.path.basename(norm))[0]
    dirpath = os.path.dirname(norm)
    if os.path.exists(norm):
        parts = [stem]
        while dirpath and os.path.isfile(os.path.join(dirpath, "__init__.py")):
            parts.insert(0, os.path.basename(dirpath))
            dirpath = os.path.dirname(dirpath)
        if parts[-1] == "__init__" and len(parts) > 1:
            parts.pop()
        return ".".join(parts)
    parts = norm.replace(os.sep, "/").split("/")
    parts[-1] = stem
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__" and len(parts) > 1:
        parts.pop()
    return ".".join(parts) if parts else stem


# -- module summarization -------------------------------------------------

def _summarize_module(name: str, path: str, tree: ast.Module) -> ModuleSummary:
    summary = ModuleSummary(name=name, path=path)
    _collect_imports(tree.body, name, "toplevel", summary.imports)
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            summary.classes[node.name] = _summarize_class(name, node)
    _collect_rebound_globals(tree, summary)
    _collect_calls(tree, summary)
    return summary


def _collect_imports(
    body: List[ast.stmt],
    module: str,
    context: str,
    out: List[ImportEdge],
) -> None:
    for node in body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.append(ImportEdge(alias.name, node.lineno,
                                      node.col_offset, context))
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_from_import(module, node)
            if target:
                out.append(ImportEdge(target, node.lineno,
                                      node.col_offset, context))
        elif isinstance(node, ast.If):
            branch = context
            if context == "toplevel" and _mentions_type_checking(node.test):
                branch = "typecheck"
            _collect_imports(node.body, module, branch, out)
            _collect_imports(node.orelse, module, context, out)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _collect_imports(node.body, module, "deferred", out)
        elif isinstance(node, ast.ClassDef):
            _collect_imports(node.body, module, context, out)
        elif isinstance(node, ast.Try):
            _collect_imports(node.body, module, context, out)
            for handler in node.handlers:
                _collect_imports(handler.body, module, context, out)
            _collect_imports(node.orelse, module, context, out)
            _collect_imports(node.finalbody, module, context, out)
        elif isinstance(node, (ast.With, ast.AsyncWith, ast.For,
                               ast.AsyncFor, ast.While)):
            _collect_imports(node.body, module, context, out)
            _collect_imports(getattr(node, "orelse", []), module, context, out)


def _mentions_type_checking(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id == "TYPE_CHECKING":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING":
            return True
    return False


def _resolve_from_import(module: str, node: ast.ImportFrom) -> str:
    """Absolute dotted target of a ``from ... import`` statement."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    # The anchor package: strip the module's own final component
    # (unless the module *is* a package, which we cannot tell here —
    # assume plain module, the common case), then climb level-1 more.
    anchor = parts[:-1]
    climb = node.level - 1
    if climb:
        anchor = anchor[:-climb] if climb <= len(anchor) else []
    if node.module:
        anchor = anchor + node.module.split(".")
    return ".".join(anchor)


_CTOR_NAMES = frozenset({"__init__", "__post_init__", "__new__",
                         "__init_subclass__", "__set_name__"})


def _summarize_class(module: str, node: ast.ClassDef) -> ClassSummary:
    summary = ClassSummary(name=node.name, module=module)
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        summary.methods[item.name] = item
        self_name = _self_arg(item)
        if self_name is None:
            continue
        in_ctor = item.name in _CTOR_NAMES
        for sub in ast.walk(item):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    for attr in _attr_targets(target, self_name):
                        (summary.init_attrs if in_ctor
                         else summary.rebound_attrs).add(attr)
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                for attr in _attr_targets(sub.target, self_name):
                    (summary.init_attrs if in_ctor
                     else summary.rebound_attrs).add(attr)
            elif isinstance(sub, ast.AugAssign):
                attr = _plain_self_attr(sub.target, self_name)
                if attr is not None:
                    # ``self.x += 1`` is a rebind for immutables and a
                    # mutation for containers; count it as both.
                    if not in_ctor:
                        summary.rebound_attrs.add(attr)
                    summary.mutated_attrs.add(attr)
                else:
                    attr = _subscript_self_attr(sub.target, self_name)
                    if attr is not None:
                        summary.mutated_attrs.add(attr)
            elif isinstance(sub, (ast.Delete,)):
                for target in sub.targets:
                    attr = _subscript_self_attr(target, self_name)
                    if attr is not None:
                        summary.mutated_attrs.add(attr)
            elif isinstance(sub, ast.Call):
                attr = _mutating_call_attr(sub, self_name)
                if attr is not None:
                    summary.mutated_attrs.add(attr)
        # Subscript stores: ``self.x[k] = v`` appears as Assign with a
        # Subscript target; catch those too.
        for sub in ast.walk(item):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    attr = _subscript_self_attr(target, self_name)
                    if attr is not None:
                        summary.mutated_attrs.add(attr)
    return summary


def _self_arg(func: FunctionNode) -> Optional[str]:
    args = func.args.posonlyargs + func.args.args
    if not args:
        return None
    for deco in func.decorator_list:
        if isinstance(deco, ast.Name) and deco.id in ("staticmethod", "classmethod"):
            return None
    return args[0].arg


def _attr_targets(target: ast.expr, self_name: str) -> List[str]:
    """Attribute names assigned on ``self`` by an assignment target."""
    out: List[str] = []
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            out.extend(_attr_targets(elt, self_name))
        return out
    attr = _plain_self_attr(target, self_name)
    if attr is not None:
        out.append(attr)
    return out


def _plain_self_attr(node: ast.expr, self_name: str) -> Optional[str]:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name):
        return node.attr
    return None


def _subscript_self_attr(node: ast.expr, self_name: str) -> Optional[str]:
    if isinstance(node, ast.Subscript):
        return _plain_self_attr(node.value, self_name)
    return None


def _mutating_call_attr(call: ast.Call, self_name: str) -> Optional[str]:
    """``self.x.append(...)`` → ``"x"`` when the method mutates."""
    func = call.func
    if (isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS):
        return _plain_self_attr(func.value, self_name)
    return None


def _collect_rebound_globals(tree: ast.Module, summary: ModuleSummary) -> None:
    module_names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module_names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            module_names.add(node.target.id)
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            for name in node.names:
                if name in module_names:
                    summary.rebound_globals.add(name)


def _collect_calls(tree: ast.Module, summary: ModuleSummary) -> None:
    """Fill the conservative call graph (qualname → called names)."""

    def visit_function(func: FunctionNode, qualname: str) -> None:
        called: Set[str] = set()
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit_function(node, f"{qualname}.<locals>.{node.name}")
                continue
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call):
                name = _called_name(node.func)
                if name is not None:
                    called.add(name)
            stack.extend(ast.iter_child_nodes(node))
        summary.calls[qualname] = called

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit_function(node, node.name)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit_function(item, f"{node.name}.{item.name}")


def _called_name(func: ast.expr) -> Optional[str]:
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if parts:
        # Method call on a computed receiver: keep the tail.
        return ".".join(reversed(parts))
    return None


# -- interrupt-guard analysis (shared by RPR403) --------------------------

def interrupt_guard_status(func: FunctionNode) -> str:
    """Classify a function's use of ``.interrupt()``.

    Returns ``"no-interrupt"`` when the body never calls
    ``.interrupt``, ``"guarded"`` when every such call sits behind the
    one-interrupt-ever pattern, and ``"unguarded"`` otherwise.  Used
    both by RPR403 directly and to accept calls into guarded wrapper
    methods (``rk.preempt(...)``).
    """
    sites = unguarded_interrupt_sites(func)
    if sites is None:
        return "no-interrupt"
    return "unguarded" if sites else "guarded"


def unguarded_interrupt_sites(func: FunctionNode) -> Optional[List[ast.Call]]:
    """Unguarded ``.interrupt()`` call nodes in ``func``.

    None when the function contains no interrupt call at all.  A call
    is *guarded* when (a) an enclosing ``if``/``while`` test mentions
    ``is_alive`` or a once-flag (an attribute assigned ``True``
    somewhere in the same function), or (b) an earlier statement in
    the function is an ``if`` whose body exits early (return / raise /
    continue / break) and whose test mentions such a guard.
    """
    calls: List[ast.Call] = []
    parents: Dict[ast.AST, ast.AST] = {}
    stack: List[ast.AST] = [func]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parents[child] = node
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)
            if (isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "interrupt"):
                calls.append(child)
    if not calls:
        return None

    flag_attrs = _true_assigned_attrs(func)
    guard_words = flag_attrs | {"is_alive"}

    def test_guards(test: ast.expr) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr in guard_words:
                return True
            if isinstance(sub, ast.Name) and sub.id in guard_words:
                return True
        return False

    early_guard_lines: List[int] = []
    for node in ast.walk(func):
        if isinstance(node, ast.If) and test_guards(node.test):
            if any(isinstance(s, (ast.Return, ast.Raise, ast.Continue,
                                  ast.Break))
                   for s in node.body):
                early_guard_lines.append(node.lineno)

    unguarded: List[ast.Call] = []
    for call in calls:
        node: ast.AST = call
        guarded = False
        while node is not func:
            parent = parents.get(node)
            if parent is None:
                break
            if (isinstance(parent, (ast.If, ast.While))
                    and (node in parent.body
                         or node in getattr(parent, "orelse", []))
                    and test_guards(parent.test)):
                guarded = True
                break
            node = parent
        if not guarded:
            for line in early_guard_lines:
                if line <= call.lineno:
                    guarded = True
                    break
        if not guarded:
            unguarded.append(call)
    return unguarded


def _true_assigned_attrs(func: FunctionNode) -> Set[str]:
    """Attribute names assigned the constant True within ``func``."""
    out: Set[str] = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Constant)
                and node.value.value is True):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    out.add(target.attr)
    return out
