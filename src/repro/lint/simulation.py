"""Simulation-correctness rules (RPR2xx).

These rules understand the shape of DES *process generators* — Python
generators driven by :class:`repro.sim.Process` that ``yield`` events.
A generator counts as a sim process when at least one of its ``yield``
expressions references an environment (``env`` / ``self.env``) or one
of the engine's waitable factories; plain data generators (e.g. trace
readers yielding records) are deliberately out of scope.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Union

from repro.lint.base import (
    Rule,
    dotted_name,
    generator_functions,
    is_env_expr,
    rule,
    shallow_nodes,
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Environment / resource factory methods whose results are waitables.
_WAITABLE_FACTORIES = frozenset({
    "timeout", "event", "process", "all_of", "any_of",
    "request", "release", "acquire", "put", "get",
})

#: Constructor names of waitable classes.
_WAITABLE_CLASSES = frozenset({
    "Event", "Timeout", "AllOf", "AnyOf", "Condition",
})


def _is_waitable_construction(node: ast.expr) -> Optional[str]:
    """Name of the waitable this call constructs, or None."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) >= 2 and parts[-1] in ("timeout", "event", "all_of", "any_of"):
        return name
    if parts[-1] in _WAITABLE_CLASSES:
        return name
    return None


def _yields_events(func: FunctionNode) -> bool:
    """Heuristic: does this generator yield engine waitables?"""
    for node in shallow_nodes(func):
        if isinstance(node, ast.Yield) and node.value is not None:
            for sub in ast.walk(node.value):
                if is_env_expr(sub):
                    return True
                if isinstance(sub, ast.Call):
                    name = dotted_name(sub.func)
                    if name is not None and \
                            name.split(".")[-1] in _WAITABLE_FACTORIES:
                        return True
    return False


def _sim_process_generators(tree: ast.Module) -> List[FunctionNode]:
    return [f for f in generator_functions(tree) if _yields_events(f)]


@rule
class DroppedEventRule(Rule):
    """RPR201 — waitable constructed in a process generator, never used.

    ``env.timeout(d)`` without a ``yield`` does not wait — the delay is
    silently skipped; an ``Event()`` nobody yields, triggers or stores
    can never wake its waiters.  Both are almost always a missing
    ``yield``.
    """

    code = "RPR201"
    name = "dropped-event"
    summary = "Event/Timeout constructed in a process generator but never yielded/used"

    def check(self, tree: ast.Module) -> None:
        for func in _sim_process_generators(tree):
            nodes = shallow_nodes(func)
            # Bare-statement constructions: the result is discarded.
            for node in nodes:
                if isinstance(node, ast.Expr):
                    what = _is_waitable_construction(node.value)
                    if what is not None:
                        self.add(node, f"{what}(...) constructed and "
                                       "discarded — a process must yield a "
                                       "waitable for it to take effect")
            # Assigned-but-never-referenced constructions.
            assigned = {}
            for node in nodes:
                if (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    what = _is_waitable_construction(node.value)
                    if what is not None:
                        assigned[node.targets[0].id] = (node, what)
            if not assigned:
                continue
            for node in nodes:
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    assigned.pop(node.id, None)
            for varname in sorted(assigned):
                node, what = assigned[varname]
                self.add(node, f"{what}(...) assigned to {varname!r} but "
                               f"{varname!r} is never yielded, triggered "
                               "or passed on")


#: Dotted call names that block the host thread / touch the host OS.
_BLOCKING_DOTTED = frozenset({
    "time.sleep", "os.system", "os.popen", "subprocess.run",
    "subprocess.call", "subprocess.check_call", "subprocess.check_output",
    "subprocess.Popen", "socket.socket", "socket.create_connection",
})
#: Bare builtins that block on host I/O.
_BLOCKING_BUILTINS = frozenset({"open", "input"})
#: pathlib-style I/O method tails.
_BLOCKING_METHOD_TAILS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})


@rule
class BlockingCallRule(Rule):
    """RPR202 — host-blocking call inside a sim process generator.

    Simulated work must be modelled as ``yield env.timeout(cost)``;
    ``time.sleep`` stalls the host without advancing ``env.now``, and
    file/subprocess I/O makes the "simulation" depend on host state.
    """

    code = "RPR202"
    name = "blocking-call"
    summary = "time.sleep/file I/O/subprocess call inside a sim process generator"

    def check(self, tree: ast.Module) -> None:
        for func in _sim_process_generators(tree):
            for node in shallow_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if (name in _BLOCKING_DOTTED
                        or (len(parts) == 1 and parts[0] in _BLOCKING_BUILTINS)
                        or (len(parts) >= 2
                            and parts[-1] in _BLOCKING_METHOD_TAILS)):
                    self.add(node, f"host-blocking call {name}(...) inside a "
                                   "sim process generator; model the cost "
                                   "with yield env.timeout(...) instead")


@rule
class EnvNowAtImportRule(Rule):
    """RPR203 — ``env.now`` read at module or class scope.

    At import time there is no running simulation: the value read is
    whatever a module-level environment happened to hold when the file
    was imported (usually 0.0), frozen forever — including into default
    argument values, which are evaluated once at ``def`` time.
    """

    code = "RPR203"
    name = "env-now-at-import"
    summary = "env.now read at module/class scope (frozen at import time)"

    def check(self, tree: ast.Module) -> None:
        self._walk_scope(tree)

    def _walk_scope(self, scope: ast.AST) -> None:
        """Visit module/class-level expressions; stop at function bodies."""
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Defaults and decorators evaluate in the enclosing
                # (module/class) scope; the body does not.
                for default in (list(child.args.defaults)
                                + [d for d in child.args.kw_defaults
                                   if d is not None]):
                    self._scan(default)
                for deco in child.decorator_list:
                    self._scan(deco)
                continue
            if isinstance(child, ast.Lambda):
                continue
            if isinstance(child, ast.ClassDef):
                self._walk_scope(child)
                continue
            self._scan(child)

    def _scan(self, node: ast.AST) -> None:
        """Flag ``node`` and every non-function descendant."""
        self._flag_env_now(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            self._scan(child)

    def _flag_env_now(self, node: ast.AST) -> None:
        if (isinstance(node, ast.Attribute) and node.attr == "now"
                and is_env_expr(node.value)):
            self.add(node, "env.now read at module/class scope is frozen at "
                           "import time; read it inside the running process")


__all__ = ["DroppedEventRule", "BlockingCallRule", "EnvNowAtImportRule"]
