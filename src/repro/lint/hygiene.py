"""Hygiene rules (RPR3xx).

Patterns that don't break determinism directly but hide the bugs that
do: shared mutable default arguments, and exception handlers broad and
silent enough to swallow a real failure (the ``id(request)`` collision
of PR 3 survived as long as it did because nothing ever raised).
Scoped to library sources — test helpers are exempt.
"""

from __future__ import annotations

import ast
from typing import Union

from repro.lint.base import FileContext, Rule, body_is_silent, dotted_name, rule

#: Call names that build a fresh mutable container.
_MUTABLE_FACTORY_TAILS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque",
    "OrderedDict", "Counter",
})

_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)

FunctionLike = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


@rule
class MutableDefaultRule(Rule):
    """RPR301 — mutable default argument.

    Defaults are evaluated once at ``def`` time, so a ``[]`` / ``{}``
    default is shared by every call — state leaks across requests and
    across sweep points.  Use ``None`` and create the container in the
    body (or a frozen/dataclass ``field(default_factory=...)``).
    """

    code = "RPR301"
    name = "mutable-default"
    summary = "mutable default argument (shared across calls)"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_src

    def _check_defaults(self, node: FunctionLike) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, _MUTABLE_DISPLAYS):
                self.add(default, "mutable default argument is shared "
                                  "across calls; default to None and build "
                                  "the container in the body")
            elif isinstance(default, ast.Call):
                name = dotted_name(default.func)
                if name is not None and \
                        name.split(".")[-1] in _MUTABLE_FACTORY_TAILS:
                    self.add(default, f"mutable default argument {name}() is "
                                      "shared across calls; default to None "
                                      "and build the container in the body")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler_type: ast.expr) -> bool:
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(e) for e in handler_type.elts)
    name = dotted_name(handler_type)
    return name is not None and name.split(".")[-1] in _BROAD_NAMES


@rule
class SilentExceptRule(Rule):
    """RPR302 — bare/broad except that silently swallows.

    ``except:`` and ``except Exception: pass`` hide typos, determinism
    regressions and engine invariant violations alike.  Either narrow
    the exception type to what the code actually expects, or make the
    degrade path observable (metric counter, log line, re-raise).
    """

    code = "RPR302"
    name = "silent-except"
    summary = "bare/broad except whose handler visibly does nothing"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_src

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            if self._is_silent(node):
                self.add(node, "bare except swallows every error "
                               "(including KeyboardInterrupt); narrow the "
                               "type or make the handler observable")
        elif _is_broad(node.type) and self._is_silent(node):
            self.add(node, "broad except handler visibly does nothing; "
                           "narrow the exception type or count/log the "
                           "degrade path")
        self.generic_visit(node)

    @staticmethod
    def _is_silent(node: ast.ExceptHandler) -> bool:
        """Silent = no raise, no call, and the caught exception unused.

        A handler that binds ``as exc`` and then *uses* the name is
        routing the exception somewhere (an outcome value, an error
        field) — that is handling, not swallowing.
        """
        if not body_is_silent(node.body):
            return False
        if node.name is not None:
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Name) and sub.id == node.name:
                        return False
        return True


__all__ = ["MutableDefaultRule", "SilentExceptRule"]
