"""Determinism rules (RPR1xx).

The repository's headline guarantee is *same seed ⇒ byte-identical
results* (trace exports, parallel sweeps merged identically to serial
runs).  Every rule in this family targets a construct that has broken
— or can break — that guarantee.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.base import (
    FileContext,
    Rule,
    dotted_name,
    rule,
    walk_with_parents,
)

#: Functions on the process-global ``random`` module RNG.  Calling any
#: of these couples the simulation to interpreter-wide hidden state.
_RANDOM_GLOBAL_FNS = frozenset({
    "betavariate", "binomialvariate", "choice", "choices", "expovariate",
    "gammavariate", "gauss", "getrandbits", "getstate", "lognormvariate",
    "normalvariate", "paretovariate", "randbytes", "randint", "random",
    "randrange", "sample", "seed", "setstate", "shuffle", "triangular",
    "uniform", "vonmisesvariate", "weibullvariate",
})

#: ``numpy.random`` attributes that construct *independent* generators
#: (fine) as opposed to touching the legacy global RandomState (not).
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


@rule
class GlobalRngRule(Rule):
    """RPR101 — module-level RNG state instead of an injected generator.

    ``random.shuffle(...)`` or ``np.random.normal(...)`` draw from a
    process-global stream: any other component (or an import side
    effect, or a refactor that reorders calls) shifts the sequence and
    silently changes every "seeded" run.  Inject a ``random.Random(seed)``
    or ``numpy.random.default_rng(seed)`` instance instead.
    """

    code = "RPR101"
    name = "global-rng"
    summary = ("call into the process-global random/np.random state; "
               "inject a seeded generator instead")

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            if (len(parts) == 2 and parts[0] == "random"
                    and parts[1] in _RANDOM_GLOBAL_FNS):
                self.add(node, f"call to process-global RNG {name}(); inject "
                               "a seeded random.Random instance instead")
            elif (len(parts) >= 3 and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in _NP_RANDOM_OK):
                self.add(node, f"call to process-global RNG {name}(); inject "
                               "a seeded numpy.random.default_rng instead")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            bad = sorted(a.name for a in node.names
                         if a.name in _RANDOM_GLOBAL_FNS)
            if bad:
                self.add(node, "importing process-global RNG function(s) "
                               f"{', '.join(bad)} from random; inject a "
                               "seeded random.Random instance instead")
        elif node.module in ("numpy.random",):
            bad = sorted(a.name for a in node.names
                         if a.name not in _NP_RANDOM_OK and a.name != "*")
            if bad:
                self.add(node, "importing process-global RNG function(s) "
                               f"{', '.join(bad)} from numpy.random; inject "
                               "a seeded numpy Generator instead")
        self.generic_visit(node)


#: ``time`` module functions that read a host clock.
_TIME_CLOCK_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
})

#: ``(qualifier, attr)`` tails of datetime wall-clock constructors.
_DATETIME_TAILS = (
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
)


@rule
class WallClockRule(Rule):
    """RPR102 — wall-clock read inside simulation sources.

    Simulated time is ``env.now``; host time (``time.time()``,
    ``datetime.now()``, ``perf_counter()``) differs between runs and
    hosts, so any result influenced by it is unreproducible.  Scoped to
    library sources — measurement code (``benchmarks/``) exists to read
    the host clock and is exempt.
    """

    code = "RPR102"
    name = "wall-clock"
    summary = "host clock read in simulation sources; use env.now"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_src and not ctx.in_benchmarks

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            if (len(parts) == 2 and parts[0] == "time"
                    and parts[1] in _TIME_CLOCK_FNS):
                self.add(node, f"wall-clock read {name}(); simulation code "
                               "must use env.now (simulated seconds)")
            elif len(parts) >= 2 and (parts[-2], parts[-1]) in _DATETIME_TAILS:
                self.add(node, f"wall-clock read {name}(); simulation code "
                               "must use env.now (simulated seconds)")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            bad = sorted(a.name for a in node.names if a.name in _TIME_CLOCK_FNS)
            if bad:
                self.add(node, f"importing wall-clock function(s) "
                               f"{', '.join(bad)} from time into simulation "
                               "sources; use env.now")
        self.generic_visit(node)


#: Call names (dotted tails) whose result has no defined order.
_UNORDERED_CALLS = frozenset({"set", "frozenset"})
_UNORDERED_FS_CALLS = frozenset({"listdir", "scandir"})
_UNORDERED_GLOB_CALLS = frozenset({"glob", "iglob", "rglob", "iterdir"})
#: Consumers whose output order follows input order (order escapes).
_ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _unordered_reason(node: ast.expr) -> Optional[str]:
    """Why iterating ``node`` has no deterministic order, or None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return None
        parts = name.split(".")
        tail = parts[-1]
        if tail in _UNORDERED_CALLS and len(parts) == 1:
            return f"{tail}(...) (hash order varies with PYTHONHASHSEED)"
        if tail in _UNORDERED_FS_CALLS:
            return f"{name}(...) (directory order is filesystem-defined)"
        if tail in _UNORDERED_GLOB_CALLS:
            return f"{name}(...) (traversal order is filesystem-defined)"
    return None


@rule
class UnsortedIterRule(Rule):
    """RPR103 — iteration over an unordered collection.

    ``for x in {a, b}``, ``list(set(...))`` or looping over
    ``os.listdir``/``glob`` results lets hash seeds and filesystem
    layout pick the order — the exact bug class
    ``PYTHONHASHSEED=0`` in CI papers over.  Wrap the iterable in
    ``sorted(...)`` to pin the order.
    """

    code = "RPR103"
    name = "unsorted-iteration"
    summary = "iteration over set/listdir/glob results without sorted()"

    def _check_iterable(self, node: ast.expr, context: str) -> None:
        reason = _unordered_reason(node)
        if reason is not None:
            self.add(node, f"{context} over {reason}; wrap in sorted() "
                           "to pin a deterministic order")

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, "iteration")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iterable(node.iter, "iteration")
        self.generic_visit(node)

    def _check_comp(self, node: ast.expr, generators: List[ast.comprehension]) -> None:
        for gen in generators:
            self._check_iterable(gen.iter, "comprehension")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comp(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comp(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comp(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comp(node, node.generators)

    def visit_Call(self, node: ast.Call) -> None:
        if node.args:
            if (isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_WRAPPERS):
                self._check_iterable(node.args[0], f"{node.func.id}(...)")
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"):
                self._check_iterable(node.args[0], "join(...)")
        self.generic_visit(node)


#: Methods whose first argument is a mapping key.
_KEYED_METHODS = frozenset({"get", "setdefault", "pop"})


@rule
class IdKeyRule(Rule):
    """RPR104 — ``id()`` used as a mapping key or sort key.

    ``id(obj)`` is a memory address: it differs between runs, workers
    and platforms, and is recycled the moment the object dies — the
    exact bug behind the PR 3 ``handles[id(req)]`` collision.  Key by a
    stable attribute (sequence number, request id) instead.
    """

    code = "RPR104"
    name = "id-as-key"
    summary = "id() used as a dict key or in a sort key"

    _MSG = ("id() is a recycled memory address and differs across "
            "runs/workers; key by a stable identifier instead")

    def check(self, tree: ast.Module) -> None:
        parents = walk_with_parents(tree)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "id"):
                continue
            child: ast.AST = node
            parent = parents.get(child)
            while parent is not None and not isinstance(parent, ast.stmt):
                if isinstance(parent, ast.Subscript) and child is parent.slice:
                    self.add(node, f"{self._MSG} (subscript key)")
                    break
                if isinstance(parent, ast.Dict) and child in parent.keys:
                    self.add(node, f"{self._MSG} (dict literal key)")
                    break
                if (isinstance(parent, ast.Call)
                        and isinstance(parent.func, ast.Attribute)
                        and parent.func.attr in _KEYED_METHODS
                        and parent.args and child is parent.args[0]):
                    self.add(node, f"{self._MSG} "
                                   f"(.{parent.func.attr}() key)")
                    break
                if isinstance(parent, ast.keyword) and parent.arg == "key":
                    self.add(node, f"{self._MSG} (sort key)")
                    break
                child, parent = parent, parents.get(parent)


__all__ = ["GlobalRngRule", "WallClockRule", "UnsortedIterRule", "IdKeyRule"]
