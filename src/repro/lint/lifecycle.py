"""Event-lifecycle rules (RPR41x): a tiny abstract interpreter.

:class:`repro.sim.events.Event` has a strict lifecycle — pending →
triggered → processed, with ``defuse()`` and ``abandon()`` as terminal
side-tracks.  Violations raise ``SimulationError`` at runtime *if the
racy interleaving happens*; these rules find them statically by
tracking each Event-typed local through an abstract state set:

``P``
    pending (fresh from ``env.event()`` / ``Event(env)``).
``T``
    triggered (after ``succeed``/``fail``/``trigger``, or after being
    yielded on — a completed wait implies the event fired).
``D``
    defused (failure delivery disarmed; completing it again is
    almost always a late-reply bug).
``A``
    abandoned (dead to the scheduler; nothing may touch it again).

Control flow forks the state at branches and unions at the join; loop
bodies are interpreted twice so second-iteration states are observed
(findings dedupe by location).  Tracking is dropped the moment an
event *escapes* — stored on an attribute or container, passed to a
call, returned, aliased — because other code may then advance its
lifecycle; this trades recall for a near-zero false-positive rate.
Narrowing on ``ev.triggered`` tests is understood, matching the
codebase's guard idiom (``if not req.done.triggered: …``).

Scoped to library sources: engine tests trigger twice on purpose.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple, Union

from repro.lint.base import FileContext, Rule, is_env_expr, rule

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

__all__ = [
    "DoubleTriggerRule",
    "CompleteDeadEventRule",
    "CallbackAfterAbandonRule",
]

_COMPLETING = frozenset({"succeed", "fail", "trigger"})

#: Abstract states.
_P, _T, _D, _A = "P", "T", "D", "A"


def _is_event_ctor(value: ast.expr) -> bool:
    """``env.event()`` or ``Event(env)`` (any env-looking receiver/arg)."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if (isinstance(func, ast.Attribute) and func.attr == "event"
            and is_env_expr(func.value)):
        return True
    if isinstance(func, ast.Name) and func.id == "Event":
        return True
    if (isinstance(func, ast.Attribute) and func.attr == "Event"):
        return True
    return False


class _Interp:
    """Interprets one function body over Event-local state sets."""

    def __init__(self, report) -> None:
        self.state: Dict[str, Set[str]] = {}
        self.report = report  # (node, kind, detail) -> None

    # -- statement dispatch ------------------------------------------

    def run(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(node, ast.Assign):
            self.expr(node.value)
            self._assign(node.targets, node.value)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.expr(node.value)
                self._assign([node.target], node.value)
            return
        if isinstance(node, ast.AugAssign):
            self.expr(node.value)
            if isinstance(node.target, ast.Name):
                self.state.pop(node.target.id, None)
            return
        if isinstance(node, ast.If):
            self.expr(node.test)
            then_state = _fork(self.state)
            else_state = _fork(self.state)
            _narrow(then_state, node.test, True)
            _narrow(else_state, node.test, False)
            then_interp = self._branch(then_state)
            then_interp.run(node.body)
            else_interp = self._branch(else_state)
            else_interp.run(node.orelse)
            terminal_then = _terminates(node.body)
            terminal_else = _terminates(node.orelse) if node.orelse else False
            if terminal_then and not terminal_else:
                self.state = else_interp.state
            elif terminal_else and not terminal_then:
                self.state = then_interp.state
            else:
                self.state = _merge(then_interp.state, else_interp.state)
            return
        if isinstance(node, (ast.While,)):
            self.expr(node.test)
            self._loop(node.body)
            self.run(node.orelse)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self.expr(node.iter)
            for name in _target_names(node.target):
                self.state.pop(name, None)
            self._loop(node.body)
            self.run(node.orelse)
            return
        if isinstance(node, ast.Try):
            self.run(node.body)
            pre_handlers = _fork(self.state)
            for handler in node.handlers:
                h = self._branch(_fork(pre_handlers))
                h.run(handler.body)
                self.state = _merge(self.state, h.state)
            self.run(node.orelse)
            self.run(node.finalbody)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self.expr(item.context_expr)
            self.run(node.body)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                self.expr(node.value)
                for name in _names_in(node.value):
                    self.state.pop(name, None)  # escapes to the caller
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.state.pop(target.id, None)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)

    def _branch(self, state: Dict[str, Set[str]]) -> "_Interp":
        sub = _Interp(self.report)
        sub.state = state
        return sub

    def _loop(self, body: List[ast.stmt]) -> None:
        # Two passes, the second seeded from the first's *back-edge*
        # state — so an unconditional ``ev.succeed()`` re-executed on
        # iteration two is seen as already-triggered.  Bodies that
        # unconditionally leave the loop (break/return/raise at the
        # top level) run at most once and get no second pass.
        # Findings dedupe by location in the rule.
        first = self._branch(_fork(self.state))
        first.run(body)
        once_only = any(isinstance(s, (ast.Break, ast.Return, ast.Raise))
                        for s in body)
        joined = first.state
        if not once_only:
            second = self._branch(_fork(first.state))
            second.run(body)
            joined = _merge(first.state, second.state)
        self.state = _merge(self.state, joined)

    def _assign(self, targets: List[ast.expr], value: ast.expr) -> None:
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        non_name = [t for t in targets if not isinstance(t, ast.Name)]
        # ``self.x = ev`` / ``d[k] = ev``: the event escapes.
        if non_name:
            for name in _names_in(value):
                self.state.pop(name, None)
        for name in names:
            if _is_event_ctor(value):
                self.state[name] = {_P}
            elif isinstance(value, ast.Name) and value.id in self.state:
                # Aliasing: two names for one event defeats per-name
                # tracking — drop both.
                self.state.pop(value.id, None)
                self.state.pop(name, None)
            else:
                self.state.pop(name, None)

    # -- expression dispatch -----------------------------------------

    def expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.expr(node.value)
                # ``yield ev`` — the wait completed, so the event fired.
                if (isinstance(node.value, ast.Name)
                        and node.value.id in self.state):
                    self.state[node.value.id] = {_T}
            return
        if isinstance(node, ast.Call):
            self._call(node)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        # Method call on a tracked local?
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.state):
            name = func.value.id
            method = func.attr
            for arg in node.args:
                self.expr(arg)
                self._escape_args([arg], skip=name)
            for kw in node.keywords:
                self.expr(kw.value)
                self._escape_args([kw.value], skip=name)
            states = self.state[name]
            if method in _COMPLETING:
                if states == {_T}:
                    self.report(node, "RPR411",
                                f"{name!r} is already triggered on every "
                                f"path reaching this .{method}() — the "
                                "engine raises SimulationError; guard with "
                                f"'if not {name}.triggered:'")
                elif _A in states:
                    self.report(node, "RPR412",
                                f".{method}() on {name!r} which may be "
                                "abandoned here — completing a dead event "
                                "corrupts the scheduler's lazy-deletion "
                                "bookkeeping")
                elif _D in states:
                    self.report(node, "RPR412",
                                f".{method}() on {name!r} which may be "
                                "defused here — the waiter already gave "
                                "up; completing it now is a late-reply "
                                "race")
                self.state[name] = {_T}
            elif method == "defuse":
                self.state[name] = {_D}
            elif method == "abandon":
                self.state[name] = {_A}
            elif method == "callbacks":
                pass
            else:
                # Unknown method — stop assuming we know the lifecycle.
                self.state.pop(name, None)
            return
        # ``ev.callbacks.append(cb)`` — registration.
        if (isinstance(func, ast.Attribute) and func.attr == "append"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "callbacks"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in self.state):
            name = func.value.value.id
            if _A in self.state[name]:
                self.report(node, "RPR413",
                            f"callback registered on {name!r} which may be "
                            "abandoned here — it will never run; register "
                            "before abandoning (or re-check liveness)")
            for arg in node.args:
                self.expr(arg)
            return
        # Plain call: visit and treat tracked args as escaping.
        if isinstance(func, (ast.Call, ast.Attribute, ast.Subscript)):
            self.expr(func)
        for arg in node.args:
            self.expr(arg)
        for kw in node.keywords:
            self.expr(kw.value)
        self._escape_args(list(node.args)
                          + [kw.value for kw in node.keywords])

    def _escape_args(self, args: List[ast.expr], skip: str = "") -> None:
        for arg in args:
            for name in _names_in(arg):
                if name != skip:
                    self.state.pop(name, None)


def _fork(state: Dict[str, Set[str]]) -> Dict[str, Set[str]]:
    return {k: set(v) for k, v in state.items()}


def _merge(a: Dict[str, Set[str]], b: Dict[str, Set[str]]) -> Dict[str, Set[str]]:
    out: Dict[str, Set[str]] = {}
    for key in set(a) | set(b):
        if key in a and key in b:
            out[key] = a[key] | b[key]
        # A name tracked on only one path is unreliable — drop it.
    return out


def _terminates(body: List[ast.stmt]) -> bool:
    """Does the branch definitely leave the function / loop iteration?"""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


def _narrow(state: Dict[str, Set[str]], test: ast.expr, truthy: bool) -> None:
    """Refine states from ``if [not] ev.triggered:`` guards."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        _narrow(state, test.operand, not truthy)
        return
    if (isinstance(test, ast.Attribute) and test.attr == "triggered"
            and isinstance(test.value, ast.Name)
            and test.value.id in state):
        name = test.value.id
        if truthy:
            # triggered is True for T and for D/A-after-trigger; be
            # conservative and only exclude pure-pending.
            state[name] = state[name] - {_P} or {_T}
        else:
            state[name] = {_P}


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        return [e.id for e in target.elts if isinstance(e, ast.Name)]
    return []


def _names_in(expr: ast.expr) -> List[str]:
    return [n.id for n in ast.walk(expr)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)]


class _LifecycleRuleBase(Rule):
    """Shared driver: interpret every function, keep one code's findings."""

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_src

    def check(self, tree: ast.Module) -> None:
        seen: Set[Tuple[int, int, str]] = set()

        def report(node: ast.AST, code: str, message: str) -> None:
            if code != self.code:
                return
            key = (getattr(node, "lineno", 1),
                   getattr(node, "col_offset", 0), code)
            if key in seen:
                return
            seen.add(key)
            self.add(node, message)

        for func in ast.walk(tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                interp = _Interp(report)
                interp.run(func.body)


@rule
class DoubleTriggerRule(_LifecycleRuleBase):
    """RPR411 — completing an event that is already triggered.

    ``succeed``/``fail``/``trigger`` on a triggered event raises
    ``SimulationError`` at runtime — but only on the interleaving
    where both completers actually fire, so the crash hides until a
    fault sweep lines up (PR 5's late-reply bug).  Flagged only when
    *every* abstract path reaching the call has the event triggered;
    guard with ``if not ev.triggered:`` to narrow the state.
    """

    code = "RPR411"
    name = "double-trigger"
    summary = "succeed/fail/trigger on an event already triggered on every path"


@rule
class CompleteDeadEventRule(_LifecycleRuleBase):
    """RPR412 — completing a possibly-defused or abandoned event.

    ``defuse()`` means the waiter gave up; ``abandon()`` hands the
    event to the scheduler's lazy-deletion sweep.  Completing either
    afterwards is the late-reply race: the value lands on a consumer
    that no longer exists, or corrupts the dead-entry bookkeeping.
    """

    code = "RPR412"
    name = "complete-dead-event"
    summary = "succeed/fail on an event that may be defused or abandoned"


@rule
class CallbackAfterAbandonRule(_LifecycleRuleBase):
    """RPR413 — callback registered on a possibly-abandoned event.

    An abandoned event is skipped by the scheduler, so callbacks
    appended after ``abandon()`` silently never run — the waiter hangs
    forever instead of crashing, the worst failure mode a simulation
    can have.
    """

    code = "RPR413"
    name = "callback-after-abandon"
    summary = "callbacks.append on an event that may be abandoned"
