"""Text and JSON reporters for lint findings."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.base import REGISTRY, Finding, all_rules

__all__ = ["format_text", "format_json", "format_rule_catalogue"]


def format_text(findings: List[Finding], checked_files: int = 0) -> str:
    """Human-readable report: one ``path:line:col: CODE msg`` per line."""
    lines = [f.format() for f in findings]
    by_code: Dict[str, int] = {}
    for f in findings:
        by_code[f.code] = by_code.get(f.code, 0) + 1
    if findings:
        summary = ", ".join(f"{code} x{n}" for code, n in sorted(by_code.items()))
        lines.append(f"{len(findings)} finding(s) in {checked_files} "
                     f"file(s): {summary}")
    else:
        lines.append(f"0 findings in {checked_files} file(s)")
    return "\n".join(lines)


def format_json(
    findings: List[Finding],
    checked_files: int = 0,
    baseline_suppressed: int = 0,
) -> str:
    """Machine-readable report (stable key order, one document)."""
    doc = {
        "version": 1,
        "checked_files": checked_files,
        "baseline_suppressed": baseline_suppressed,
        "counts": _counts_by_code(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def _counts_by_code(findings: List[Finding]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for f in findings:
        out[f.code] = out.get(f.code, 0) + 1
    return out


def format_rule_catalogue() -> str:
    """The ``--list-rules`` table."""
    width = max(len(r.name) for r in REGISTRY.values())
    lines = []
    for rule_cls in all_rules():
        lines.append(f"{rule_cls.code}  {rule_cls.name:<{width}}  "
                     f"{rule_cls.summary}")
    return "\n".join(lines)
