"""Text, JSON and SARIF reporters for lint findings."""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.lint.base import Finding, all_rules

__all__ = [
    "format_text",
    "format_json",
    "format_sarif",
    "format_rule_catalogue",
]


def format_text(findings: List[Finding], checked_files: int = 0) -> str:
    """Human-readable report: one ``path:line:col: CODE msg`` per line."""
    lines = [f.format() for f in findings]
    by_code: Dict[str, int] = {}
    for f in findings:
        by_code[f.code] = by_code.get(f.code, 0) + 1
    if findings:
        summary = ", ".join(f"{code} x{n}" for code, n in sorted(by_code.items()))
        lines.append(f"{len(findings)} finding(s) in {checked_files} "
                     f"file(s): {summary}")
    else:
        lines.append(f"0 findings in {checked_files} file(s)")
    return "\n".join(lines)


def format_json(
    findings: List[Finding],
    checked_files: int = 0,
    baseline_suppressed: int = 0,
) -> str:
    """Machine-readable report (stable key order, one document)."""
    doc = {
        "version": 1,
        "checked_files": checked_files,
        "baseline_suppressed": baseline_suppressed,
        "counts": _counts_by_code(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def _counts_by_code(findings: List[Finding]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for f in findings:
        out[f.code] = out.get(f.code, 0) + 1
    return out


def _rule_metadata() -> List[Tuple[str, str, str]]:
    """``(code, name, summary)`` for every rule incl. driver pseudo-rules."""
    from repro.lint.analyzer import META_RULES
    rows = [(r.code, r.name, r.summary) for r in all_rules()]
    rows.extend((code, name, summary)
                for code, (name, summary) in META_RULES.items())
    return sorted(rows)


def format_sarif(findings: List[Finding], checked_files: int = 0) -> str:
    """SARIF 2.1.0 document, the format GitHub code scanning ingests.

    Paths are emitted as given (repo-relative when lint is run from the
    repo root, which is how CI invokes it) so annotations land on the
    right lines of the PR diff.
    """
    rules = [
        {
            "id": code,
            "name": name,
            "shortDescription": {"text": summary},
            "helpUri": "https://example.invalid/docs/static_analysis.md",
            "defaultConfiguration": {"level": "error"},
        }
        for code, name, summary in _rule_metadata()
    ]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = []
    for f in findings:
        result = {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": f.line,
                        "startColumn": f.col,
                    },
                },
            }],
        }
        if f.code in rule_index:
            result["ruleIndex"] = rule_index[f.code]
        results.append(result)
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri": ("https://example.invalid/docs/"
                                       "static_analysis.md"),
                    "rules": rules,
                },
            },
            "results": results,
            "properties": {"checked_files": checked_files},
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def format_rule_catalogue() -> str:
    """The ``--list-rules`` table (registered + driver pseudo-rules)."""
    rows = _rule_metadata()
    width = max(len(name) for _, name, _ in rows)
    return "\n".join(f"{code}  {name:<{width}}  {summary}"
                     for code, name, summary in rows)
