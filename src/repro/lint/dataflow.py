"""Cross-yield dataflow rules (RPR4xx, concurrency family).

A ``yield`` inside a sim process generator is a *scheduling point*:
the event loop runs arbitrary other processes before resuming, so any
shared mutable state — ``self`` attributes the class rebinds or
mutates elsewhere, module globals, the simulation clock — may change
across it.  The per-function RPR1xx–3xx rules cannot see this; these
rules segment each generator at its yield points and track what flows
across.

The pass leans on the :mod:`repro.lint.project` model for volatility
facts (which attributes a class actually rebinds/mutates outside its
constructor) so stable caches (``tracer = self.env.tracer``-style
reads of never-reassigned fields) stay quiet.

Scoped to library sources: tests deliberately construct these races
to pin engine semantics.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.lint.base import (
    FileContext,
    Rule,
    is_env_expr,
    rule,
)
from repro.lint.project import (
    ClassSummary,
    ProjectModel,
    interrupt_guard_status,
    unguarded_interrupt_sites,
)
from repro.lint.simulation import _sim_process_generators

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

__all__ = [
    "StaleSharedReadRule",
    "StaleNowRule",
    "UnguardedInterruptRule",
    "MutateWhileIterRule",
]


# -- ordered, yield-counting traversal ------------------------------------

class _Cache:
    """One local caching shared state, created at yield-segment ``seg``."""

    __slots__ = ("kind", "attr", "seg", "node", "describe")

    def __init__(self, kind: str, attr: str, seg: int, node: ast.AST,
                 describe: str) -> None:
        self.kind = kind          # "ref" | "value" | "now"
        self.attr = attr
        self.seg = seg
        self.node = node
        self.describe = describe


class _SegmentWalker:
    """Walks one generator in (approximate) execution order.

    Statements are visited in source order, branches sequentially —
    a deliberate linearisation: it keeps the pass O(n) and errs toward
    silence (a yield in a sibling branch advances the segment counter,
    which can only *hide* a stale read, never invent one on the
    straight-line path).
    """

    def __init__(self, on_yield=None, on_name=None, on_call=None,
                 on_assign=None) -> None:
        self.seg = 0
        self._on_yield = on_yield
        self._on_name = on_name
        self._on_call = on_call
        self._on_assign = on_assign

    def walk_function(self, func: FunctionNode) -> None:
        for stmt in func.body:
            self._stmt(stmt)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(node, ast.Assign):
            self._expr(node.value)
            if self._on_assign is not None:
                self._on_assign(node)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._expr(node.value)
                if self._on_assign is not None:
                    self._on_assign(node)
            return
        if isinstance(node, ast.AugAssign):
            self._expr(node.value)
            self._expr(node.target)
            if self._on_assign is not None:
                self._on_assign(node)
            return
        if isinstance(node, (ast.If, ast.While)):
            self._expr(node.test)
            for s in node.body:
                self._stmt(s)
            for s in node.orelse:
                self._stmt(s)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._expr(node.iter)
            if self._on_assign is not None:
                self._on_assign(node)
            for s in node.body:
                self._stmt(s)
            for s in node.orelse:
                self._stmt(s)
            return
        if isinstance(node, ast.Try):
            for s in node.body:
                self._stmt(s)
            for handler in node.handlers:
                for s in handler.body:
                    self._stmt(s)
            for s in node.orelse:
                self._stmt(s)
            for s in node.finalbody:
                self._stmt(s)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._expr(item.context_expr)
            for s in node.body:
                self._stmt(s)
            return
        # Expression statements, return, raise, assert, delete, …
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)

    def _expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._expr(node.value)
            self.seg += 1
            if self._on_yield is not None:
                self._on_yield(node)
            return
        if isinstance(node, ast.Call):
            self._expr(node.func)
            for arg in node.args:
                self._expr(arg)
            for kw in node.keywords:
                self._expr(kw.value)
            if self._on_call is not None:
                self._on_call(node)
            return
        if isinstance(node, ast.Name):
            if self._on_name is not None:
                self._on_name(node)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)


def _class_of_method(
    tree: ast.Module, func: FunctionNode
) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and func in node.body:
            return node
    return None


def _self_name(func: FunctionNode) -> Optional[str]:
    args = func.args.posonlyargs + func.args.args
    return args[0].arg if args else None


def _project_of(ctx: FileContext) -> Optional[ProjectModel]:
    project = ctx.project
    return project if isinstance(project, ProjectModel) else None


def _class_summary(ctx: FileContext, cls: ast.ClassDef) -> Optional[ClassSummary]:
    project = _project_of(ctx)
    if project is None:
        return None
    return project.class_in_module(ctx.module, cls.name)


def _assigned_names(node: ast.stmt) -> List[Tuple[str, Optional[ast.expr]]]:
    """``(name, value-or-None)`` pairs bound by an assignment-ish stmt."""
    out: List[Tuple[str, Optional[ast.expr]]] = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                out.append((target.id, node.value))
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        out.append((elt.id, None))
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        out.append((node.target.id, node.value))
    elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
        out.append((node.target.id, None))
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        target = node.target
        if isinstance(target, ast.Name):
            out.append((target.id, None))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    out.append((elt.id, None))
    return out


def _self_attr_of(expr: ast.expr, self_name: Optional[str]) -> Optional[str]:
    """``self.X`` → ``"X"`` (only the plain one-level attribute)."""
    if (self_name is not None
            and isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == self_name):
        return expr.attr
    return None


def _is_now_read(expr: ast.expr) -> bool:
    return (isinstance(expr, ast.Attribute) and expr.attr == "now"
            and is_env_expr(expr.value))


def _contains_now_read(expr: ast.expr) -> bool:
    return any(_is_now_read(sub) for sub in ast.walk(expr))


@rule
class StaleSharedReadRule(Rule):
    """RPR401 — shared state cached in a local and reused across a yield.

    ``policy = self.policy`` followed by a ``yield`` and a later use
    of ``policy`` races with every process that can rebind
    ``self.policy`` during the wait (a policy refresh, a fault sweep):
    the continuation acts on a snapshot the rest of the simulation no
    longer agrees with — the exact shape of the late-reply and
    double-demotion bugs.  Re-read the attribute after the yield, or
    prove it stable (the rule keys on the class actually rebinding /
    mutating the attribute outside ``__init__``).
    """

    code = "RPR401"
    name = "stale-shared-read"
    summary = "local caches self/module state before a yield and reuses it after"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_src

    def check(self, tree: ast.Module) -> None:
        project = _project_of(self.ctx)
        module = (project.modules.get(self.ctx.module)
                  if project is not None and self.ctx.module else None)
        rebound_globals = module.rebound_globals if module is not None else set()
        for func in _sim_process_generators(tree):
            cls = _class_of_method(tree, func)
            summary = _class_summary(self.ctx, cls) if cls is not None else None
            self._check_function(func, summary, rebound_globals)

    def _check_function(
        self,
        func: FunctionNode,
        summary: Optional[ClassSummary],
        rebound_globals: Set[str],
    ) -> None:
        self_name = _self_name(func) if summary is not None else None
        caches: Dict[str, _Cache] = {}
        reported: Set[Tuple[str, int]] = set()
        walker = _SegmentWalker()

        def classify(value: ast.expr, seg: int) -> Optional[_Cache]:
            # ``x = self.attr`` where attr is rebound elsewhere.
            attr = _self_attr_of(value, self_name)
            if attr is not None and summary is not None:
                if attr in summary.volatile_ref_attrs():
                    return _Cache("ref", attr, seg, value,
                                  f"self.{attr} (rebound outside __init__)")
                return None
            # ``x = len(self.attr)`` / ``x = bool(self.attr)``.
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("len", "bool")
                    and len(value.args) == 1):
                attr = _self_attr_of(value.args[0], self_name)
                if (attr is not None and summary is not None
                        and attr in summary.volatile_content_attrs()):
                    return _Cache(
                        "value", attr, seg, value,
                        f"{value.func.id}(self.{attr}) (container mutated "
                        "elsewhere)")
            # ``x = self.attr[k]``.
            if isinstance(value, ast.Subscript):
                attr = _self_attr_of(value.value, self_name)
                if (attr is not None and summary is not None
                        and attr in summary.volatile_content_attrs()):
                    return _Cache("value", attr, seg, value,
                                  f"self.{attr}[...] (container mutated "
                                  "elsewhere)")
            # ``x = MODULE_GLOBAL`` rebound via ``global`` in functions.
            if (isinstance(value, ast.Name)
                    and value.id in rebound_globals):
                return _Cache("ref", value.id, seg, value,
                              f"module global {value.id!r} (rebound at "
                              "runtime)")
            return None

        def on_assign(stmt: ast.stmt) -> None:
            for name, value in _assigned_names(stmt):
                caches.pop(name, None)
                if value is not None:
                    cache = classify(value, walker.seg)
                    if cache is not None:
                        caches[name] = cache

        def on_name(node: ast.Name) -> None:
            if not isinstance(node.ctx, ast.Load):
                caches.pop(node.id, None)
                return
            cache = caches.get(node.id)
            if cache is None or cache.seg >= walker.seg:
                return
            key = (node.id, cache.seg)
            if key in reported:
                return
            reported.add(key)
            self.add(node, f"{node.id!r} caches {cache.describe} from "
                           "before a yield; the value may be stale — "
                           "re-read the shared state after resuming")
            caches.pop(node.id, None)

        walker._on_assign = on_assign
        walker._on_name = on_name
        walker.walk_function(func)


#: Call-name tails that schedule future work from a time argument.
_SCHED_TAILS = frozenset({"timeout", "Timeout", "Timer", "schedule"})


@rule
class StaleNowRule(Rule):
    """RPR402 — ``env.now`` captured before a yield, scheduled with after.

    ``env.now`` advances across every yield.  Arithmetic like
    ``yield env.timeout(deadline - t0)`` where ``t0`` was read before
    an earlier yield schedules against a clock that no longer exists —
    delays silently stretch by however long the previous wait took.
    Re-read ``env.now`` after resuming (expressions that *mix in* a
    fresh ``env.now`` read, like elapsed-time deltas, are exempt).
    """

    code = "RPR402"
    name = "stale-now"
    summary = "pre-yield env.now capture used in post-yield scheduling arithmetic"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_src

    def check(self, tree: ast.Module) -> None:
        for func in _sim_process_generators(tree):
            self._check_function(func)

    def _check_function(self, func: FunctionNode) -> None:
        caches: Dict[str, int] = {}
        reported: Set[Tuple[str, int]] = set()
        walker = _SegmentWalker()

        def on_assign(stmt: ast.stmt) -> None:
            for name, value in _assigned_names(stmt):
                caches.pop(name, None)
                if value is not None and _is_now_read(value):
                    caches[name] = walker.seg

        def on_call(node: ast.Call) -> None:
            func_expr = node.func
            tail = (func_expr.attr if isinstance(func_expr, ast.Attribute)
                    else func_expr.id if isinstance(func_expr, ast.Name)
                    else None)
            if tail not in _SCHED_TAILS:
                return
            args = list(node.args) + [kw.value for kw in node.keywords]
            fresh = any(_contains_now_read(a) for a in args)
            if fresh:
                return
            for arg in args:
                for sub in ast.walk(arg):
                    if (isinstance(sub, ast.Name)
                            and isinstance(sub.ctx, ast.Load)
                            and sub.id in caches
                            and caches[sub.id] < walker.seg):
                        key = (sub.id, caches[sub.id])
                        if key in reported:
                            continue
                        reported.add(key)
                        self.add(node, f"{sub.id!r} holds env.now from "
                                       "before a yield but feeds "
                                       f"{tail}(...) after it; the clock "
                                       "has moved — re-read env.now after "
                                       "resuming")

        walker._on_assign = on_assign
        walker._on_call = on_call
        walker.walk_function(func)


@rule
class UnguardedInterruptRule(Rule):
    """RPR403 — ``.interrupt()`` without the one-interrupt-ever guard.

    Interrupt delivery is asynchronous: a second interrupter acting at
    the same instant (a degrade sweep racing a policy refresh, say)
    throws into a generator that already unwound and corrupts the
    process event — the PR 6 executor crash.  Every interrupt site
    must be guarded: test ``process.is_alive`` (and ideally a
    once-flag set before interrupting) on the enclosing ``if``, or
    route through a guarded wrapper such as ``_RunningKernel.preempt``.
    Calls to wrapper methods are accepted when every project class
    defining that method guards internally (name-based resolution via
    the project call graph).
    """

    code = "RPR403"
    name = "unguarded-interrupt"
    summary = ".interrupt()/.preempt() on a process handle without a liveness/once guard"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_src

    def check(self, tree: ast.Module) -> None:
        project = _project_of(self.ctx)
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "interrupt":
                # The engine primitive itself (Process.interrupt) and
                # forwarding shims named after it define the contract;
                # they cannot guard on themselves.
                continue
            sites = unguarded_interrupt_sites(node)
            if sites:
                for call in sites:
                    self.add(call, "unguarded .interrupt() — guard with "
                                   "process.is_alive plus a one-interrupt-"
                                   "ever flag (or use a guarded wrapper); "
                                   "a second interrupt at the same instant "
                                   "throws into a finished generator")
            self._check_wrapper_calls(node, project)

    def _check_wrapper_calls(
        self, func: FunctionNode, project: Optional[ProjectModel]
    ) -> None:
        """Flag calls to project wrappers that interrupt unguarded."""
        if project is None:
            return
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "preempt"):
                continue
            candidates = project.methods_by_name.get("preempt", [])
            statuses = {interrupt_guard_status(m) for _, m in candidates}
            if statuses and statuses <= {"unguarded"}:
                owners = sorted(c.name for c, _ in candidates)
                self.add(node, ".preempt() resolves to unguarded "
                               f"interrupt wrapper(s) in {', '.join(owners)};"
                               " add the one-interrupt-ever guard inside "
                               "the wrapper")


@rule
class MutateWhileIterRule(Rule):
    """RPR404 — container mutated while a sibling segment iterates it.

    ``for r in self.pending: self.pending.remove(r)`` skips elements
    (the iterator index shifts under the loop), and a loop that yields
    mid-iteration hands the container to every other process — a
    demotion sweep running during the wait invalidates the iterator.
    Iterate a snapshot (``list(self.pending)``) or restructure to a
    find-then-act pattern.
    """

    code = "RPR404"
    name = "mutate-while-iter"
    summary = "shared container mutated during direct iteration (or iterated across a yield)"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_src

    def check(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            cls = _class_of_method(tree, node)
            summary = _class_summary(self.ctx, cls) if cls is not None else None
            self_name = _self_name(node)
            if self_name is None:
                continue
            for loop in ast.walk(node):
                if not isinstance(loop, (ast.For, ast.AsyncFor)):
                    continue
                attr = _self_attr_of(loop.iter, self_name)
                if attr is None:
                    continue  # wrapped (list()/sorted()) or not self.X
                self._check_loop(loop, attr, self_name, summary)

    def _check_loop(
        self,
        loop: Union[ast.For, ast.AsyncFor],
        attr: str,
        self_name: str,
        summary: Optional[ClassSummary],
    ) -> None:
        flagged = False
        for sub in ast.walk(loop):
            if sub is loop.iter:
                continue
            mutated = self._mutates_attr(sub, attr, self_name)
            if mutated:
                self.add(sub, f"self.{attr} is mutated while the "
                              "enclosing for-loop iterates it directly; "
                              f"iterate a snapshot (list(self.{attr})) "
                              "or find-then-act")
                flagged = True
        if flagged:
            return
        has_yield = any(isinstance(s, (ast.Yield, ast.YieldFrom))
                        for s in ast.walk(loop))
        if (has_yield and summary is not None
                and attr in summary.volatile_content_attrs()):
            self.add(loop, f"loop iterates self.{attr} directly across a "
                           "yield; other processes mutate it during the "
                           f"wait — iterate a snapshot (list(self.{attr}))")

    @staticmethod
    def _mutates_attr(node: ast.AST, attr: str, self_name: str) -> bool:
        from repro.lint.project import MUTATING_METHODS
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                    and _self_attr_of(func.value, self_name) == attr):
                return True
        elif isinstance(node, (ast.Assign,)):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and _self_attr_of(target.value, self_name) == attr):
                    return True
                if _self_attr_of(target, self_name) == attr:
                    return True
        elif isinstance(node, ast.AugAssign):
            if _self_attr_of(node.target, self_name) == attr:
                return True
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and _self_attr_of(target.value, self_name) == attr):
                    return True
        return False
