"""File discovery, suppression handling and the lint driver.

``lint_paths`` walks the given files/directories in sorted order
(the analyzer practices what it preaches), parses every ``.py`` file
**once**, builds the :class:`repro.lint.project.ProjectModel` over all
parsed trees, then runs every applicable rule per file with the model
attached to the :class:`FileContext` — so cross-file rules (layering,
cycles, wrapper resolution) see the whole run, not one file.

Findings are filtered through inline suppressions:

.. code-block:: python

    t = perf_counter()   # reprolint: disable=RPR102  host measurement
    # reprolint: disable-next-line=RPR103
    for name in os.listdir(d):
        ...

A suppression names the exact codes it silences — there is no blanket
``disable=all`` on purpose: every suppression is a reviewed, visible
exception.  Two meta checks keep them honest: a directive that no
longer matches any finding is itself reported (:data:`RPR902
<UNUSED_SUPPRESSION_CODE>`), and the baseline ratchet counts used
suppressions per rule so they cannot silently grow (:data:`RPR901
<SUPPRESSION_GROWTH_CODE>`, synthesised by the CLI).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.lint.base import REGISTRY, FileContext, Finding, Rule, all_rules
from repro.lint.project import ProjectModel

# Importing the rule modules populates the registry.  Direct submodule
# imports (not ``from repro.lint import ...``) keep the analyzer off
# the package ``__init__`` and so out of an import cycle with it.
import repro.lint.dataflow  # noqa: F401
import repro.lint.determinism  # noqa: F401
import repro.lint.hygiene  # noqa: F401
import repro.lint.layers  # noqa: F401
import repro.lint.lifecycle  # noqa: F401
import repro.lint.simulation  # noqa: F401

__all__ = [
    "lint_source",
    "lint_file",
    "lint_paths",
    "context_for_path",
    "suppressed_lines",
    "LintStats",
    "PARSE_ERROR_CODE",
    "SUPPRESSION_GROWTH_CODE",
    "UNUSED_SUPPRESSION_CODE",
    "META_RULES",
    "known_codes",
]

#: Pseudo-rule code for files the analyzer cannot parse.
PARSE_ERROR_CODE = "RPR900"
#: Pseudo-rule code for per-rule suppression counts exceeding the
#: baseline (synthesised by the CLI ratchet, never by a file rule).
SUPPRESSION_GROWTH_CODE = "RPR901"
#: Pseudo-rule code for a ``reprolint: disable=`` directive that no
#: longer silences anything.
UNUSED_SUPPRESSION_CODE = "RPR902"

#: code → (name, summary) for driver-level pseudo-rules; merged with
#: the registry for ``--list-rules``, SARIF metadata and baseline
#: validation.
META_RULES: Dict[str, Tuple[str, str]] = {
    PARSE_ERROR_CODE: (
        "parse-error", "file cannot be tokenized/parsed"),
    SUPPRESSION_GROWTH_CODE: (
        "suppression-growth",
        "inline suppressions for a rule exceed the baselined count"),
    UNUSED_SUPPRESSION_CODE: (
        "unused-suppression",
        "reprolint: disable directive that silences no finding"),
}


def known_codes() -> Set[str]:
    """Every valid RPR code: registered rules plus driver pseudo-rules."""
    return set(REGISTRY) | set(META_RULES)


_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-next-line)\s*=\s*"
    r"(RPR\d{3}(?:\s*,\s*RPR\d{3})*)"
)

#: Directory names never descended into.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hg", ".venv", "venv", "node_modules",
    ".mypy_cache", ".pytest_cache", ".ruff_cache", "build", "dist",
})

#: Directory names excluded from *discovery* (but lintable when named
#: explicitly): lint-rule fixtures deliberately contain violations.
_EXEMPT_DIRS = frozenset({"fixtures"})


@dataclass
class LintStats:
    """Per-run aggregates threaded through the driver by the CLI.

    ``suppressions`` counts findings silenced by inline directives,
    per rule code — the input of the RPR901 suppression ratchet.
    """

    suppressions: Dict[str, int] = field(default_factory=dict)

    def count_suppression(self, code: str, n: int = 1) -> None:
        self.suppressions[code] = self.suppressions.get(code, 0) + n


def suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number → set of RPR codes suppressed on that line."""
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _DIRECTIVE.search(tok.string)
            if m is None:
                continue
            kind, codes = m.group(1), m.group(2)
            line = tok.start[0] + (1 if kind == "disable-next-line" else 0)
            out.setdefault(line, set()).update(
                c.strip() for c in codes.split(","))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The parse-error finding covers unreadable files.
        return out
    return out


def context_for_path(path: str, source: str = "") -> FileContext:
    """Auto-detect path scoping (``src`` vs ``benchmarks`` vs tests)."""
    parts = os.path.normpath(path).replace(os.sep, "/").split("/")
    in_benchmarks = "benchmarks" in parts
    in_src = "src" in parts and not in_benchmarks
    return FileContext(path=path, source=source,
                       in_src=in_src, in_benchmarks=in_benchmarks)


def _selected_rules(select: Optional[Iterable[str]]) -> List[Type[Rule]]:
    if select is None:
        return all_rules()
    wanted = set(select)
    unknown = wanted - set(REGISTRY)
    if unknown:
        raise ValueError(f"unknown rule code(s): {sorted(unknown)}; "
                         f"known: {sorted(REGISTRY)}")
    return [REGISTRY[code] for code in sorted(wanted)]


def _run_rules(
    tree: ast.Module,
    source: str,
    path: str,
    ctx: FileContext,
    select: Optional[Iterable[str]],
    stats: Optional[LintStats] = None,
) -> List[Finding]:
    """Run selected rules over one parsed file and filter suppressions.

    The unused-suppression check (RPR902) only runs on full-registry
    runs: under ``--select`` most rules are off, so directives for the
    unselected rules would look spuriously unused.
    """
    for rule_cls in _selected_rules(select):
        if rule_cls.applies(ctx):
            rule_cls(ctx).check(tree)
    suppressions = suppressed_lines(source)
    kept: List[Finding] = []
    used_pairs: Set[Tuple[int, str]] = set()
    for f in ctx.findings:
        if f.code in suppressions.get(f.line, ()):
            used_pairs.add((f.line, f.code))
            if stats is not None:
                stats.count_suppression(f.code)
        else:
            kept.append(f)
    if select is None:
        for line in sorted(suppressions):
            for code in sorted(suppressions[line]):
                if code == UNUSED_SUPPRESSION_CODE:
                    continue
                if (line, code) not in used_pairs:
                    kept.append(Finding(
                        path=path, line=line, col=1,
                        code=UNUSED_SUPPRESSION_CODE,
                        message=(f"suppression for {code} silences no "
                                 "finding on this line — stale directive, "
                                 "remove it"),
                    ))
    return sorted(kept)


def lint_source(
    source: str,
    path: str = "<string>",
    ctx: Optional[FileContext] = None,
    select: Optional[Iterable[str]] = None,
    stats: Optional[LintStats] = None,
) -> List[Finding]:
    """Lint one source string; returns findings sorted by location.

    Builds a one-file project model, so class-volatility facts work
    standalone; cross-module facts (layering targets, cycles) need the
    full :func:`lint_paths` run.
    """
    if ctx is None:
        ctx = context_for_path(path, source)
    else:
        ctx.source = source
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 0) or 1,
                        code=PARSE_ERROR_CODE,
                        message=f"cannot parse file: {exc.msg}")]
    if ctx.project is None:
        model = ProjectModel.from_tree(path, tree)
        ctx.project = model
        ctx.module = model.module_for_path(path)
    return _run_rules(tree, source, path, ctx, select, stats)


def lint_file(
    path: str,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one file on disk (standalone, one-file project model)."""
    source = _read_file(path)
    if isinstance(source, Finding):
        return [source]
    return lint_source(source, path=path,
                       ctx=context_for_path(path, source), select=select)


def _read_file(path: str) -> object:
    """File contents, or the RPR900 finding explaining why not."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(path=path, line=1, col=1, code=PARSE_ERROR_CODE,
                       message=f"cannot read file: {exc}")


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directories named ``fixtures`` are skipped — lint-rule fixtures
    exist *to* violate rules — but remain lintable when a fixture file
    is named explicitly (the rule tests do exactly that).
    """
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                # Sorted in-place so traversal order is deterministic.
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in _SKIP_DIRS
                                     and d not in _EXEMPT_DIRS
                                     and not d.startswith("."))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        else:
            out.append(path)
    return sorted(dict.fromkeys(out))


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    stats: Optional[LintStats] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; sorted findings.

    Two-phase: parse everything, build the project model, then run
    rules file by file with the shared model on the context.
    """
    findings: List[Finding] = []
    sources: Dict[str, str] = {}
    trees: Dict[str, ast.Module] = {}
    for path in discover_files(paths):
        source = _read_file(path)
        if isinstance(source, Finding):
            findings.append(source)
            continue
        try:
            trees[path] = ast.parse(source, filename=path)
            sources[path] = source
        except SyntaxError as exc:
            findings.append(Finding(
                path=path, line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                code=PARSE_ERROR_CODE,
                message=f"cannot parse file: {exc.msg}"))
    model = ProjectModel.build(trees)
    for path in sorted(trees):
        ctx = context_for_path(path, sources[path])
        ctx.project = model
        ctx.module = model.module_for_path(path)
        findings.extend(_run_rules(trees[path], sources[path], path,
                                   ctx, select, stats))
    return sorted(findings)
