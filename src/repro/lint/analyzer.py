"""File discovery, suppression handling and the lint driver.

``lint_paths`` walks the given files/directories in sorted order
(the analyzer practices what it preaches), parses each ``.py`` file
once, runs every applicable rule, and filters findings through inline
suppressions:

.. code-block:: python

    t = perf_counter()   # reprolint: disable=RPR102  host measurement
    # reprolint: disable-next-line=RPR103
    for name in os.listdir(d):
        ...

A suppression names the exact codes it silences — there is no blanket
``disable=all`` on purpose: every suppression is a reviewed, visible
exception.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

from repro.lint.base import REGISTRY, FileContext, Finding, Rule, all_rules

# Importing the rule modules populates the registry.
from repro.lint import determinism as _determinism  # noqa: F401
from repro.lint import hygiene as _hygiene  # noqa: F401
from repro.lint import simulation as _simulation  # noqa: F401

__all__ = [
    "lint_source",
    "lint_file",
    "lint_paths",
    "context_for_path",
    "suppressed_lines",
    "PARSE_ERROR_CODE",
]

#: Pseudo-rule code for files the analyzer cannot parse.
PARSE_ERROR_CODE = "RPR900"

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-next-line)\s*=\s*"
    r"(RPR\d{3}(?:\s*,\s*RPR\d{3})*)"
)

#: Directory names never descended into.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hg", ".venv", "venv", "node_modules",
    ".mypy_cache", ".pytest_cache", ".ruff_cache", "build", "dist",
})


def suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number → set of RPR codes suppressed on that line."""
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _DIRECTIVE.search(tok.string)
            if m is None:
                continue
            kind, codes = m.group(1), m.group(2)
            line = tok.start[0] + (1 if kind == "disable-next-line" else 0)
            out.setdefault(line, set()).update(
                c.strip() for c in codes.split(","))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The parse-error finding covers unreadable files.
        return out
    return out


def context_for_path(path: str, source: str = "") -> FileContext:
    """Auto-detect path scoping (``src`` vs ``benchmarks`` vs tests)."""
    parts = os.path.normpath(path).replace(os.sep, "/").split("/")
    in_benchmarks = "benchmarks" in parts
    in_src = "src" in parts and not in_benchmarks
    return FileContext(path=path, source=source,
                       in_src=in_src, in_benchmarks=in_benchmarks)


def _selected_rules(select: Optional[Iterable[str]]) -> List[Type[Rule]]:
    if select is None:
        return all_rules()
    wanted = set(select)
    unknown = wanted - set(REGISTRY)
    if unknown:
        raise ValueError(f"unknown rule code(s): {sorted(unknown)}; "
                         f"known: {sorted(REGISTRY)}")
    return [REGISTRY[code] for code in sorted(wanted)]


def lint_source(
    source: str,
    path: str = "<string>",
    ctx: Optional[FileContext] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source string; returns findings sorted by location."""
    if ctx is None:
        ctx = context_for_path(path, source)
    else:
        ctx.source = source
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 0) or 1,
                        code=PARSE_ERROR_CODE,
                        message=f"cannot parse file: {exc.msg}")]
    for rule_cls in _selected_rules(select):
        if rule_cls.applies(ctx):
            rule_cls(ctx).check(tree)
    suppressions = suppressed_lines(source)
    findings = [
        f for f in ctx.findings
        if f.code not in suppressions.get(f.line, ())
    ]
    return sorted(findings)


def lint_file(
    path: str,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one file on disk."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(path=path, line=1, col=1, code=PARSE_ERROR_CODE,
                        message=f"cannot read file: {exc}")]
    return lint_source(source, path=path,
                       ctx=context_for_path(path, source), select=select)


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                # Sorted in-place so traversal order is deterministic.
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in _SKIP_DIRS
                                     and not d.startswith("."))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        else:
            out.append(path)
    return sorted(dict.fromkeys(out))


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; sorted findings."""
    findings: List[Finding] = []
    for path in discover_files(paths):
        findings.extend(lint_file(path, select=select))
    return sorted(findings)
