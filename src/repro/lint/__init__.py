"""``repro.lint`` — AST static analysis for determinism & sim correctness.

The repository guarantees *same seed ⇒ byte-identical results*.  This
package enforces the invariants behind that guarantee at review time
instead of discovering violations in flaky figure diffs:

- **RPR1xx determinism** — process-global RNG state, wall-clock reads,
  unordered iteration, ``id()`` keys.
- **RPR2xx simulation correctness** — events constructed but never
  yielded, host-blocking calls in process generators, ``env.now`` at
  import time.
- **RPR3xx hygiene** — mutable default arguments, silent broad excepts.
- **RPR4xx concurrency** — flow-aware passes over process generators:
  state cached across a yield (401/402), unguarded interrupts (403),
  containers mutated under iteration (404), and an event-lifecycle
  state machine (411–413).
- **RPR5xx architecture** — upward imports against the layering table
  in :mod:`repro.lint.layers` (501) and module import cycles (502).
- **RPR9xx driver** — parse errors (900), suppression-ratchet growth
  (901), stale suppressions (902).

The flow rules run over a once-per-invocation
:class:`~repro.lint.project.ProjectModel` (import graph, class
attribute-volatility summaries, a conservative call graph), so they
see across files, not just across statements.

Run it as ``repro lint [paths] [--format json|sarif] [--baseline
FILE]``; suppress a reviewed exception inline with
``# reprolint: disable=RPRxxx``.  See :doc:`docs/static_analysis.md`
for the full catalogue and policy.
"""

from repro.lint.analyzer import (
    META_RULES,
    PARSE_ERROR_CODE,
    SUPPRESSION_GROWTH_CODE,
    UNUSED_SUPPRESSION_CODE,
    LintStats,
    context_for_path,
    discover_files,
    known_codes,
    lint_file,
    lint_paths,
    lint_source,
    suppressed_lines,
)
from repro.lint.base import REGISTRY, FileContext, Finding, Rule, all_rules
from repro.lint.baseline import (
    Baseline,
    apply_baseline,
    counts,
    load_baseline,
    write_baseline,
)
from repro.lint.layers import LAYERS, layer_of
from repro.lint.project import ProjectModel, module_name_for_path
from repro.lint.report import (
    format_json,
    format_rule_catalogue,
    format_sarif,
    format_text,
)

__all__ = [
    "LAYERS",
    "META_RULES",
    "PARSE_ERROR_CODE",
    "REGISTRY",
    "SUPPRESSION_GROWTH_CODE",
    "UNUSED_SUPPRESSION_CODE",
    "Baseline",
    "FileContext",
    "Finding",
    "LintStats",
    "ProjectModel",
    "Rule",
    "all_rules",
    "apply_baseline",
    "context_for_path",
    "counts",
    "discover_files",
    "format_json",
    "format_rule_catalogue",
    "format_sarif",
    "format_text",
    "known_codes",
    "layer_of",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for_path",
    "suppressed_lines",
    "write_baseline",
]
