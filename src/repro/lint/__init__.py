"""``repro.lint`` — AST static analysis for determinism & sim correctness.

The repository guarantees *same seed ⇒ byte-identical results*.  This
package enforces the invariants behind that guarantee at review time
instead of discovering violations in flaky figure diffs:

- **RPR1xx determinism** — process-global RNG state, wall-clock reads,
  unordered iteration, ``id()`` keys.
- **RPR2xx simulation correctness** — events constructed but never
  yielded, host-blocking calls in process generators, ``env.now`` at
  import time.
- **RPR3xx hygiene** — mutable default arguments, silent broad excepts.

Run it as ``repro lint [paths] [--format json] [--baseline FILE]``;
suppress a reviewed exception inline with
``# reprolint: disable=RPRxxx``.  See :doc:`docs/static_analysis.md`
for the full catalogue and policy.
"""

from repro.lint.analyzer import (
    PARSE_ERROR_CODE,
    context_for_path,
    discover_files,
    lint_file,
    lint_paths,
    lint_source,
    suppressed_lines,
)
from repro.lint.base import REGISTRY, FileContext, Finding, Rule, all_rules
from repro.lint.baseline import (
    apply_baseline,
    counts,
    load_baseline,
    write_baseline,
)
from repro.lint.report import format_json, format_rule_catalogue, format_text

__all__ = [
    "PARSE_ERROR_CODE",
    "REGISTRY",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "apply_baseline",
    "context_for_path",
    "counts",
    "discover_files",
    "format_json",
    "format_rule_catalogue",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "suppressed_lines",
    "write_baseline",
]
