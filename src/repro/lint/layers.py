"""Architecture gate (RPR5xx): declarative layering + import cycles.

The allowed dependency order is **declared here** and enforced
mechanically, mirroring the diagram in ``docs/architecture.md``: a
module may import from its own layer or any layer *below* it, never
above.  Back-edges that are intentionally deferred (imports inside a
function body) or typing-only (under ``if TYPE_CHECKING:``) are exempt
— deferring is exactly the sanctioned mechanism for a harness module
that drives higher layers lazily.

Layer membership is resolved by the longest matching module prefix, so
a package can live in one layer while a named harness submodule of it
lives higher (``repro.qos`` is pure policy; ``repro.qos.soak`` is an
experiment harness that legitimately drives ``repro.core``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.base import FileContext, Finding, Rule, rule

__all__ = ["LAYERS", "layer_of", "UpwardImportRule", "ImportCycleRule"]

#: The layering table, lowest layer first.  Each entry is
#: ``(layer name, module prefixes)``.  A module belongs to the entry
#: with the *longest* matching prefix (exact match or prefix followed
#: by a dot), so specific submodules can be re-homed upward without
#: moving their package.
LAYERS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    # The DES engine and its observability hooks are one foundation
    # layer: the engine carries a tracer field, the metrics registry
    # wraps the engine's monitor.
    ("foundation", ("repro.sim", "repro.obs")),
    # The machine model: nodes/CPUs/NICs, kernels, shared memory.
    ("machine", ("repro.cluster", "repro.kernels", "repro.shm")),
    # Pure policy packages: no upward imports by design — pvfs and
    # core consume them (docs/architecture.md).
    ("policy", ("repro.qos", "repro.straggler")),
    # The parallel file system substrate, plus workload synthesis —
    # an input *producer* (imports only the machine model) consumed by
    # core's plan runner; same rank as pvfs, neither imports the other.
    ("storage", ("repro.pvfs", "repro.workload")),
    # The paper's contribution (ASC/ASS/CE/R) and the MPI-IO surface.
    ("core", ("repro.core", "repro.mpiio")),
    # Experiment machinery that *drives* the stack: fault injection,
    # workloads, analysis, caching/parallel sweeps, declarative
    # scenarios, and the named harness submodules of the policy
    # packages.
    ("experiment", (
        "repro.faults", "repro.analysis",
        "repro.cache", "repro.parallel", "repro.scenario",
        "repro.qos.soak", "repro.qos.fairness", "repro.straggler.bench",
    )),
    # Entry points and tooling; may import anything.
    ("app", ("repro.cli", "repro.lint", "repro.__main__", "repro")),
)

#: Prefixes that only match *exactly* (never as a package prefix) —
#: the bare distribution root would otherwise swallow every module.
_EXACT_ONLY = frozenset({"repro"})


def layer_of(module: str) -> Optional[Tuple[int, str]]:
    """``(layer index, layer name)`` for a module, or None if unmapped.

    Longest-prefix match over the table; unmapped modules (tests,
    fixtures, third-party) are unconstrained.
    """
    best: Optional[Tuple[int, str]] = None
    best_len = -1
    for index, (name, prefixes) in enumerate(LAYERS):
        for prefix in prefixes:
            if module == prefix or (
                prefix not in _EXACT_ONLY
                and module.startswith(prefix + ".")
            ):
                if len(prefix) > best_len:
                    best = (index, name)
                    best_len = len(prefix)
    return best


def _toplevel_graph(project: object) -> Dict[str, Set[str]]:
    """Module → imported project modules, top-level imports only."""
    graph: Dict[str, Set[str]] = {}
    modules = getattr(project, "modules", {})
    for name, summary in modules.items():
        deps: Set[str] = set()
        for edge in summary.imports:
            if edge.context != "toplevel":
                continue
            target = _resolve_to_project(edge.module, modules)
            if target is not None and target != name:
                deps.add(target)
        graph[name] = deps
    return graph


def _resolve_to_project(target: str, modules: Dict[str, object]) -> Optional[str]:
    """Map an imported dotted name onto a project module, if any.

    ``from repro.sim.engine import Environment`` records
    ``repro.sim.engine``; ``from repro.sim import engine`` records
    ``repro.sim`` — both resolve.  Names outside the project (stdlib,
    numpy) resolve to None.
    """
    if target in modules:
        return target
    # An ``import a.b.c`` where only ``a.b`` is a project module (c is
    # an attribute), or a package __init__ recorded without suffix.
    parts = target.split(".")
    while parts:
        parts.pop()
        candidate = ".".join(parts)
        if candidate in modules:
            return candidate
    return None


@rule
class UpwardImportRule(Rule):
    """RPR501 — import against the declared layering.

    A lower layer importing a higher one (``repro.sim`` importing
    ``repro.qos``, say) inverts the architecture: the engine would
    depend on policy built on top of it, and the next refactor turns
    the back-edge into an import cycle.  Either the dependency is
    wrong, or the importing module belongs in a higher layer — move it
    (or re-home it in the table in ``repro/lint/layers.py``), or defer
    the import into the function that needs it.
    """

    code = "RPR501"
    name = "upward-import"
    summary = "top-level import from a higher architecture layer"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.module is not None and layer_of(ctx.module) is not None

    def check(self, tree: ast.Module) -> None:
        project = self.ctx.project
        module = self.ctx.module
        if project is None or module is None:
            return
        own = layer_of(module)
        if own is None:
            return
        summary = project.modules.get(module)
        if summary is None:
            return
        for edge in summary.imports:
            if edge.context != "toplevel":
                continue
            target_layer = layer_of(edge.module)
            if target_layer is None:
                continue
            if target_layer[0] > own[0]:
                self.ctx.findings.append(
                    self._finding(edge, own[1], target_layer[1])
                )

    def _finding(self, edge: object, own_name: str, target_name: str) -> Finding:
        return Finding(
            path=self.ctx.path,
            line=edge.lineno,
            col=edge.col + 1,
            code=self.code,
            message=(
                f"'{self.ctx.module}' (layer {own_name}) imports "
                f"'{edge.module}' (layer {target_name}) — layers only "
                "import downward; defer the import into the using "
                "function or move the module up the table in "
                "repro/lint/layers.py"
            ),
        )


@rule
class ImportCycleRule(Rule):
    """RPR502 — module-level import cycle inside the project.

    Cycles make import order load-bearing: whichever module imports
    first sees a half-initialised partner, and the failure mode moves
    around with unrelated edits.  Break the cycle by deferring one
    edge into a function body or extracting the shared names into a
    lower module.  Typing-only back-references belong under
    ``if TYPE_CHECKING:``.
    """

    code = "RPR502"
    name = "import-cycle"
    summary = "top-level import cycle between project modules"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.module is not None and ctx.project is not None

    def check(self, tree: ast.Module) -> None:
        project = self.ctx.project
        module = self.ctx.module
        if project is None or module is None:
            return
        sccs = _cycles_of(project)
        members = sccs.get(module)
        if members is None:
            return
        summary = project.modules.get(module)
        if summary is None:
            return
        cycle = ", ".join(sorted(members))
        flagged: Set[str] = set()
        for edge in summary.imports:
            if edge.context != "toplevel":
                continue
            target = _resolve_to_project(edge.module, project.modules)
            if target in members and target != module and target not in flagged:
                flagged.add(target)
                self.ctx.findings.append(Finding(
                    path=self.ctx.path,
                    line=edge.lineno,
                    col=edge.col + 1,
                    code=self.code,
                    message=(
                        f"import of '{edge.module}' closes a module-level "
                        f"import cycle [{cycle}]; defer one edge into a "
                        "function body or extract the shared names downward"
                    ),
                ))


def _cycles_of(project: object) -> Dict[str, Set[str]]:
    """Module → its strongly-connected component, for SCCs of size > 1.

    Cached on the project object so the SCC computation runs once per
    lint invocation, not once per file.
    """
    cached = getattr(project, "_scc_cache", None)
    if cached is not None:
        return cached
    graph = _toplevel_graph(project)
    result: Dict[str, Set[str]] = {}
    for component in _tarjan(graph):
        if len(component) > 1:
            members = set(component)
            for member in component:
                result[member] = members
    # Self-loops (a module importing itself) are pathological but
    # possible through package __init__ re-imports; flag those too.
    for name, deps in graph.items():
        if name in deps and name not in result:
            result[name] = {name}
    project._scc_cache = result
    return result


def _tarjan(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Iterative Tarjan SCC over a module graph (deterministic order)."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    components: List[List[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = lowlink[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recursed = False
            children: Sequence[str] = sorted(graph.get(node, ()))
            for i in range(child_i, len(children)):
                child = children[i]
                if child not in graph:
                    continue
                if child not in index:
                    work[-1] = (node, i + 1)
                    work.append((child, 0))
                    recursed = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recursed:
                continue
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                components.append(sorted(component))
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components
