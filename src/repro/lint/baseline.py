"""Baseline ("ratchet") support for staged adoption.

A baseline records how many findings of each ``(path, code)`` pair are
*accepted* — typically the debt present when a rule first ships.  With
``--baseline FILE``, lint only reports findings **beyond** the accepted
count, so new violations fail CI while the recorded debt is paid down
independently.  Counts ratchet naturally: regenerating the baseline
after fixes can only lower them.

Counts (not line numbers) keyed by file make the baseline stable under
unrelated edits: inserting a line above an accepted finding does not
un-accept it, while adding a *new* violation anywhere in the file trips
the ratchet.

Since format version 2 the file also ratchets **inline suppressions**:
a ``suppressions`` section records how many findings per rule code are
silenced by ``# reprolint: disable=`` directives.  The CLI compares the
current run's counts against it and synthesises an RPR901 finding when
a rule's suppressions grew — suppressing your way past the ratchet is
itself a ratchet violation.

Rule codes in a baseline are validated against the live registry, so a
stale file referring to a renamed/removed rule fails loudly instead of
silently accepting nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.base import Finding

__all__ = [
    "Baseline",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "counts",
]

#: Version 2 added the ``suppressions`` section; version-1 files load
#: with an empty one (upgrade by regenerating).
_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)


@dataclass
class Baseline:
    """Parsed baseline: accepted finding counts + suppression counts."""

    #: ``"path::code" → accepted finding count``.
    accepted: Dict[str, int] = field(default_factory=dict)
    #: ``code → accepted inline-suppression count`` (run-wide).
    suppressions: Dict[str, int] = field(default_factory=dict)


def counts(findings: List[Finding]) -> Dict[str, int]:
    """``"path::code" → count`` for a list of findings."""
    out: Dict[str, int] = {}
    for f in findings:
        key = f"{f.path}::{f.code}"
        out[key] = out.get(key, 0) + 1
    return out


def _validate_codes(path: str, codes: List[str]) -> None:
    from repro.lint.analyzer import known_codes  # lazy: loads rule modules
    unknown = sorted(set(codes) - known_codes())
    if unknown:
        raise ValueError(
            f"{path}: baseline refers to unknown rule code(s) "
            f"{', '.join(unknown)} — the rule set changed under the "
            "baseline; regenerate it with 'repro lint ... --baseline "
            f"{path} --write-baseline'")


def load_baseline(path: str) -> Baseline:
    """Read a baseline file, validating shape and rule codes."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("version") not in _READABLE_VERSIONS:
        raise ValueError(f"{path}: not a reprolint baseline "
                         f"(expected version in {_READABLE_VERSIONS})")
    accepted = doc.get("accepted", {})
    if not isinstance(accepted, dict):
        raise ValueError(f"{path}: malformed 'accepted' section")
    suppressions = doc.get("suppressions", {})
    if not isinstance(suppressions, dict):
        raise ValueError(f"{path}: malformed 'suppressions' section")
    _validate_codes(path, [str(k).rsplit("::", 1)[-1] for k in accepted]
                    + [str(k) for k in suppressions])
    return Baseline(
        accepted={str(k): int(v) for k, v in accepted.items()},
        suppressions={str(k): int(v) for k, v in suppressions.items()},
    )


def write_baseline(
    path: str,
    findings: List[Finding],
    suppressions: Optional[Dict[str, int]] = None,
) -> int:
    """Record current findings/suppressions as accepted; returns entry count."""
    accepted = counts(findings)
    doc = {
        "version": _FORMAT_VERSION,
        "comment": ("reprolint baseline: accepted finding counts per "
                    "path::code plus accepted inline-suppression counts "
                    "per code; regenerate with "
                    "'repro lint ... --write-baseline'"),
        "accepted": dict(sorted(accepted.items())),
        "suppressions": dict(sorted((suppressions or {}).items())),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(accepted)


def apply_baseline(
    findings: List[Finding],
    accepted: Dict[str, int],
) -> Tuple[List[Finding], int]:
    """Drop the first ``accepted[path::code]`` findings of each pair.

    Findings are location-sorted, so the earliest occurrences in each
    file are the ones charged against the accepted count.  Returns the
    surviving findings and the number suppressed by the baseline.
    """
    remaining = dict(accepted)
    kept: List[Finding] = []
    suppressed = 0
    for f in sorted(findings):
        key = f"{f.path}::{f.code}"
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed
