"""Baseline ("ratchet") support for staged adoption.

A baseline records how many findings of each ``(path, code)`` pair are
*accepted* — typically the debt present when a rule first ships.  With
``--baseline FILE``, lint only reports findings **beyond** the accepted
count, so new violations fail CI while the recorded debt is paid down
independently.  Counts ratchet naturally: regenerating the baseline
after fixes can only lower them.

Counts (not line numbers) keyed by file make the baseline stable under
unrelated edits: inserting a line above an accepted finding does not
un-accept it, while adding a *new* violation anywhere in the file trips
the ratchet.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.lint.base import Finding

__all__ = ["load_baseline", "write_baseline", "apply_baseline", "counts"]

_FORMAT_VERSION = 1


def counts(findings: List[Finding]) -> Dict[str, int]:
    """``"path::code" → count`` for a list of findings."""
    out: Dict[str, int] = {}
    for f in findings:
        key = f"{f.path}::{f.code}"
        out[key] = out.get(key, 0) + 1
    return out


def load_baseline(path: str) -> Dict[str, int]:
    """Read accepted counts from a baseline file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("version") != _FORMAT_VERSION:
        raise ValueError(f"{path}: not a reprolint baseline "
                         f"(expected version {_FORMAT_VERSION})")
    accepted = doc.get("accepted", {})
    if not isinstance(accepted, dict):
        raise ValueError(f"{path}: malformed 'accepted' section")
    return {str(k): int(v) for k, v in accepted.items()}


def write_baseline(path: str, findings: List[Finding]) -> int:
    """Record the current findings as accepted; returns entry count."""
    accepted = counts(findings)
    doc = {
        "version": _FORMAT_VERSION,
        "comment": ("reprolint baseline: accepted finding counts per "
                    "path::code; regenerate with "
                    "'repro lint ... --write-baseline'"),
        "accepted": dict(sorted(accepted.items())),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(accepted)


def apply_baseline(
    findings: List[Finding],
    accepted: Dict[str, int],
) -> Tuple[List[Finding], int]:
    """Drop the first ``accepted[path::code]`` findings of each pair.

    Findings are location-sorted, so the earliest occurrences in each
    file are the ones charged against the accepted count.  Returns the
    surviving findings and the number suppressed by the baseline.
    """
    remaining = dict(accepted)
    kept: List[Finding] = []
    suppressed = 0
    for f in sorted(findings):
        key = f"{f.path}::{f.code}"
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed
