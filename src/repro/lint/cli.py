"""The ``repro lint`` subcommand.

Exit codes follow the convention of the other subcommands: ``0`` clean
(or all findings baselined/suppressed), ``1`` findings reported, ``2``
usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Optional

from repro.lint.analyzer import (
    SUPPRESSION_GROWTH_CODE,
    LintStats,
    discover_files,
    lint_paths,
)
from repro.lint.base import Finding
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.report import (
    format_json,
    format_rule_catalogue,
    format_sarif,
    format_text,
)

__all__ = ["cmd_lint", "add_lint_parser"]


def _suppression_growth(
    stats: LintStats,
    accepted: dict,
    baseline_path: str,
) -> List[Finding]:
    """RPR901 findings where per-rule suppression counts grew."""
    out: List[Finding] = []
    for code in sorted(stats.suppressions):
        have = stats.suppressions[code]
        allowed = int(accepted.get(code, 0))
        if have > allowed:
            out.append(Finding(
                path=baseline_path, line=1, col=1,
                code=SUPPRESSION_GROWTH_CODE,
                message=(f"inline suppressions for {code} grew to {have} "
                         f"(baseline accepts {allowed}) — fix the finding "
                         "instead, or regenerate the baseline with a "
                         "reviewed rationale"),
            ))
    return out


def cmd_lint(args: argparse.Namespace, out: Optional[IO[str]] = None) -> int:
    """Run the analyzer over ``args.paths`` and report findings."""
    stream: IO[str] = out if out is not None else sys.stdout
    if args.list_rules:
        print(format_rule_catalogue(), file=stream)
        return 0
    select = args.select.split(",") if args.select else None
    files = discover_files(args.paths)
    stats = LintStats()
    try:
        findings = lint_paths(args.paths, select=select, stats=stats)
    except ValueError as exc:  # unknown --select code
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline FILE",
                  file=sys.stderr)
            return 2
        n = write_baseline(args.baseline, findings,
                           suppressions=stats.suppressions)
        print(f"wrote baseline {args.baseline}: {len(findings)} accepted "
              f"finding(s) across {n} path/code pair(s), "
              f"{sum(stats.suppressions.values())} inline suppression(s)",
              file=stream)
        return 0

    suppressed = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = apply_baseline(findings, baseline.accepted)
        findings.extend(_suppression_growth(stats, baseline.suppressions,
                                            args.baseline))
        findings.sort()

    if args.format == "json":
        report = format_json(findings, checked_files=len(files),
                             baseline_suppressed=suppressed)
    elif args.format == "sarif":
        report = format_sarif(findings, checked_files=len(files))
    else:
        report = format_text(findings, checked_files=len(files))
        if suppressed:
            report += (f"\n({suppressed} finding(s) accepted by baseline "
                       f"{args.baseline})")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report)
            fh.write("\n")
        print(f"wrote {args.format} report to {args.out}: "
              f"{len(findings)} finding(s)", file=stream)
    else:
        print(report, file=stream)
    return 1 if findings else 0


def add_lint_parser(sub: "argparse._SubParsersAction") -> None:
    """Register the ``lint`` subcommand on the main CLI parser."""
    p = sub.add_parser(
        "lint",
        help="static determinism & simulation-correctness analysis",
        description=("AST-based analyzer enforcing the repo's determinism "
                     "guarantees (see docs/static_analysis.md). Exit 1 on "
                     "findings, 0 when clean."),
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to analyze (default: src)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text", help="report format")
    p.add_argument("--out", metavar="FILE",
                   help="write the report to FILE instead of stdout")
    p.add_argument("--select", metavar="RPR101,RPR202,...",
                   help="run only these rule codes")
    p.add_argument("--baseline", metavar="FILE",
                   help="accepted-findings baseline (staged adoption)")
    p.add_argument("--write-baseline", action="store_true",
                   help="record current findings into --baseline FILE")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(func=cmd_lint)
