"""The ``repro lint`` subcommand.

Exit codes follow the convention of the other subcommands: ``0`` clean
(or all findings baselined/suppressed), ``1`` findings reported, ``2``
usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Optional

from repro.lint.analyzer import discover_files, lint_file
from repro.lint.base import Finding
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.report import format_json, format_rule_catalogue, format_text

__all__ = ["cmd_lint", "add_lint_parser"]


def cmd_lint(args: argparse.Namespace, out: Optional[IO[str]] = None) -> int:
    """Run the analyzer over ``args.paths`` and report findings."""
    stream: IO[str] = out if out is not None else sys.stdout
    if args.list_rules:
        print(format_rule_catalogue(), file=stream)
        return 0
    select = args.select.split(",") if args.select else None
    files = discover_files(args.paths)
    findings: List[Finding] = []
    try:
        for path in files:
            findings.extend(lint_file(path, select=select))
    except ValueError as exc:  # unknown --select code
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings.sort()

    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline FILE",
                  file=sys.stderr)
            return 2
        n = write_baseline(args.baseline, findings)
        print(f"wrote baseline {args.baseline}: {len(findings)} accepted "
              f"finding(s) across {n} path/code pair(s)", file=stream)
        return 0

    suppressed = 0
    if args.baseline:
        try:
            accepted = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = apply_baseline(findings, accepted)

    if args.format == "json":
        print(format_json(findings, checked_files=len(files),
                          baseline_suppressed=suppressed), file=stream)
    else:
        print(format_text(findings, checked_files=len(files)), file=stream)
        if suppressed:
            print(f"({suppressed} finding(s) accepted by baseline "
                  f"{args.baseline})", file=stream)
    return 1 if findings else 0


def add_lint_parser(sub: "argparse._SubParsersAction") -> None:
    """Register the ``lint`` subcommand on the main CLI parser."""
    p = sub.add_parser(
        "lint",
        help="static determinism & simulation-correctness analysis",
        description=("AST-based analyzer enforcing the repo's determinism "
                     "guarantees (see docs/static_analysis.md). Exit 1 on "
                     "findings, 0 when clean."),
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to analyze (default: src)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report format")
    p.add_argument("--select", metavar="RPR101,RPR202,...",
                   help="run only these rule codes")
    p.add_argument("--baseline", metavar="FILE",
                   help="accepted-findings baseline (staged adoption)")
    p.add_argument("--write-baseline", action="store_true",
                   help="record current findings into --baseline FILE")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(func=cmd_lint)
