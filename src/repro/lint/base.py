"""Core types of the ``repro.lint`` static-analysis framework.

A *rule* is an :class:`ast.NodeVisitor` subclass with a stable
``RPRxxx`` code.  The analyzer parses each file once, instantiates
every applicable rule with a shared :class:`FileContext`, runs it over
the tree, and collects :class:`Finding` records.

Rules are registered with the :func:`rule` class decorator, which
keys them by code in :data:`REGISTRY`.  Codes are grouped by family:

``RPR1xx``
    Determinism — constructs that can make two runs of the same seed
    diverge (global RNG state, wall-clock reads, unordered iteration,
    memory-address keys).
``RPR2xx``
    Simulation correctness — misuse of the DES engine inside process
    generators (dropped events, real blocking calls, ``env.now`` at
    import time).
``RPR3xx``
    Hygiene — patterns that hide bugs (mutable default arguments,
    silent broad exception handlers).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Optional, Type

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "REGISTRY",
    "rule",
    "all_rules",
    "dotted_name",
    "is_env_expr",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The conventional ``path:line:col: CODE message`` rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe view (used by the ``--format json`` reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Per-file facts shared by every rule run over that file.

    ``in_src`` / ``in_benchmarks`` drive path-scoped rules (wall-clock
    reads are a bug in simulation sources but the whole point of
    ``benchmarks/``).  They are auto-detected from the path by
    :func:`repro.lint.analyzer.context_for_path`; tests of individual
    rules construct the context directly to pin the scope.
    """

    path: str
    source: str = ""
    #: True when the file belongs to the library sources (``src/``).
    in_src: bool = True
    #: True for measurement code (``benchmarks/``, calibration).
    in_benchmarks: bool = False
    findings: List[Finding] = field(default_factory=list)
    #: Dotted module name of the file (``repro.sim.engine``); filled
    #: by the driver from the project model (or derived from the path
    #: for standalone ``lint_source`` runs).
    module: Optional[str] = None
    #: The once-per-run :class:`repro.lint.project.ProjectModel`
    #: shared by every file of a ``lint_paths`` invocation; a
    #: single-file model for standalone runs.  Typed loosely to avoid
    #: an import cycle with the project module.
    project: Optional[object] = None

    def add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )


class Rule(ast.NodeVisitor):
    """Base class for all lint rules.

    Subclasses set the class attributes and implement ``visit_*``
    methods, reporting via :meth:`add`.  One instance is created per
    (rule, file) pair, so per-file state can live on ``self``.
    """

    #: Stable identifier, e.g. ``"RPR101"`` — never reused once shipped.
    code: ClassVar[str] = ""
    #: Short kebab-case name, e.g. ``"global-rng"``.
    name: ClassVar[str] = ""
    #: One-line description shown by ``repro lint --list-rules``.
    summary: ClassVar[str] = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        """Whether this rule runs on the file at all (path scoping)."""
        return True

    def add(self, node: ast.AST, message: str) -> None:
        self.ctx.add(node, self.code, message)

    def check(self, tree: ast.Module) -> None:
        """Run the rule over a parsed module."""
        self.visit(tree)


#: code → rule class, in registration order.
REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a rule by its ``code``."""
    if not cls.code or not cls.code.startswith("RPR"):
        raise ValueError(f"rule {cls.__name__} has no RPRxxx code")
    if cls.code in REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule, sorted by code."""
    return [REGISTRY[code] for code in sorted(REGISTRY)]


# -- shared AST helpers -------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve a ``Name``/``Attribute`` chain to ``"a.b.c"``, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_env_expr(node: ast.AST) -> bool:
    """True for expressions that look like a simulation environment.

    Matches the codebase's conventions: a bare ``env`` name, or any
    attribute access ending in ``.env`` / ``._env`` (``self.env``,
    ``self.node.env``, …).
    """
    if isinstance(node, ast.Name):
        return node.id in ("env", "_env")
    if isinstance(node, ast.Attribute):
        return node.attr in ("env", "_env")
    return False


def walk_with_parents(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Map every node in ``tree`` to its parent node."""
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def body_is_silent(body: List[ast.stmt]) -> bool:
    """True when an except-handler body visibly does nothing.

    "Silent" means no re-raise and no call statement (logging, metric
    increment, cleanup) — only ``pass``/``...``/``continue``/bookkeeping
    assignments/bare returns.
    """
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return False
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                return False
    return True


def generator_functions(tree: ast.AST) -> List[ast.FunctionDef]:
    """Every function in ``tree`` whose own body contains a yield."""
    out: List[ast.FunctionDef] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _has_own_yield(node):
            out.append(node)  # type: ignore[arg-type]
    return out


def _has_own_yield(func: ast.AST) -> bool:
    """Does ``func`` itself yield (ignoring nested function defs)?"""
    for node in _walk_shallow(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _walk_shallow(func: ast.AST) -> List[ast.AST]:
    """All nodes of a function body, not descending into nested defs."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return out


def shallow_nodes(func: ast.AST) -> List[ast.AST]:
    """Public alias of the shallow walker (used by generator rules)."""
    return _walk_shallow(func)


CallPredicate = Callable[[ast.Call], bool]
