"""Loading and dumping scenario files (YAML or JSON).

JSON support is unconditional; YAML rides on PyYAML when it is
installed and raises a clear :class:`ScenarioError` when it is not —
the schema itself never depends on the YAML library, and every
scenario can be expressed in either syntax.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

from repro.scenario.schema import Scenario, ScenarioError, scenario_from_dict, scenario_to_dict

__all__ = [
    "load_scenario",
    "loads_scenario",
    "dump_scenario",
    "dumps_scenario",
]


def _yaml_module(path: str) -> Any:
    try:
        import yaml
    except ImportError:
        raise ScenarioError(
            path,
            "YAML scenario files need the optional PyYAML dependency "
            "(pip install pyyaml) — or rewrite the scenario as JSON",
        ) from None
    return yaml


def loads_scenario(text: str, fmt: str = "yaml", source: str = "scenario") -> Scenario:
    """Parse scenario text in the given format (``yaml`` or ``json``)."""
    if fmt == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise ScenarioError(source, f"invalid JSON: {err}") from None
    elif fmt == "yaml":
        yaml = _yaml_module(source)
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as err:
            raise ScenarioError(source, f"invalid YAML: {err}") from None
    else:
        raise ScenarioError(source, f"unknown scenario format {fmt!r}")
    return scenario_from_dict(data, source=source)


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load one scenario file; the extension picks the syntax.

    ``.json`` parses as JSON; ``.yaml``/``.yml`` as YAML; anything
    else is tried as YAML first (a strict superset of JSON when PyYAML
    is present) and as JSON otherwise.
    """
    p = Path(path)
    try:
        text = p.read_text(encoding="utf-8")
    except OSError as err:
        raise ScenarioError(str(path), f"cannot read scenario file: {err}") from None
    suffix = p.suffix.lower()
    if suffix == ".json":
        fmt = "json"
    elif suffix in (".yaml", ".yml"):
        fmt = "yaml"
    else:
        try:
            import yaml  # noqa: F401
            fmt = "yaml"
        except ImportError:
            fmt = "json"
    return loads_scenario(text, fmt=fmt, source=p.name)


def dumps_scenario(scenario: Scenario, fmt: str = "json") -> str:
    """The canonical text rendering (complete, defaults included).

    JSON output is byte-deterministic (fixed field order, 2-space
    indent); YAML output requires PyYAML and keeps the same field
    order.
    """
    data = scenario_to_dict(scenario)
    if fmt == "json":
        return json.dumps(data, indent=2) + "\n"
    if fmt == "yaml":
        yaml = _yaml_module(scenario.name)
        return yaml.safe_dump(data, sort_keys=False, default_flow_style=False)
    raise ScenarioError(scenario.name, f"unknown scenario format {fmt!r}")


def dump_scenario(
    scenario: Scenario, path: Union[str, Path], fmt: Optional[str] = None
) -> None:
    """Write the canonical rendering to ``path`` (format from extension)."""
    p = Path(path)
    if fmt is None:
        fmt = "yaml" if p.suffix.lower() in (".yaml", ".yml") else "json"
    p.write_text(dumps_scenario(scenario, fmt=fmt), encoding="utf-8")
