"""The invariant engine: what every scenario run must satisfy.

Each scenario run — whatever harness drives it — passes through these
checks before its result counts.  The families mirror the soak
harness's conservation math (``repro.qos.soak.check_invariants``) but
are implemented natively here with typed :class:`Violation` records:
``repro.scenario`` sits *above* ``repro.qos`` in the layering, and the
soak module must stay importable without this package (no cycles).

Families, toggled per scenario by
:class:`~repro.scenario.schema.InvariantShape`:

``conservation``
    Per server: ``received == completed + cancelled + crash_failed +
    deadline_expired + outstanding`` with ``outstanding == 0`` at the
    end, and every logical request produced exactly one finish time.
``hedge``
    ``hedges_won + hedges_wasted == hedges_issued`` — every hedge
    settles exactly once.
``ledger``
    Per tenant: ``borrowed == reclaimed + outstanding`` (1-byte float
    tolerance); across tenants: total borrowed == total lent.
``slo_floor``
    Cross-run: the protected run's attainment for the named tenant is
    at or above the baseline run's, per seed — the isolation claim the
    noisy-neighbor scenarios exist to demonstrate.  ``min_attainment``
    adds an absolute floor on the protected side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.schemes import SchemeResult
from repro.scenario.schema import InvariantShape

__all__ = [
    "Violation",
    "INVARIANT_FAMILIES",
    "check_run",
    "check_slo_floor",
    "tenant_attainment",
]


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which family, and what the numbers said."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


#: Every family the engine knows, with the claim it asserts.
INVARIANT_FAMILIES: Dict[str, str] = {
    "conservation": (
        "received == completed + cancelled + crash_failed + expired "
        "per server, nothing outstanding, one finish time per request"
    ),
    "hedge": "hedges issued == hedges won + hedges wasted",
    "ledger": (
        "per tenant borrowed == reclaimed + outstanding; "
        "total borrowed == total lent"
    ),
    "slo_floor": (
        "protected attainment for the floor tenant >= baseline "
        "attainment, per seed (plus the optional absolute floor)"
    ),
    "lifecycle": "the protected run finished (no watchdog, no crash-out)",
}


def check_run(
    result: SchemeResult, shape: Optional[InvariantShape] = None
) -> List[Violation]:
    """Single-run invariants on one completed scheme result."""
    shape = shape if shape is not None else InvariantShape()
    out: List[Violation] = []
    if shape.conservation:
        out.extend(_check_conservation(result))
    if shape.hedge:
        out.extend(_check_hedge(result))
    if shape.ledger:
        out.extend(_check_ledger(result))
    return out


def _check_conservation(result: SchemeResult) -> List[Violation]:
    out: List[Violation] = []
    expected = result.spec.total_requests
    got = len(result.per_request_times)
    if got != expected:
        out.append(Violation(
            "conservation",
            f"completions: {got} request finish times for {expected} requests",
        ))
    for m in result.server_metrics:
        name = m["server"]
        received = int(m.get("requests_received", 0))
        completed = int(m.get("requests_completed", 0))
        cancelled = int(m.get("requests_cancelled", 0))
        crash_failed = int(m.get("requests_failed_crash", 0))
        expired = int(m.get("deadline_expired", 0))
        outstanding = int(m.get("outstanding_final", 0))
        accounted = completed + cancelled + crash_failed + expired + outstanding
        if received != accounted:
            out.append(Violation(
                "conservation",
                f"{name}: received {received} != completed {completed} + "
                f"cancelled {cancelled} + crash-failed {crash_failed} + "
                f"expired {expired} + outstanding {outstanding}",
            ))
        if outstanding != 0:
            out.append(Violation(
                "conservation",
                f"{name}: {outstanding} requests still outstanding at the end",
            ))
    return out


def _check_hedge(result: SchemeResult) -> List[Violation]:
    if result.hedges_won + result.hedges_wasted != result.hedges_issued:
        return [Violation(
            "hedge",
            f"issued {result.hedges_issued} != won {result.hedges_won} + "
            f"wasted {result.hedges_wasted}",
        )]
    return []


def _check_ledger(result: SchemeResult) -> List[Violation]:
    tenants = result.qos_stats.get("tenants")
    if not tenants:
        return []
    out: List[Violation] = []
    total_borrowed = total_lent = 0.0
    for name in sorted(tenants["per_tenant"]):
        ledger = tenants["per_tenant"][name].get("ledger")
        if ledger is None:
            continue
        borrowed = ledger["borrowed_bytes"]
        reclaimed = ledger["reclaimed_bytes"]
        outstanding = ledger["debt_outstanding"]
        # 1-byte tolerance: the ledger works in floats and forgives
        # sub-1e-12 residues when closing a debt.
        if abs(borrowed - (reclaimed + outstanding)) > 1.0:
            out.append(Violation(
                "ledger",
                f"tenant {name}: borrowed {borrowed:.0f} != reclaimed "
                f"{reclaimed:.0f} + outstanding {outstanding:.0f}",
            ))
        total_borrowed += borrowed
        total_lent += ledger["lent_bytes"]
    if abs(total_borrowed - total_lent) > 1.0:
        out.append(Violation(
            "ledger",
            f"tenants borrowed {total_borrowed:.0f} but peers lent "
            f"{total_lent:.0f}",
        ))
    return out


def tenant_attainment(
    qos_stats: Dict[str, Any], tenant: str
) -> Optional[float]:
    """The tenant's SLO attainment in one run's stats, if measured."""
    tenants = qos_stats.get("tenants")
    if not tenants:
        return None
    stats = tenants.get("per_tenant", {}).get(tenant)
    if stats is None:
        return None
    return stats.get("slo_attainment")


def check_slo_floor(
    shape: InvariantShape,
    protected_stats: Dict[str, Any],
    baseline_stats: Optional[Dict[str, Any]],
) -> List[Violation]:
    """The cross-run isolation claim for the floor tenant.

    ``baseline_stats`` is None when the scenario runs no baseline (or
    the baseline run died — a dead baseline is exactly the degradation
    the protected run is measured against, so only the protected side
    must produce an attainment).
    """
    if shape.slo_floor is None:
        return []
    tenant = shape.slo_floor
    out: List[Violation] = []
    protected = tenant_attainment(protected_stats, tenant)
    if protected is None:
        return [Violation(
            "slo_floor",
            f"protected run reports no SLO attainment for tenant "
            f"{tenant!r} — did the run record per-tenant stats?",
        )]
    if baseline_stats is not None:
        baseline = tenant_attainment(baseline_stats, tenant)
        if baseline is not None and protected < baseline:
            out.append(Violation(
                "slo_floor",
                f"tenant {tenant!r}: protected attainment "
                f"{protected:.3f} fell below baseline {baseline:.3f}",
            ))
    if shape.min_attainment is not None and protected < shape.min_attainment:
        out.append(Violation(
            "slo_floor",
            f"tenant {tenant!r}: protected attainment {protected:.3f} "
            f"below the scenario's absolute floor {shape.min_attainment:.3f}",
        ))
    return out
