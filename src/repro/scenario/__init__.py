"""repro.scenario — declarative scenarios: one file drives every harness.

A scenario is a strict, typed description of an experiment (cluster
shape, workload + tenant mix, arrival process, fault schedule, QoS /
straggler / run knobs) loadable from YAML or JSON.  The compiler
lowers it onto the engine's native objects, the runner executes it
with the scenario's baseline pairing, and the invariant engine asserts
the stack's conservation laws on every run.

Layering: this package sits at the experiment tier — it may import
``repro.core``, ``repro.faults``, ``repro.qos``; nothing below the
experiment tier may import it back.
"""

from repro.scenario.compile import (
    arrival_offsets,
    compile_faults,
    compile_qos,
    compile_retry,
    compile_workload,
    soak_schedule_factory,
    soak_spec_kwargs,
    validate_scenario,
)
from repro.scenario.invariants import (
    INVARIANT_FAMILIES,
    Violation,
    check_run,
    check_slo_floor,
)
from repro.scenario.library import (
    BUILTIN,
    get_scenario,
    list_scenarios,
    smoke_scenarios,
)
from repro.scenario.loader import (
    dump_scenario,
    dumps_scenario,
    load_scenario,
    loads_scenario,
)
from repro.scenario.runner import (
    ScenarioReport,
    ScenarioRun,
    ScenarioSeedResult,
    run_scenario,
)
from repro.scenario.schema import (
    Scenario,
    ScenarioError,
    scenario_from_dict,
    scenario_to_dict,
)

__all__ = [
    "Scenario",
    "ScenarioError",
    "scenario_from_dict",
    "scenario_to_dict",
    "load_scenario",
    "loads_scenario",
    "dump_scenario",
    "dumps_scenario",
    "arrival_offsets",
    "compile_workload",
    "compile_qos",
    "compile_retry",
    "compile_faults",
    "validate_scenario",
    "soak_spec_kwargs",
    "soak_schedule_factory",
    "Violation",
    "INVARIANT_FAMILIES",
    "check_run",
    "check_slo_floor",
    "BUILTIN",
    "get_scenario",
    "list_scenarios",
    "smoke_scenarios",
    "ScenarioRun",
    "ScenarioSeedResult",
    "ScenarioReport",
    "run_scenario",
]
