"""Executing scenarios: protected runs, baselines, invariants, report.

``run_scenario`` is the engine behind ``repro scenario run`` and the
bench harness: per seed and per scheme it executes the *protected*
run (the scenario's QoS / straggler / retry stack as written), pairs
it with the scenario's baseline mode, pushes every completed run
through the invariant engine, and cross-checks the SLO floor between
the pair.  The report is plain data with a byte-deterministic JSON
rendering — same scenario file + same seed ⇒ identical text, which the
determinism tests and the CI smoke job pin.

Baseline modes (``run.baseline``):

``unprotected``
    The same workload with the QoS stack disarmed entirely — raw
    contention, nothing policed, nothing shed.
``unpoliced``
    QoS stays armed but every tenant's rate/burst/ceiling guarantee is
    stripped — the fairness bench's "no policing" arm, isolating the
    per-tenant guarantees from the rest of the stack.
``none``
    No baseline (sanity scenarios).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.schemes import Scheme, SchemeResult, WorkloadSpec, run_scheme
from repro.faults.injector import WatchdogTimeout
from repro.faults.schedule import FaultSchedule
from repro.pvfs.client import reset_parent_ids
from repro.pvfs.metadata import PVFSError
from repro.pvfs.requests import reset_request_ids
from repro.scenario.compile import (
    compile_faults,
    compile_qos,
    compile_retry,
    compile_workload,
)
from repro.scenario.invariants import (
    Violation,
    check_run,
    check_slo_floor,
    tenant_attainment,
)
from repro.scenario.schema import Scenario

__all__ = [
    "ScenarioRun",
    "ScenarioSeedResult",
    "ScenarioReport",
    "run_scenario",
]

_SCHEMES: Dict[str, Scheme] = {s.value: s for s in Scheme}


@dataclass
class ScenarioRun:
    """One execution (protected or baseline) of one scheme, one seed."""

    mode: str
    scheme: str
    goodput: float = 0.0
    makespan: float = float("inf")
    retries: int = 0
    retry_timeouts: int = 0
    served_active: int = 0
    demoted: int = 0
    hedges_issued: int = 0
    hedges_won: int = 0
    hedges_wasted: int = 0
    #: tenant name -> SLO attainment (only tenants with an SLO).
    attainment: Dict[str, float] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    #: Non-empty when the run died (watchdog / RetryExhausted).  For
    #: baselines that is admissible degradation evidence; a dead
    #: *protected* run is itself a lifecycle violation.
    failed: str = ""


@dataclass
class ScenarioSeedResult:
    """Every run under one seed, plus the cross-run floor checks."""

    seed: int
    schedule: str
    runs: List[ScenarioRun] = field(default_factory=list)
    #: slo_floor violations (they compare two runs, so they live at
    #: the seed level rather than on either run).
    cross_violations: List[str] = field(default_factory=list)


@dataclass
class ScenarioReport:
    """The whole campaign for one scenario."""

    scenario: str
    tags: List[str]
    baseline: str
    seeds: List[ScenarioSeedResult] = field(default_factory=list)

    def violations(self) -> List[str]:
        """Every violation across all seeds, labelled for humans."""
        out: List[str] = []
        for sr in self.seeds:
            for run in sr.runs:
                out.extend(
                    f"seed {sr.seed} [{run.scheme}/{run.mode}]: {v}"
                    for v in run.violations
                )
            out.extend(f"seed {sr.seed}: {v}" for v in sr.cross_violations)
        return out

    @property
    def clean(self) -> bool:
        return not self.violations()

    def to_json(self) -> str:
        """Byte-stable rendering: same scenario + seed ⇒ identical text."""
        return json.dumps(asdict(self), sort_keys=True, indent=2)


def _attainments(result: SchemeResult) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for t in sorted(result.spec.tenants, key=lambda t: t.name):
        value = tenant_attainment(result.qos_stats, t.name)
        if value is not None:
            out[t.name] = value
    return out


def _execute(
    scenario: Scenario,
    mode: str,
    scheme: Scheme,
    spec: WorkloadSpec,
    schedule: Optional[FaultSchedule],
    qos: Any,
    retry: Any,
) -> Tuple[ScenarioRun, Optional[SchemeResult]]:
    # Process-global id sequences restart so the same scenario + seed
    # serialises byte-identically no matter what ran before it.
    reset_request_ids()
    reset_parent_ids()
    try:
        result = run_scheme(
            scheme,
            spec,
            fault_schedule=schedule,
            retry_policy=retry,
            max_virtual_time=scenario.run.max_virtual_time,
            qos=qos,
            sim_scheduler=scenario.run.sim_scheduler,
        )
    except WatchdogTimeout as err:
        run = ScenarioRun(
            mode=mode, scheme=scheme.value,
            failed=f"watchdog timeout: {err}",
        )
        if mode == "protected":
            run.violations.append(
                str(Violation("lifecycle", f"protected run hung: {err}"))
            )
        return run, None
    except PVFSError as err:
        run = ScenarioRun(
            mode=mode, scheme=scheme.value,
            failed=f"{type(err).__name__}: {err}",
        )
        if mode == "protected":
            run.violations.append(str(Violation(
                "lifecycle", f"protected run died: {type(err).__name__}: {err}"
            )))
        return run, None
    run = ScenarioRun(
        mode=mode,
        scheme=scheme.value,
        goodput=result.goodput,
        makespan=result.makespan,
        retries=result.retries,
        retry_timeouts=result.retry_timeouts,
        served_active=result.served_active,
        demoted=result.demoted,
        hedges_issued=result.hedges_issued,
        hedges_won=result.hedges_won,
        hedges_wasted=result.hedges_wasted,
        attainment=_attainments(result),
        violations=[
            str(v) for v in check_run(result, scenario.invariants)
        ],
    )
    return run, result


def run_scenario(
    scenario: Scenario, seeds: Optional[Tuple[int, ...]] = None
) -> ScenarioReport:
    """Run the scenario: per seed, per scheme, protected + baseline.

    ``seeds`` overrides the scenario's own seed list (the CLI's
    ``--seed`` flag); everything else comes from the file.
    """
    report = ScenarioReport(
        scenario=scenario.name,
        tags=list(scenario.tags),
        baseline=scenario.run.baseline,
    )
    for seed in seeds if seeds is not None else scenario.run.seeds:
        schedule = compile_faults(scenario, seed)
        qos = compile_qos(scenario)
        retry = compile_retry(scenario, schedule)
        seed_result = ScenarioSeedResult(
            seed=seed,
            schedule=schedule.name if schedule is not None else "none",
        )
        for scheme_name in scenario.run.schemes:
            scheme = _SCHEMES[scheme_name]
            protected, protected_result = _execute(
                scenario, "protected", scheme,
                compile_workload(scenario, seed),
                schedule, qos, retry,
            )
            seed_result.runs.append(protected)
            baseline_result: Optional[SchemeResult] = None
            if scenario.run.baseline == "unprotected":
                baseline, baseline_result = _execute(
                    scenario, "unprotected", scheme,
                    compile_workload(scenario, seed),
                    schedule, None, retry,
                )
                seed_result.runs.append(baseline)
            elif scenario.run.baseline == "unpoliced":
                baseline, baseline_result = _execute(
                    scenario, "unpoliced", scheme,
                    compile_workload(scenario, seed, unpoliced=True),
                    schedule, qos, retry,
                )
                seed_result.runs.append(baseline)
            if protected_result is not None:
                seed_result.cross_violations.extend(
                    f"[{scheme_name}] {v}" for v in check_slo_floor(
                        scenario.invariants,
                        protected_result.qos_stats,
                        baseline_result.qos_stats
                        if baseline_result is not None else None,
                    )
                )
        report.seeds.append(seed_result)
    return report
