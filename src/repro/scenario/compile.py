"""Lowering a :class:`Scenario` onto the engine's native objects.

One scenario file drives every harness identically because this module
is the only translation layer: the same
:class:`~repro.core.schemes.WorkloadSpec`,
:class:`~repro.faults.schedule.FaultSchedule`,
:class:`~repro.qos.config.QoSConfig` and
:class:`~repro.core.asc.RetryPolicy` objects come out whether the
scenario is run by ``repro scenario run``, ``repro soak --scenario``
or the bench harness.  Seeds are threaded explicitly — a scenario plus
a seed fully determines every lowered artifact.

Arrival processes beyond the engine's linear stagger (``bursty``
phase-synchronized NWP traffic, the ``diurnal`` curve, ``poisson``)
are lowered into explicit per-request arrival offsets
(``WorkloadSpec.arrival_times``), generated deterministically from the
run seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.config import MB
from repro.core.asc import RetryPolicy
from repro.core.schemes import WorkloadSpec
from repro.faults.schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    scenario as fault_scenario,
    with_guaranteed_crash,
)
from repro.qos.config import QoSConfig
from repro.qos.tenancy import TenantSpec
from repro.scenario.schema import ArrivalShape, Scenario, ScenarioError

__all__ = [
    "arrival_offsets",
    "compile_workload",
    "compile_qos",
    "compile_retry",
    "compile_faults",
    "validate_scenario",
    "soak_spec_kwargs",
    "soak_schedule_factory",
]


# -- arrival processes --------------------------------------------------------

def arrival_offsets(
    arrival: ArrivalShape, n: int, seed: int
) -> Tuple[float, ...]:
    """Per-request arrival offsets for the non-linear disciplines.

    Returns an empty tuple for ``batch``/``spaced`` (those lower onto
    the engine's native spacing).  Offsets are positional: request *i*
    keeps its node (``i % n_storage``) and tenant (interleave
    position), only its arrival instant moves.
    """
    if arrival.process in ("batch", "spaced"):
        return ()
    if arrival.process == "poisson":
        rng = random.Random(seed * 1_000_003 + 101)
        clock = 0.0
        out: List[float] = []
        for _ in range(n):
            clock += rng.expovariate(arrival.rate)
            out.append(round(clock, 9))
        return tuple(out)
    if arrival.process == "bursty":
        # Phase-synchronized bursts: request i joins phase i % phases,
        # so every phase carries the same tenant/node mix and the whole
        # fleet slams the servers together at each phase boundary.
        rng = random.Random(seed * 1_000_003 + 211)
        return tuple(
            round(
                (i % arrival.phases) * arrival.phase_gap
                + (rng.uniform(0.0, arrival.phase_jitter)
                   if arrival.phase_jitter > 0 else 0.0),
                9,
            )
            for i in range(n)
        )
    if arrival.process == "diurnal":
        return _diurnal_offsets(arrival, n)
    raise ScenarioError(
        "workload.arrival.process", f"unknown process {arrival.process!r}"
    )


def _diurnal_offsets(arrival: ArrivalShape, n: int) -> Tuple[float, ...]:
    """Inverse-CDF sampling of one sinusoidal intensity period.

    Intensity ``lam(t) = 1 + (peak_ratio - 1)/2 * (1 - cos(2*pi*t/P))``
    peaks at ``peak_ratio`` × the trough mid-period.  The *i*-th
    request takes the ``(i + 1/2)/n`` quantile of the normalized
    cumulative intensity — fully deterministic, no RNG, so the same
    curve shape at any n.
    """
    period = arrival.period
    amp = (arrival.peak_ratio - 1.0) / 2.0

    def cumulative(t: float) -> float:
        return t + amp * (t - period / (2 * math.pi)
                          * math.sin(2 * math.pi * t / period))

    total = cumulative(period)
    out: List[float] = []
    for i in range(n):
        target = (i + 0.5) / n * total
        lo, hi = 0.0, period
        for _ in range(60):
            mid = (lo + hi) / 2
            if cumulative(mid) < target:
                lo = mid
            else:
                hi = mid
        out.append(round((lo + hi) / 2, 9))
    return tuple(out)


# -- section lowering ---------------------------------------------------------

def _tenant_spec(t: Any, unpoliced: bool) -> TenantSpec:
    if unpoliced:
        return TenantSpec(
            name=t.name, weight=t.weight, slo_latency=t.slo_latency,
            requests=t.requests,
        )
    return TenantSpec(
        name=t.name,
        weight=t.weight,
        rate=t.rate_mb * MB if t.rate_mb is not None else None,
        burst=t.burst_mb * MB if t.burst_mb is not None else None,
        ceiling=t.ceiling_mb * MB if t.ceiling_mb is not None else None,
        slo_latency=t.slo_latency,
        requests=t.requests,
    )


def compile_workload(
    scenario: Scenario, seed: int, unpoliced: bool = False
) -> WorkloadSpec:
    """The scenario's :class:`WorkloadSpec` for one seed.

    ``unpoliced=True`` strips every tenant's rate/burst/ceiling (their
    demand, weight and SLO stay) — the raw-contention baseline the
    noisy-neighbor scenarios compare against.
    """
    w = scenario.workload
    c = scenario.cluster
    offsets = arrival_offsets(w.arrival, scenario.total_requests, seed)
    try:
        return WorkloadSpec(
            kernel=w.kernel,
            n_requests=w.n_requests,
            request_bytes=int(w.request_mb * MB),
            n_storage=c.n_storage,
            storage_cores=c.storage_cores,
            compute_cores=c.compute_cores,
            seed=seed,
            straggler_scheduler=scenario.straggler.enabled,
            n_replicas=c.n_replicas,
            hedge_delay_floor=scenario.straggler.hedge_delay_floor,
            hedge_quantile=scenario.straggler.hedge_quantile,
            tenants=tuple(_tenant_spec(t, unpoliced) for t in w.tenants),
            background_readers=w.background_readers,
            background_bytes=int(w.background_mb * MB),
            arrival_spacing=(
                w.arrival.spacing if w.arrival.process == "spaced" else 0.0
            ),
            arrival_times=offsets,
        )
    except ValueError as err:
        raise ScenarioError(f"{scenario.name}: workload", str(err)) from None


def compile_qos(scenario: Scenario) -> Optional[QoSConfig]:
    """The scenario's protection stack, or None when disarmed."""
    q = scenario.qos
    if not q.enabled:
        return None

    def mb(value: Optional[float]) -> Optional[float]:
        return value * MB if value is not None else None

    try:
        return QoSConfig(
            max_queue_depth=q.max_queue_depth,
            shed_active_first=q.shed_active_first,
            intake_rate=mb(q.intake_rate_mb),
            intake_burst=mb(q.intake_burst_mb),
            pace_rate=mb(q.pace_rate_mb),
            pace_burst=mb(q.pace_burst_mb),
            breaker_threshold=q.breaker_threshold,
            breaker_cooldown=q.breaker_cooldown,
            retry_budget=q.retry_budget,
            retry_replenish_rate=q.retry_replenish_rate,
            deadline=q.deadline,
            tenant_borrow=q.tenant_borrow,
            tenant_lend_reserve=q.tenant_lend_reserve,
            tenant_reclaim_fraction=q.tenant_reclaim_fraction,
        )
    except ValueError as err:
        raise ScenarioError(f"{scenario.name}: qos", str(err)) from None


#: The patient policy tenant-policed runs fall back to: denials
#: recover through retries, so the policy must outlast the backlog
#: (mirrors the fairness bench's stock policy).
_PATIENT_RETRY = RetryPolicy(
    timeout=60.0, max_retries=24, backoff_base=0.25, backoff_factor=2.0,
    backoff_cap=2.0,
)


def compile_retry(
    scenario: Scenario, schedule: Optional[FaultSchedule]
) -> Optional[RetryPolicy]:
    """The client retry policy: explicit > schedule-suggested > implied.

    A scenario with tenants (or QoS armed) but no explicit policy gets
    the patient default — per-tenant denials and shed work recover
    through the retry machinery, so running policed workloads without
    retries would fail requests the experiment means to delay.
    """
    r = scenario.retry
    if r is not None:
        try:
            return RetryPolicy(
                timeout=r.timeout,
                max_retries=r.max_retries,
                backoff_base=r.backoff_base,
                backoff_factor=r.backoff_factor,
                backoff_cap=r.backoff_cap,
                full_jitter=r.full_jitter,
            )
        except ValueError as err:
            raise ScenarioError(f"{scenario.name}: retry", str(err)) from None
    if schedule is not None:
        return schedule.retry
    if scenario.workload.tenants and scenario.qos.enabled:
        return _PATIENT_RETRY
    return None


def compile_faults(scenario: Scenario, seed: int) -> Optional[FaultSchedule]:
    """The scenario's fault schedule for one seed, or None.

    Library scenarios get the run seed and the cluster size threaded
    into their seeded factories (``chaos``/``stragglers``) unless the
    overrides pin them; explicit event lists build a
    :class:`FaultSchedule` directly (construction-time validation
    included).
    """
    f = scenario.faults
    if not f.armed:
        return None
    if f.library is not None:
        kwargs: Dict[str, Any] = dict(f.overrides)
        if f.library == "chaos":
            kwargs.setdefault("seed", seed)
            kwargs.setdefault("n_targets", scenario.cluster.n_storage)
        elif f.library == "stragglers":
            kwargs.setdefault("seed", seed)
            kwargs.setdefault("n_servers", scenario.cluster.n_storage)
        if f.horizon is not None:
            kwargs.setdefault("horizon", f.horizon)
        try:
            schedule = fault_scenario(f.library, **kwargs)
        except TypeError as err:
            raise ScenarioError(
                f"{scenario.name}: faults.overrides",
                f"bad parameters for library scenario {f.library!r}: {err}",
            ) from None
        except ValueError as err:
            raise ScenarioError(
                f"{scenario.name}: faults.overrides", str(err)
            ) from None
    else:
        try:
            events = tuple(
                FaultEvent(
                    at=e.at,
                    kind=FaultKind(e.kind),
                    target=e.target,
                    factor=e.factor,
                    duration=e.duration,
                )
                for e in f.events
            )
            schedule = FaultSchedule(
                name=scenario.name,
                events=events,
                horizon=(
                    f.horizon if f.horizon is not None
                    else scenario.run.max_virtual_time
                ),
            )
        except ValueError as err:
            raise ScenarioError(
                f"{scenario.name}: faults.events", str(err)
            ) from None
    if f.guarantee_crash:
        schedule = with_guaranteed_crash(schedule, at=0.1, downtime=0.4)
    return schedule


def validate_scenario(scenario: Scenario) -> None:
    """Deep validation: every artifact the scenario implies must build.

    The schema layer checks shapes and ranges; this pass actually
    lowers the scenario (first seed, both baseline variants) so
    cross-field rules enforced by the engine objects — dependent QoS
    knobs, tenant burst-without-rate, unknown kernels, unpaired fault
    events — surface at validation time with a scenario-relative path
    instead of mid-run.
    """
    from repro.kernels.registry import default_registry

    if scenario.workload.kernel not in default_registry.names():
        raise ScenarioError(
            f"{scenario.name}: workload.kernel",
            f"unknown kernel {scenario.workload.kernel!r}; known: "
            f"{sorted(default_registry.names())}",
        )
    seed = scenario.run.seeds[0]
    schedule = compile_faults(scenario, seed)
    compile_qos(scenario)
    compile_retry(scenario, schedule)
    compile_workload(scenario, seed)
    if scenario.run.baseline == "unpoliced":
        compile_workload(scenario, seed, unpoliced=True)


# -- soak bridging ------------------------------------------------------------

def soak_spec_kwargs(scenario: Scenario) -> Dict[str, Any]:
    """``SoakSpec`` constructor arguments implied by the scenario.

    Scenario fields override the soak harness's defaults; the caller
    (``repro soak --scenario``) may layer explicitly-given CLI flags
    on top.  Chaos-library parameters map onto the soak's native
    ``n_fault_events``/``fault_span`` knobs so a chaos scenario and a
    plain ``repro soak`` invocation cannot drift apart.
    """
    chaos_overrides = (
        scenario.faults.overrides if scenario.faults.library == "chaos" else {}
    )
    return {
        "scenario": scenario.name,
        "seeds": tuple(scenario.run.seeds),
        "kernel": scenario.workload.kernel,
        "n_requests": scenario.per_node_requests,
        "request_bytes": int(scenario.workload.request_mb * MB),
        "n_storage": scenario.cluster.n_storage,
        "storage_cores": scenario.cluster.storage_cores,
        "protected": scenario.qos.enabled,
        "max_virtual_time": scenario.run.max_virtual_time,
        "n_fault_events": int(chaos_overrides.get("n_events", 4)),
        "fault_span": float(chaos_overrides.get("span", 1.5)),
        "straggler": scenario.straggler.enabled,
        "n_replicas": scenario.cluster.n_replicas,
        "tenants": bool(scenario.workload.tenants),
        "sim_scheduler": scenario.run.sim_scheduler,
    }


def soak_schedule_factory(
    scenario: Scenario,
) -> Optional[Callable[[int], FaultSchedule]]:
    """Per-seed schedule factory for scenario-driven soaks.

    Chaos-library scenarios return None — the soak harness's native
    chaos builder (with its guaranteed early crash) already consumes
    the mapped ``n_fault_events``/``fault_span``.  Any other fault
    section compiles through :func:`compile_faults` per seed.
    """
    if not scenario.faults.armed or scenario.faults.library == "chaos":
        return None

    def build(seed: int) -> FaultSchedule:
        schedule = compile_faults(scenario, seed)
        assert schedule is not None  # armed scenarios always compile one
        return schedule

    return build


def unpoliced_variant(spec: WorkloadSpec) -> WorkloadSpec:
    """``spec`` with every tenant's rate guarantees stripped in place.

    Used by harnesses that already hold a lowered spec; scenario code
    prefers ``compile_workload(..., unpoliced=True)``.
    """
    if not spec.tenants:
        return spec
    return replace(
        spec,
        tenants=tuple(
            TenantSpec(
                name=t.name, weight=t.weight, slo_latency=t.slo_latency,
                requests=t.requests,
            )
            for t in spec.tenants
        ),
    )
