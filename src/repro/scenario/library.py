"""The built-in adversarial contention library.

Each entry is one plain scenario mapping (exactly what a YAML/JSON
file would hold) validated through the strict schema on access — the
library ships as pure data so it needs no YAML support at runtime and
``repro scenario dump NAME`` can render any entry back out as a
starting point for custom files.

The noisy-neighbor family puts a saturator on one shared resource and
asserts the isolation claim: with DOSAS's protection stack armed, the
gold tenant's SLO attainment must hold at or above the unprotected /
unpoliced baseline's, per seed (the ``slo_floor`` invariant).  The
arrival-shape family stresses the engine with bursty NWP phase traffic
and a diurnal curve; ``kitchen-sink-chaos`` turns everything on at
once.

Entries tagged ``smoke`` form the CI subset (fast, two seeds).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.scenario.schema import Scenario, scenario_from_dict

__all__ = [
    "BUILTIN",
    "get_scenario",
    "list_scenarios",
    "smoke_scenarios",
]


def _noisy_tenants(
    gold_requests: int, noisy_requests: int, slo: float
) -> List[Dict[str, Any]]:
    """The canonical gold-vs-saturator mix.

    Gold's guarantee (70 MB/s) undersubscribes the NIC; the saturator's
    tiny guarantee (20 MB/s) forces its bulk demand through borrowed
    headroom, which policing can reclaim the moment gold needs it.
    """
    return [
        {
            "name": "gold",
            "requests": gold_requests,
            "weight": 2.0,
            "rate_mb": 70.0,
            "burst_mb": 32.0,
            "slo_latency": slo,
        },
        {
            "name": "saturator",
            "requests": noisy_requests,
            "rate_mb": 20.0,
            "burst_mb": 32.0,
        },
    ]


#: Deep queues + effectively-unlimited retries: contention scenarios
#: measure *policing*, so nothing may be shed or give up early.
_CONTENTION_QOS: Dict[str, Any] = {
    "max_queue_depth": 160,
    "breaker_threshold": 10000,
    "retry_budget": None,
}

#: The patient client the contention scenarios pair with the deep
#: queues — per-tenant denials recover through retries, never fail.
_PATIENT_RETRY: Dict[str, Any] = {
    "timeout": 60.0,
    "max_retries": 24,
    "backoff_base": 0.25,
    "backoff_factor": 2.0,
    "backoff_cap": 2.0,
}


BUILTIN: Dict[str, Dict[str, Any]] = {
    "steady-state": {
        "name": "steady-state",
        "description": (
            "Flat fault-free workload under the stock QoS stack — the "
            "sanity anchor every other scenario is measured against."
        ),
        "tags": ["sanity", "smoke"],
        "workload": {"n_requests": 8, "request_mb": 16.0},
        "run": {"seeds": [0, 1], "baseline": "none"},
    },
    "noisy-neighbor-nic": {
        "name": "noisy-neighbor-nic",
        "description": (
            "A saturator tenant floods the shared server NICs with "
            "16 bulk reads while gold runs 3 latency-sensitive "
            "requests.  Protected DOSAS polices the saturator to its "
            "20 MB/s guarantee; the unpoliced baseline lets both "
            "tenants fight for the wire."
        ),
        "tags": ["contention", "noisy-neighbor", "smoke"],
        "cluster": {"n_storage": 2, "storage_cores": 2},
        "workload": {
            "request_mb": 16.0,
            "tenants": _noisy_tenants(3, 16, slo=1.5),
        },
        "qos": _CONTENTION_QOS,
        "retry": _PATIENT_RETRY,
        "run": {"seeds": [0, 1], "baseline": "unpoliced"},
        "invariants": {"slo_floor": "gold", "min_attainment": 1.0},
    },
    "noisy-neighbor-cpu": {
        "name": "noisy-neighbor-cpu",
        "description": (
            "The same gold-vs-saturator mix while CPU derates "
            "(SLOWDOWN faults) eat both storage servers' cores — the "
            "contention a co-located compute job causes.  Policing "
            "must keep gold whole even on degraded silicon."
        ),
        "tags": ["contention", "noisy-neighbor", "faults"],
        "cluster": {"n_storage": 2, "storage_cores": 2},
        "workload": {
            "request_mb": 16.0,
            "tenants": _noisy_tenants(3, 12, slo=1.5),
        },
        "faults": {
            "events": [
                {"at": 0.5, "kind": "slowdown", "target": 0,
                 "factor": 0.5, "duration": 8.0},
                {"at": 2.0, "kind": "slowdown", "target": 1,
                 "factor": 0.6, "duration": 8.0},
            ],
        },
        "qos": _CONTENTION_QOS,
        "retry": _PATIENT_RETRY,
        "run": {"seeds": [0, 1], "baseline": "unpoliced"},
        "invariants": {"slo_floor": "gold", "min_attainment": 1.0},
    },
    "noisy-neighbor-queue": {
        "name": "noisy-neighbor-queue",
        "description": (
            "Queue-depth saturation: a swarm of small saturator "
            "requests against a shallow admission bound (depth 8).  "
            "Protected runs shed the saturator's overflow and retry "
            "it patiently; the unprotected baseline piles everything "
            "onto the same queues."
        ),
        "tags": ["contention", "noisy-neighbor"],
        "cluster": {"n_storage": 2, "storage_cores": 2},
        "workload": {
            "request_mb": 8.0,
            "tenants": _noisy_tenants(3, 24, slo=0.8),
        },
        "qos": {
            "max_queue_depth": 8,
            "shed_active_first": True,
            "breaker_threshold": 10000,
            "retry_budget": None,
        },
        "retry": _PATIENT_RETRY,
        "run": {"seeds": [0, 1], "baseline": "unprotected"},
        "invariants": {"slo_floor": "gold", "min_attainment": 1.0},
    },
    "nwp-phase-burst": {
        "name": "nwp-phase-burst",
        "description": (
            "NWP-workflow phase traffic: the whole fleet fires "
            "together in 4 synchronized bursts 2 s apart (jitter "
            "50 ms), the arrival shape that makes shared storage "
            "queues breathe in spikes instead of a steady stream."
        ),
        "tags": ["arrival", "contention", "smoke"],
        "cluster": {"n_storage": 2, "storage_cores": 2},
        "workload": {
            "n_requests": 16,
            "request_mb": 8.0,
            "arrival": {
                "process": "bursty",
                "phases": 4,
                "phase_gap": 2.0,
                "phase_jitter": 0.05,
            },
        },
        "qos": {"max_queue_depth": 12, "retry_budget": None,
                "breaker_threshold": 10000},
        "retry": _PATIENT_RETRY,
        "run": {"seeds": [0, 1], "baseline": "unprotected"},
    },
    "diurnal-arrivals": {
        "name": "diurnal-arrivals",
        "description": (
            "One compressed day: arrival intensity follows a "
            "sinusoidal curve peaking at 4x the trough over a 16 s "
            "period — slow ramps the admission stack must track "
            "without shedding the peak."
        ),
        "tags": ["arrival"],
        "cluster": {"n_storage": 2, "storage_cores": 2},
        "workload": {
            "n_requests": 16,
            "request_mb": 8.0,
            "arrival": {
                "process": "diurnal",
                "period": 16.0,
                "peak_ratio": 4.0,
            },
        },
        "qos": {"max_queue_depth": 12, "retry_budget": None,
                "breaker_threshold": 10000},
        "retry": _PATIENT_RETRY,
        "run": {"seeds": [0, 1], "baseline": "unprotected"},
    },
    "straggler-degrade": {
        "name": "straggler-degrade",
        "description": (
            "The stragglers fault library derates one server per seed "
            "while the straggler-aware dispatcher hedges reads across "
            "2 replicas — hedge conservation asserted on every run."
        ),
        "tags": ["straggler", "faults"],
        "cluster": {"n_storage": 2, "storage_cores": 2, "n_replicas": 2},
        "workload": {"n_requests": 10, "request_mb": 16.0},
        "faults": {"library": "stragglers"},
        "straggler": {"enabled": True},
        "run": {"seeds": [0, 1], "baseline": "unprotected"},
    },
    "kitchen-sink-chaos": {
        "name": "kitchen-sink-chaos",
        "description": (
            "Everything at once: seeded chaos faults with a "
            "guaranteed early crash, a gold-vs-noisy tenant mix with "
            "token borrowing, straggler hedging over 2 replicas, and "
            "the full protection stack — the soak harness's world "
            "expressed as one scenario file."
        ),
        "tags": ["chaos", "smoke"],
        "cluster": {"n_storage": 2, "storage_cores": 2, "n_replicas": 2},
        "workload": {
            "request_mb": 32.0,
            "tenants": [
                {"name": "gold", "requests": 3, "weight": 2.0,
                 "rate_mb": 80.0, "burst_mb": 64.0, "slo_latency": 30.0},
                {"name": "noisy", "requests": 7, "rate_mb": 30.0,
                 "burst_mb": 64.0},
            ],
        },
        "faults": {
            "library": "chaos",
            "overrides": {"n_events": 4, "span": 1.5},
            "guarantee_crash": True,
        },
        "qos": {
            "max_queue_depth": 20,
            "breaker_threshold": 3,
            "breaker_cooldown": 0.3,
            "retry_budget": 320,
            "retry_replenish_rate": 4.0,
            "deadline": 60.0,
        },
        "straggler": {"enabled": True},
        "run": {"seeds": [0, 1], "baseline": "unprotected"},
        "invariants": {"slo_floor": "gold"},
    },
}


def get_scenario(name: str) -> Scenario:
    """One built-in scenario, fully validated."""
    try:
        data = BUILTIN[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(BUILTIN)}"
        ) from None
    return scenario_from_dict(data, source=name)


def list_scenarios() -> List[str]:
    """Every built-in scenario name, sorted."""
    return sorted(BUILTIN)


def smoke_scenarios() -> List[str]:
    """The fast CI subset (entries tagged ``smoke``), sorted."""
    return sorted(
        name for name, data in BUILTIN.items()
        if "smoke" in data.get("tags", [])
    )
