"""The declarative scenario schema: typed sections, strict validation.

A *scenario* is one self-contained description of an experiment: the
cluster shape, the workload and tenant mix, the arrival process, the
fault/chaos schedule, and the QoS / straggler / run knobs — everything
that today is hand-built in Python across the soak, fairness and
straggler harnesses, expressed as one plain mapping loadable from YAML
or JSON (``repro.scenario.loader``).

Parsing is *strict*: unknown keys and invalid values are rejected with
a :class:`ScenarioError` carrying the dotted path to the offending
field (``workload.tenants[1].rate_mb: must be positive``), so a typo
in a scenario file fails loudly at load time instead of silently
running the wrong experiment.  ``scenario_to_dict`` is the exact
inverse of ``scenario_from_dict`` — load → dump → load is the
identity, which the round-trip tests pin.

Units follow the human-authored convention: data sizes and rates are
megabytes (``*_mb`` keys); times are simulated seconds.  The compiler
(``repro.scenario.compile``) converts to the byte-denominated engine
objects (:class:`~repro.core.schemes.WorkloadSpec`,
:class:`~repro.qos.config.QoSConfig`, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Type, TypeVar

from repro.faults.schedule import SCENARIOS as FAULT_LIBRARY
from repro.faults.schedule import FaultKind

__all__ = [
    "ScenarioError",
    "ClusterShape",
    "ArrivalShape",
    "TenantShape",
    "WorkloadShape",
    "FaultEventShape",
    "FaultShape",
    "QoSShape",
    "RetryShape",
    "StragglerShape",
    "RunShape",
    "InvariantShape",
    "Scenario",
    "scenario_from_dict",
    "scenario_to_dict",
]


class ScenarioError(ValueError):
    """Invalid scenario data, naming the path to the offending field."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        self.reason = message
        super().__init__(f"{path}: {message}")


# -- primitive field parsers --------------------------------------------------
#
# Each parser is ``(value, path) -> parsed`` and raises ScenarioError
# with the given path on any mismatch.  Booleans are checked before
# ints (bool is a subclass of int and a scenario saying ``requests:
# true`` is a bug, not a demand of one).

_Parser = Callable[[Any, str], Any]


def _bool(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        raise ScenarioError(path, f"expected true/false, got {value!r}")
    return value


def _int(
    minimum: Optional[int] = None,
    maximum: Optional[int] = None,
    none_ok: bool = False,
) -> _Parser:
    def parse(value: Any, path: str) -> Optional[int]:
        if value is None and none_ok:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise ScenarioError(path, f"expected an integer, got {value!r}")
        if minimum is not None and value < minimum:
            raise ScenarioError(path, f"must be >= {minimum}, got {value}")
        if maximum is not None and value > maximum:
            raise ScenarioError(path, f"must be <= {maximum}, got {value}")
        return value
    return parse


def _num(
    minimum: Optional[float] = None,
    exclusive_minimum: Optional[float] = None,
    maximum: Optional[float] = None,
    none_ok: bool = False,
) -> _Parser:
    def parse(value: Any, path: str) -> Optional[float]:
        if value is None and none_ok:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScenarioError(path, f"expected a number, got {value!r}")
        out = float(value)
        if out != out or out in (float("inf"), float("-inf")):
            raise ScenarioError(path, f"must be finite, got {value!r}")
        if minimum is not None and out < minimum:
            raise ScenarioError(path, f"must be >= {minimum}, got {value}")
        if exclusive_minimum is not None and out <= exclusive_minimum:
            raise ScenarioError(path, f"must be > {exclusive_minimum}, got {value}")
        if maximum is not None and out > maximum:
            raise ScenarioError(path, f"must be <= {maximum}, got {value}")
        return out
    return parse


def _str(
    choices: Optional[Tuple[str, ...]] = None,
    none_ok: bool = False,
    nonempty: bool = False,
) -> _Parser:
    def parse(value: Any, path: str) -> Optional[str]:
        if value is None and none_ok:
            return None
        if not isinstance(value, str):
            raise ScenarioError(path, f"expected a string, got {value!r}")
        if nonempty and not value:
            raise ScenarioError(path, "must be non-empty")
        if choices is not None and value not in choices:
            raise ScenarioError(
                path, f"must be one of {sorted(choices)}, got {value!r}"
            )
        return value
    return parse


def _seq(item: _Parser, as_tuple: Type[tuple] = tuple) -> _Parser:
    def parse(value: Any, path: str) -> Tuple[Any, ...]:
        if not isinstance(value, (list, tuple)):
            raise ScenarioError(path, f"expected a list, got {value!r}")
        return as_tuple(
            item(entry, f"{path}[{i}]") for i, entry in enumerate(value)
        )
    return parse


def _scalar_map(value: Any, path: str) -> Dict[str, Any]:
    """A mapping of plain scalars (fault-factory overrides)."""
    if not isinstance(value, dict):
        raise ScenarioError(path, f"expected a mapping, got {value!r}")
    out: Dict[str, Any] = {}
    for key in sorted(value):
        if not isinstance(key, str):
            raise ScenarioError(path, f"keys must be strings, got {key!r}")
        entry = value[key]
        if entry is not None and not isinstance(entry, (bool, int, float, str)):
            raise ScenarioError(
                f"{path}.{key}", f"expected a scalar, got {entry!r}"
            )
        out[key] = entry
    return out


_T = TypeVar("_T")


def _section(
    cls: Type[_T], table: Mapping[str, _Parser]
) -> _Parser:
    """Parser for a nested section dataclass with a field table."""
    def parse(value: Any, path: str) -> _T:
        return _parse_fields(cls, table, value, path)
    return parse


def _parse_fields(
    cls: Type[_T], table: Mapping[str, _Parser], data: Any, path: str
) -> _T:
    if data is None:
        data = {}
    if not isinstance(data, dict):
        raise ScenarioError(path, f"expected a mapping, got {data!r}")
    known = set(table)
    for key in sorted(data, key=str):
        if not isinstance(key, str) or key not in known:
            raise ScenarioError(
                f"{path}.{key}",
                f"unknown key; known keys: {sorted(known)}",
            )
    kwargs = {
        key: table[key](data[key], f"{path}.{key}")
        for key in sorted(data)
    }
    try:
        return cls(**kwargs)
    except ScenarioError:
        raise
    except ValueError as err:
        # A section-level cross-field rule (raised by __post_init__).
        raise ScenarioError(path, str(err)) from None


# -- the sections -------------------------------------------------------------

@dataclass(frozen=True)
class ClusterShape:
    """How big the simulated machine is."""

    n_storage: int = 2
    storage_cores: int = 2
    compute_cores: int = 8
    n_replicas: int = 1

    def __post_init__(self) -> None:
        if self.n_replicas > self.n_storage:
            raise ValueError(
                f"n_replicas {self.n_replicas} exceeds n_storage "
                f"{self.n_storage}"
            )


_CLUSTER_FIELDS: Dict[str, _Parser] = {
    "n_storage": _int(minimum=1),
    "storage_cores": _int(minimum=1),
    "compute_cores": _int(minimum=1),
    "n_replicas": _int(minimum=1),
}


#: Arrival disciplines the compiler knows how to lower.
ARRIVAL_PROCESSES: Tuple[str, ...] = (
    "batch", "spaced", "poisson", "bursty", "diurnal",
)


@dataclass(frozen=True)
class ArrivalShape:
    """When requests arrive.

    ``batch``
        Everything at t=0 (the paper's experiments).
    ``spaced``
        Linear stagger: request *i* arrives at ``spacing * i``.
    ``poisson``
        Seeded exponential inter-arrivals at ``rate`` requests/s.
    ``bursty``
        NWP-workflow phase traffic (the DAOS paper's shape): requests
        split across ``phases`` synchronized bursts ``phase_gap``
        seconds apart, each request jittered uniformly within
        ``[0, phase_jitter]`` of its phase start.
    ``diurnal``
        A one-period sinusoidal intensity curve: arrival density peaks
        ``peak_ratio`` × the trough, spread over ``period`` seconds —
        the compressed shape of a million-user day.
    """

    process: str = "batch"
    spacing: float = 0.25
    rate: float = 8.0
    phases: int = 4
    phase_gap: float = 2.0
    phase_jitter: float = 0.05
    period: float = 16.0
    peak_ratio: float = 4.0

    def __post_init__(self) -> None:
        if self.peak_ratio < 1:
            raise ValueError("peak_ratio must be >= 1")


_ARRIVAL_FIELDS: Dict[str, _Parser] = {
    "process": _str(choices=ARRIVAL_PROCESSES),
    "spacing": _num(exclusive_minimum=0.0),
    "rate": _num(exclusive_minimum=0.0),
    "phases": _int(minimum=1),
    "phase_gap": _num(exclusive_minimum=0.0),
    "phase_jitter": _num(minimum=0.0),
    "period": _num(exclusive_minimum=0.0),
    "peak_ratio": _num(),
}


@dataclass(frozen=True)
class TenantShape:
    """One tenant's demand and QoS contract, in scenario units (MB)."""

    name: str
    requests: int = 1
    weight: float = 1.0
    rate_mb: Optional[float] = None
    burst_mb: Optional[float] = None
    ceiling_mb: Optional[float] = None
    slo_latency: Optional[float] = None


_TENANT_FIELDS: Dict[str, _Parser] = {
    "name": _str(nonempty=True),
    "requests": _int(minimum=0),
    "weight": _num(exclusive_minimum=0.0),
    "rate_mb": _num(exclusive_minimum=0.0, none_ok=True),
    "burst_mb": _num(exclusive_minimum=0.0, none_ok=True),
    "ceiling_mb": _num(exclusive_minimum=0.0, none_ok=True),
    "slo_latency": _num(exclusive_minimum=0.0, none_ok=True),
}


@dataclass(frozen=True)
class WorkloadShape:
    """What the clients ask for."""

    kernel: str = "gaussian2d"
    n_requests: int = 8
    request_mb: float = 16.0
    tenants: Tuple[TenantShape, ...] = ()
    background_readers: int = 0
    background_mb: float = 128.0
    arrival: ArrivalShape = field(default_factory=ArrivalShape)

    def __post_init__(self) -> None:
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")


_WORKLOAD_FIELDS: Dict[str, _Parser] = {
    "kernel": _str(nonempty=True),
    "n_requests": _int(minimum=1),
    "request_mb": _num(exclusive_minimum=0.0),
    "tenants": _seq(_section(TenantShape, _TENANT_FIELDS)),
    "background_readers": _int(minimum=0),
    "background_mb": _num(exclusive_minimum=0.0),
    "arrival": _section(ArrivalShape, _ARRIVAL_FIELDS),
}


#: FaultKind values accepted by explicit event lists.
FAULT_KINDS: Tuple[str, ...] = tuple(sorted(k.value for k in FaultKind))


@dataclass(frozen=True)
class FaultEventShape:
    """One explicit fault action (mirrors repro.faults.FaultEvent)."""

    at: float
    kind: str
    target: int = 0
    factor: float = 0.5
    duration: Optional[float] = None


_FAULT_EVENT_FIELDS: Dict[str, _Parser] = {
    "at": _num(minimum=0.0),
    "kind": _str(choices=FAULT_KINDS),
    "target": _int(minimum=0),
    "factor": _num(exclusive_minimum=0.0, maximum=1.0),
    "duration": _num(exclusive_minimum=0.0, none_ok=True),
}


@dataclass(frozen=True)
class FaultShape:
    """What breaks during the run.

    Either a named library scenario from :data:`repro.faults.SCENARIOS`
    (``library`` + factory-parameter ``overrides``) or an explicit
    ``events`` list — never both.  ``guarantee_crash`` appends an early
    crash/restart cycle when the (possibly seeded) schedule contains
    none, the soak harness's trick for making every seed feel a crash.
    """

    library: Optional[str] = None
    overrides: Dict[str, Any] = field(default_factory=dict)
    events: Tuple[FaultEventShape, ...] = ()
    horizon: Optional[float] = None
    guarantee_crash: bool = False

    def __post_init__(self) -> None:
        if self.library is not None and self.events:
            raise ValueError(
                "library and events are mutually exclusive — name a "
                "library scenario or list explicit events, not both"
            )
        if self.overrides and self.library is None:
            raise ValueError("overrides need a library scenario")
        if self.library is not None and self.library not in FAULT_LIBRARY:
            raise ValueError(
                f"unknown fault library scenario {self.library!r}; "
                f"known: {sorted(FAULT_LIBRARY)}"
            )

    @property
    def armed(self) -> bool:
        """Whether this scenario injects any faults at all."""
        return self.library is not None or bool(self.events)


_FAULT_FIELDS: Dict[str, _Parser] = {
    "library": _str(none_ok=True),
    "overrides": _scalar_map,
    "events": _seq(_section(FaultEventShape, _FAULT_EVENT_FIELDS)),
    "horizon": _num(exclusive_minimum=0.0, none_ok=True),
    "guarantee_crash": _bool,
}


@dataclass(frozen=True)
class QoSShape:
    """The overload-protection stack (mirrors repro.qos.QoSConfig).

    ``enabled: false`` disarms the whole stack — the scenario's
    *protected* runs then carry no QoS at all (used for pure
    contention studies).  Rates are MB/s, bursts MB.
    """

    enabled: bool = True
    max_queue_depth: Optional[int] = 16
    shed_active_first: bool = True
    intake_rate_mb: Optional[float] = None
    intake_burst_mb: Optional[float] = None
    pace_rate_mb: Optional[float] = None
    pace_burst_mb: Optional[float] = None
    breaker_threshold: int = 3
    breaker_cooldown: float = 1.0
    retry_budget: Optional[int] = 64
    retry_replenish_rate: Optional[float] = None
    deadline: Optional[float] = None
    tenant_borrow: bool = True
    tenant_lend_reserve: float = 0.5
    tenant_reclaim_fraction: float = 0.5


_QOS_FIELDS: Dict[str, _Parser] = {
    "enabled": _bool,
    "max_queue_depth": _int(minimum=1, none_ok=True),
    "shed_active_first": _bool,
    "intake_rate_mb": _num(exclusive_minimum=0.0, none_ok=True),
    "intake_burst_mb": _num(exclusive_minimum=0.0, none_ok=True),
    "pace_rate_mb": _num(exclusive_minimum=0.0, none_ok=True),
    "pace_burst_mb": _num(exclusive_minimum=0.0, none_ok=True),
    "breaker_threshold": _int(minimum=1),
    "breaker_cooldown": _num(exclusive_minimum=0.0),
    "retry_budget": _int(minimum=0, none_ok=True),
    "retry_replenish_rate": _num(exclusive_minimum=0.0, none_ok=True),
    "deadline": _num(exclusive_minimum=0.0, none_ok=True),
    "tenant_borrow": _bool,
    "tenant_lend_reserve": _num(minimum=0.0, maximum=1.0),
    "tenant_reclaim_fraction": _num(minimum=0.0, maximum=1.0),
}


@dataclass(frozen=True)
class RetryShape:
    """Client retry policy (mirrors repro.core.asc.RetryPolicy)."""

    timeout: float = 5.0
    max_retries: int = 5
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap: float = 4.0
    full_jitter: bool = False


_RETRY_FIELDS: Dict[str, _Parser] = {
    "timeout": _num(exclusive_minimum=0.0),
    "max_retries": _int(minimum=0),
    "backoff_base": _num(minimum=0.0),
    "backoff_factor": _num(minimum=1.0),
    "backoff_cap": _num(minimum=0.0),
    "full_jitter": _bool,
}


@dataclass(frozen=True)
class StragglerShape:
    """The straggler-aware client dispatcher (repro.straggler)."""

    enabled: bool = False
    hedge_delay_floor: float = 0.5
    hedge_quantile: float = 95.0


_STRAGGLER_FIELDS: Dict[str, _Parser] = {
    "enabled": _bool,
    "hedge_delay_floor": _num(exclusive_minimum=0.0),
    "hedge_quantile": _num(exclusive_minimum=0.0, maximum=100.0),
}


#: Baseline modes the runner can pair a protected run against.
BASELINE_MODES: Tuple[str, ...] = ("unprotected", "unpoliced", "none")


@dataclass(frozen=True)
class RunShape:
    """How the runner executes the scenario."""

    seeds: Tuple[int, ...] = (0,)
    schemes: Tuple[str, ...] = ("dosas",)
    baseline: str = "unprotected"
    max_virtual_time: float = 120.0
    sim_scheduler: str = "calendar"

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("need at least one seed")
        if not self.schemes:
            raise ValueError("need at least one scheme")
        if len(set(self.schemes)) != len(self.schemes):
            raise ValueError(f"duplicate schemes in {list(self.schemes)}")


_RUN_FIELDS: Dict[str, _Parser] = {
    "seeds": _seq(_int(minimum=0)),
    "schemes": _seq(_str(choices=("ts", "as", "dosas"))),
    "baseline": _str(choices=BASELINE_MODES),
    "max_virtual_time": _num(exclusive_minimum=0.0),
    "sim_scheduler": _str(choices=("calendar", "heap")),
}


@dataclass(frozen=True)
class InvariantShape:
    """Which invariant families the engine asserts on every run.

    ``slo_floor`` names the tenant whose SLO attainment the protected
    run must hold at or above the baseline run's (per seed) —
    the isolation claim of the noisy-neighbor scenarios.
    ``min_attainment`` adds an absolute floor on that tenant's
    protected attainment.
    """

    conservation: bool = True
    hedge: bool = True
    ledger: bool = True
    slo_floor: Optional[str] = None
    min_attainment: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_attainment is not None and self.slo_floor is None:
            raise ValueError("min_attainment needs slo_floor")


_INVARIANT_FIELDS: Dict[str, _Parser] = {
    "conservation": _bool,
    "hedge": _bool,
    "ledger": _bool,
    "slo_floor": _str(none_ok=True, nonempty=True),
    "min_attainment": _num(minimum=0.0, maximum=1.0, none_ok=True),
}


@dataclass(frozen=True)
class Scenario:
    """One fully validated scenario."""

    name: str
    description: str = ""
    tags: Tuple[str, ...] = ()
    cluster: ClusterShape = field(default_factory=ClusterShape)
    workload: WorkloadShape = field(default_factory=WorkloadShape)
    faults: FaultShape = field(default_factory=FaultShape)
    qos: QoSShape = field(default_factory=QoSShape)
    retry: Optional[RetryShape] = None
    straggler: StragglerShape = field(default_factory=StragglerShape)
    run: RunShape = field(default_factory=RunShape)
    invariants: InvariantShape = field(default_factory=InvariantShape)

    def __post_init__(self) -> None:
        # Cross-section rules, raised with the most specific path the
        # top-level parser can attach (see scenario_from_dict).
        if self.invariants.slo_floor is not None:
            match = [
                t for t in self.workload.tenants
                if t.name == self.invariants.slo_floor
            ]
            if not match:
                raise ScenarioError(
                    "invariants.slo_floor",
                    f"names tenant {self.invariants.slo_floor!r} but the "
                    "workload declares no such tenant",
                )
            if match[0].slo_latency is None:
                raise ScenarioError(
                    "invariants.slo_floor",
                    f"tenant {self.invariants.slo_floor!r} has no "
                    "slo_latency to measure attainment against",
                )
        if self.run.baseline == "unpoliced" and not self.workload.tenants:
            raise ScenarioError(
                "run.baseline",
                "'unpoliced' strips tenant rate guarantees, but the "
                "workload declares no tenants",
            )
        if self.cluster.n_replicas > 1 and self.cluster.n_replicas \
                > self.cluster.n_storage:
            raise ScenarioError(
                "cluster.n_replicas", "exceeds cluster.n_storage"
            )

    @property
    def per_node_requests(self) -> int:
        """Measured requests each storage node sees."""
        if self.workload.tenants:
            return sum(t.requests for t in self.workload.tenants)
        return self.workload.n_requests

    @property
    def total_requests(self) -> int:
        """Measured requests across the whole machine."""
        return self.per_node_requests * self.cluster.n_storage


_SCENARIO_FIELDS: Dict[str, _Parser] = {
    "name": _str(nonempty=True),
    "description": _str(),
    "tags": _seq(_str(nonempty=True)),
    "cluster": _section(ClusterShape, _CLUSTER_FIELDS),
    "workload": _section(WorkloadShape, _WORKLOAD_FIELDS),
    "faults": _section(FaultShape, _FAULT_FIELDS),
    "qos": _section(QoSShape, _QOS_FIELDS),
    "retry": _section(RetryShape, _RETRY_FIELDS),
    "straggler": _section(StragglerShape, _STRAGGLER_FIELDS),
    "run": _section(RunShape, _RUN_FIELDS),
    "invariants": _section(InvariantShape, _INVARIANT_FIELDS),
}


def scenario_from_dict(data: Any, source: str = "scenario") -> Scenario:
    """Parse and validate one scenario mapping.

    ``source`` prefixes every error path (the loader passes the file
    name), so a bad field reads
    ``nic.yaml: workload.request_mb: must be > 0.0``.
    """
    try:
        if not isinstance(data, dict):
            raise ScenarioError("", f"expected a mapping, got {data!r}")
        if "name" not in data:
            raise ScenarioError("name", "required key is missing")
        # ``retry`` is genuinely optional (None means "use the fault
        # schedule's suggested policy"), so it bypasses the generic
        # default-construction of absent sections.
        known = set(_SCENARIO_FIELDS)
        for key in sorted(data, key=str):
            if not isinstance(key, str) or key not in known:
                raise ScenarioError(
                    str(key), f"unknown key; known keys: {sorted(known)}"
                )
        kwargs: Dict[str, Any] = {}
        for key in sorted(data):
            if key == "retry" and data[key] is None:
                continue
            kwargs[key] = _SCENARIO_FIELDS[key](data[key], key)
        return Scenario(**kwargs)
    except ScenarioError as err:
        if source:
            raise ScenarioError(
                f"{source}: {err.path}" if err.path else source, err.reason
            ) from None
        raise


def _shape_to_dict(shape: Any) -> Any:
    if isinstance(shape, tuple):
        return [_shape_to_dict(entry) for entry in shape]
    if isinstance(shape, dict):
        return {key: shape[key] for key in sorted(shape)}
    if hasattr(shape, "__dataclass_fields__"):
        return {
            f.name: _shape_to_dict(getattr(shape, f.name))
            for f in dataclass_fields(shape)
        }
    return shape


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """The canonical plain-data rendering (inverse of from_dict).

    Every field is emitted, defaults included, in declaration order —
    so a dumped scenario is a complete, self-documenting record and
    load → dump → load is the identity.
    """
    out: Dict[str, Any] = {}
    for f in dataclass_fields(Scenario):
        value = getattr(scenario, f.name)
        out[f.name] = _shape_to_dict(value) if value is not None else None
    return out
