"""The fault injector: turns a :class:`FaultSchedule` into failures.

One :class:`FaultInjector` owns one deployment's I/O servers.  Its
timeline process sleeps until each scheduled :class:`FaultEvent` and
applies it through the failure hooks the rest of the stack exposes:

========================  ====================================================
kind                      mechanism
========================  ====================================================
``CRASH`` / ``RESTART``   :meth:`IOServer.crash` / :meth:`IOServer.restart`
``CPU_DEGRADE``           :meth:`CpuCores.derate`, then the runtime's
                          ``on_degrade`` checkpoint-and-migrate sweep
``CPU_RESTORE``           :meth:`CpuCores.restore` + a policy refresh
``LINK_DEGRADE``/…        :meth:`Link.degrade` / ``restore`` /
                          ``partition`` / ``heal``
``KERNEL_STALL``          the runtime's ``stall_running`` (kernels die
                          silently; client timeouts recover the work)
``PROBE_LOSS``            :meth:`NodeProber.suppress_until`
``SLOWDOWN`` / …``_END``  CPU derate *and* link degrade together (a
                          whole-box straggler), undone as a pair; a
                          server restart also clears both derates
========================  ====================================================

An event whose kind has no application rule raises
:class:`UnknownFaultKind` — schedules cannot half-apply silently.

Everything applied is recorded in :attr:`FaultInjector.log` for the
analysis layer.

:func:`run_with_watchdog` bounds a simulation in *virtual* time so a
recovery bug shows up as a :class:`WatchdogTimeout`, never as a hung
test run.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence

from repro.sim.engine import Environment
from repro.sim.events import AnyOf, Event
from repro.sim.exceptions import SimulationError
from repro.pvfs.server import IOServer
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule


class WatchdogTimeout(SimulationError):
    """The simulation failed to finish inside the virtual-time budget."""


class UnknownFaultKind(SimulationError):
    """The injector met a fault kind it has no application rule for.

    Raised instead of a bare ``ValueError`` so schedule/injector version
    skew (a schedule serialised by a newer library, say) fails with a
    catchable, named error rather than falling through silently.
    """

    def __init__(self, kind: object) -> None:
        super().__init__(
            f"unhandled fault kind {kind!r}; the injector knows "
            f"{sorted(k.value for k in FaultKind)}"
        )
        self.kind = kind


class FaultInjector:
    """Applies a schedule's events to a set of I/O servers."""

    def __init__(
        self,
        env: Environment,
        servers: Sequence[IOServer],
        schedule: FaultSchedule,
    ) -> None:
        if not servers:
            raise ValueError("need at least one I/O server to inject into")
        self.env = env
        self.servers = list(servers)
        self.schedule = schedule
        #: Applied events: dicts with time/kind/target/detail.
        self.log: List[Dict[str, Any]] = []
        self._started = False

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "FaultInjector":
        """Launch the timeline process (idempotent)."""
        if not self._started:
            self._started = True
            self.env.process(self._timeline())
        return self

    def _timeline(self) -> Generator[Event, Any, None]:
        for ev in self.schedule.timeline():
            if ev.at > self.env.now:
                yield self.env.timeout(ev.at - self.env.now)
            self._apply(ev)

    # -- application ---------------------------------------------------------
    def _server(self, ev: FaultEvent) -> IOServer:
        return self.servers[ev.target % len(self.servers)]

    @staticmethod
    def _runtime(server: IOServer) -> Any:
        """The node's Active I/O Runtime, if an ASS is attached.

        Duck-typed: anything exposing the failure hooks works, so the
        injector needs no import of (and no dependency on) the core
        layer.
        """
        handler = server.active_handler
        if handler is None:
            return None
        return getattr(handler, "runtime", handler)

    @staticmethod
    def _prober(server: IOServer) -> Any:
        """The estimator's prober for this node, when discoverable."""
        handler = server.active_handler
        estimator = getattr(handler, "estimator", None)
        return getattr(estimator, "prober", None)

    def _apply(self, ev: FaultEvent) -> None:
        server = self._server(ev)
        runtime = self._runtime(server)
        detail: Optional[str] = None
        kind = ev.kind

        if kind is FaultKind.CRASH:
            server.crash()
        elif kind is FaultKind.RESTART:
            server.restart()
        elif kind is FaultKind.CPU_DEGRADE:
            server.node.cpu.derate(ev.factor)
            detail = f"factor={ev.factor}"
            if runtime is not None and hasattr(runtime, "on_degrade"):
                runtime.on_degrade("node-degrade")
        elif kind is FaultKind.CPU_RESTORE:
            server.node.cpu.restore()
            if runtime is not None and hasattr(runtime, "refresh_policy"):
                runtime.refresh_policy()
        elif kind is FaultKind.LINK_DEGRADE:
            server.link.degrade(ev.factor)
            detail = f"factor={ev.factor}"
        elif kind is FaultKind.LINK_RESTORE:
            server.link.restore()
        elif kind is FaultKind.PARTITION:
            server.link.partition()
        elif kind is FaultKind.HEAL:
            server.link.heal()
        elif kind is FaultKind.KERNEL_STALL:
            stalled = 0
            if runtime is not None and hasattr(runtime, "stall_running"):
                stalled = runtime.stall_running()
            detail = f"stalled={stalled}"
        elif kind is FaultKind.PROBE_LOSS:
            prober = self._prober(server)
            if prober is not None:
                prober.suppress_until(self.env.now + float(ev.duration))
                detail = f"until={self.env.now + float(ev.duration):.3f}"
            else:
                detail = "no-prober"
        elif kind is FaultKind.SLOWDOWN:
            # Whole-box straggler: compute and NIC degrade together.
            server.node.cpu.derate(ev.factor)
            server.link.degrade(ev.factor)
            detail = f"factor={ev.factor}"
            if runtime is not None and hasattr(runtime, "on_degrade"):
                runtime.on_degrade("slowdown")
        elif kind is FaultKind.SLOWDOWN_END:
            server.node.cpu.restore()
            server.link.restore()
            if runtime is not None and hasattr(runtime, "refresh_policy"):
                runtime.refresh_policy()
        else:
            raise UnknownFaultKind(kind)

        entry: Dict[str, Any] = {
            "time": self.env.now,
            "kind": kind.value,
            "target": ev.target % len(self.servers),
        }
        if detail:
            entry["detail"] = detail
        self.log.append(entry)
        tr = self.env.tracer
        if tr.enabled:
            if detail:
                tr.instant(
                    self.env.now, "fault", "faults",
                    fault=kind.value, target=server.node.name, detail=detail,
                )
            else:
                tr.instant(
                    self.env.now, "fault", "faults",
                    fault=kind.value, target=server.node.name,
                )


def run_with_watchdog(env: Environment, done: Event, deadline: float) -> Any:
    """Run until ``done`` or declare a deadlock after ``deadline``.

    The deadline is *virtual* seconds.  Returns ``done``'s value on
    success; raises :class:`WatchdogTimeout` when the deadline passes
    first — which is how the recovery-invariant tests turn a lost
    reply or a stuck retry loop into a crisp failure instead of a
    simulation that silently runs out of events.
    """
    if deadline <= 0:
        raise ValueError("deadline must be positive")
    timer = env.timeout(deadline)
    env.run(until=AnyOf(env, [done, timer]))
    if not done.processed:
        raise WatchdogTimeout(
            f"simulation did not complete within {deadline} virtual seconds "
            f"(now={env.now})"
        )
    return done.value
