"""Deterministic fault injection and the failure scenario library.

The DOSAS paper treats resource contention as the enemy; this
subpackage extends the reproduction with the *failure* side of a real
deployment — crashed storage nodes, straggler CPUs, cut links, hung
kernels and lost probes — so the recovery machinery (client retry with
checkpointed re-issue, runtime checkpoint-and-migrate, estimator
demotion on stale telemetry) can be exercised end to end.

Layers (bottom-up):

``repro.sim``
    ``Failure`` interrupts, ``Resource.suspend``/``resume_service``.
``repro.cluster``
    ``CpuCores.derate``, ``Link.degrade/partition/heal``,
    ``NodeProber.suppress_until`` + stale probes.
``repro.pvfs``
    ``IOServer.crash/restart/cancel``, failed replies.
``repro.core``
    Runtime ``on_crash/on_degrade/abort/stall_running``; ASC
    ``RetryPolicy`` recovery; estimator staleness demotion.
``repro.faults`` (this package)
    :class:`FaultSchedule` + :class:`FaultInjector` + the scenario
    library + the bounded-virtual-time watchdog.

See ``docs/failure_model.md`` for the full design.
"""

from repro.faults.schedule import (
    SCENARIOS,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    FaultScheduleError,
    chaos,
    crash_restart,
    degraded_node,
    kernel_stall,
    partition,
    probe_loss,
    scenario,
    slowdown,
    stragglers,
    with_guaranteed_crash,
)
from repro.faults.injector import (
    FaultInjector,
    UnknownFaultKind,
    WatchdogTimeout,
    run_with_watchdog,
)

__all__ = [
    "FaultEvent",
    "FaultScheduleError",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "SCENARIOS",
    "UnknownFaultKind",
    "WatchdogTimeout",
    "chaos",
    "crash_restart",
    "degraded_node",
    "kernel_stall",
    "partition",
    "probe_loss",
    "run_with_watchdog",
    "scenario",
    "slowdown",
    "stragglers",
    "with_guaranteed_crash",
]
