"""Fault schedules: deterministic, seeded descriptions of *what breaks when*.

A :class:`FaultSchedule` is pure data — a named, ordered list of
:class:`FaultEvent` records plus the client-side
:class:`~repro.core.asc.RetryPolicy` and watchdog horizon suggested for
running under it.  The :class:`~repro.faults.injector.FaultInjector`
turns the schedule into simulation processes that manipulate storage
nodes, links, runtimes and probers through their failure hooks.

The scenario library (:data:`SCENARIOS` / :func:`scenario`) provides
the canonical end-to-end failure stories the tests, the CLI
(``repro run --faults <name>``) and the degradation benchmark share:

``degraded-node``
    One storage node becomes a straggler (CPU derate) mid-run, then
    recovers.  Running kernels checkpoint and migrate; DOSAS demotes
    new work away from the slow node while AS keeps offloading to it.
``crash-restart``
    One storage node dies, failing its queue, and comes back later.
    Clients retry with exponential backoff until the restart.
``partition``
    One node's NIC is cut and later healed; in-flight transfers stall.
``kernel-stall``
    Every kernel running at the fault instant hangs silently — only
    the client timeout can recover the work.
``probe-loss``
    The Contention Estimator's probes are lost for a window; stale
    telemetry must read as degradation (demote to TS).
``slowdown``
    One server turns whole-box straggler — CPU *and* NIC at
    ``factor`` × nominal — then recovers (or stands, with
    ``duration=None``).
``stragglers``
    A seeded degraded-server model: persistent per-server speed
    factors plus transient slowdown bursts, the injection scenario the
    straggler-aware dispatcher (``repro.straggler``) is scored against.
``chaos``
    A seeded random mix of the above for soak-style testing.

Everything is deterministic: the only randomness is a
``random.Random(seed)`` inside :func:`chaos` / :func:`stragglers`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.asc import RetryPolicy


class FaultKind(enum.Enum):
    """Primitive fault actions the injector knows how to apply."""

    #: Hard-fail a storage node: queue dies, intake stops.
    CRASH = "crash"
    #: Bring a crashed node back (empty queue).
    RESTART = "restart"
    #: Slow the node's cores to ``factor`` × nominal (straggler).
    CPU_DEGRADE = "cpu-degrade"
    #: Return the cores to nominal speed.
    CPU_RESTORE = "cpu-restore"
    #: Reduce the node's NIC to ``factor`` × nominal bandwidth.
    LINK_DEGRADE = "link-degrade"
    #: Return the NIC to nominal bandwidth.
    LINK_RESTORE = "link-restore"
    #: Cut the node's NIC entirely.
    PARTITION = "partition"
    #: Reconnect a partitioned NIC.
    HEAL = "heal"
    #: Hang every kernel running on the node right now (one-shot).
    KERNEL_STALL = "kernel-stall"
    #: Lose the estimator's probes for ``duration`` seconds.
    PROBE_LOSS = "probe-loss"
    #: Whole-server straggler: cores *and* NIC run at ``factor`` ×
    #: nominal (thermal throttling, a noisy co-tenant, a dying disk
    #: controller — everything on the box gets slow together).
    SLOWDOWN = "slowdown"
    #: Return a slowed server to nominal speed on every resource.
    SLOWDOWN_END = "slowdown-end"


#: kind → the kind that undoes it (for ``duration`` expansion).
_REVERSE: Dict[FaultKind, FaultKind] = {
    FaultKind.CRASH: FaultKind.RESTART,
    FaultKind.CPU_DEGRADE: FaultKind.CPU_RESTORE,
    FaultKind.LINK_DEGRADE: FaultKind.LINK_RESTORE,
    FaultKind.PARTITION: FaultKind.HEAL,
    FaultKind.SLOWDOWN: FaultKind.SLOWDOWN_END,
}

#: reverse kind → the forward kind it undoes (pairing validation).
_FORWARD: Dict[FaultKind, FaultKind] = {v: k for k, v in _REVERSE.items()}


class FaultScheduleError(ValueError):
    """A :class:`FaultSchedule` that cannot mean anything at runtime.

    Raised at *construction*, naming the offending event, instead of
    letting the injector hit undefined behaviour mid-run (restoring a
    server that was never slowed, crashing an already-crashing server
    twice in the same instant, an end event that fires before its
    start).
    """


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    Attributes
    ----------
    at:
        Simulated time the action fires.
    kind:
        What happens (see :class:`FaultKind`).
    target:
        Storage-node index the action hits (modulo the deployment
        size, so schedules written for one topology run on any).
    factor:
        Derate factor for CPU/link degradation, in (0, 1].
    duration:
        For reversible kinds: the matching restore fires at
        ``at + duration`` automatically.  For ``PROBE_LOSS`` it is the
        suppression window itself.  ``None`` leaves the fault standing
        (schedule an explicit reverse event to undo it).
    """

    at: float
    kind: FaultKind
    target: int = 0
    factor: float = 0.5
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at}")
        if not 0 < self.factor <= 1:
            raise ValueError(f"factor must lie in (0, 1], got {self.factor}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.kind is FaultKind.PROBE_LOSS and self.duration is None:
            raise ValueError("probe-loss needs a duration")


@dataclass(frozen=True)
class FaultSchedule:
    """A named, immutable fault timeline plus suggested run parameters.

    Attributes
    ----------
    name:
        Scenario name (shows up in logs and result records).
    events:
        The fault actions, in any order; :meth:`timeline` sorts them.
    retry:
        Client-side retry policy sized for this scenario.
    horizon:
        Watchdog deadline in simulated seconds: a run that has not
        completed by then is declared deadlocked.
    stale_probe_timeout:
        Suggested estimator staleness budget (see
        :class:`~repro.core.estimator.DOSASEstimator`).
    """

    name: str
    events: Tuple[FaultEvent, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    horizon: float = 300.0
    stale_probe_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        self._validate_events()

    def _validate_events(self) -> None:
        """Reject schedules the injector cannot execute meaningfully.

        Three classes of nonsense are caught here, with a
        :class:`FaultScheduleError` naming the offending event:

        - *duplicate same-instant crash*: two ``CRASH`` events hitting
          one server at one instant (the second would fail an
          already-dead queue);
        - *unpaired reverse*: an explicit restore/heal/end event whose
          target never suffers the matching forward fault at all;
        - *out-of-order reverse*: the matching forward fault exists but
          only fires strictly *after* the reverse event — the schedule
          was written backwards.

        The check is deliberately an under-approximation: it does not
        model consumption (two ends for one start) because duration
        expansion can legitimately stack automatic and explicit
        restores; it only rejects events that can never pair.
        """
        crashes: set = set()
        for ev in self.events:
            if ev.kind is FaultKind.CRASH:
                key = (ev.at, ev.target)
                if key in crashes:
                    raise FaultScheduleError(
                        f"{self.name!r}: duplicate crash for target "
                        f"{ev.target} at t={ev.at} — a server cannot "
                        "crash twice in the same instant"
                    )
                crashes.add(key)
        for ev in self.events:
            forward = _FORWARD.get(ev.kind)
            if forward is None:
                continue
            starts = [
                e.at for e in self.events
                if e.kind is forward and e.target == ev.target
            ]
            if not starts:
                raise FaultScheduleError(
                    f"{self.name!r}: unpaired {ev.kind.value} for target "
                    f"{ev.target} at t={ev.at} — no {forward.value} "
                    "event ever hits that target"
                )
            if min(starts) > ev.at:
                raise FaultScheduleError(
                    f"{self.name!r}: out-of-order {ev.kind.value} for "
                    f"target {ev.target} at t={ev.at} — the earliest "
                    f"{forward.value} on that target fires later "
                    f"(t={min(starts)})"
                )

    def timeline(self) -> Tuple[FaultEvent, ...]:
        """Primitive actions in firing order, ``duration`` expanded.

        Reversible events with a duration contribute their automatic
        restore action; ``PROBE_LOSS`` keeps its duration (consumed by
        the injector directly).  Ties break on (kind, target) so the
        ordering — and therefore the whole run — is deterministic.
        """
        expanded: List[FaultEvent] = []
        for ev in self.events:
            expanded.append(ev)
            if ev.duration is not None and ev.kind in _REVERSE:
                expanded.append(
                    FaultEvent(
                        at=ev.at + ev.duration,
                        kind=_REVERSE[ev.kind],
                        target=ev.target,
                    )
                )
        expanded.sort(key=lambda e: (e.at, e.kind.value, e.target))
        return tuple(expanded)


# -- scenario library ---------------------------------------------------------

def degraded_node(
    at: float = 1.0,
    duration: Optional[float] = None,
    factor: float = 0.25,
    target: int = 0,
    retry: Optional[RetryPolicy] = None,
    horizon: float = 300.0,
) -> FaultSchedule:
    """One storage node turns straggler; optionally recovers later."""
    return FaultSchedule(
        name="degraded-node",
        events=(
            FaultEvent(
                at=at, kind=FaultKind.CPU_DEGRADE, target=target,
                factor=factor, duration=duration,
            ),
        ),
        retry=retry or RetryPolicy(timeout=30.0, max_retries=4),
        horizon=horizon,
    )


def crash_restart(
    at: float = 1.0,
    downtime: float = 2.0,
    target: int = 0,
    retry: Optional[RetryPolicy] = None,
    horizon: float = 300.0,
) -> FaultSchedule:
    """One storage node dies at ``at`` and restarts ``downtime`` later."""
    return FaultSchedule(
        name="crash-restart",
        events=(
            FaultEvent(
                at=at, kind=FaultKind.CRASH, target=target, duration=downtime
            ),
        ),
        retry=retry
        or RetryPolicy(timeout=5.0, max_retries=6, backoff_base=0.25,
                       backoff_cap=2.0),
        horizon=horizon,
    )


def partition(
    at: float = 1.0,
    duration: float = 2.0,
    target: int = 0,
    retry: Optional[RetryPolicy] = None,
    horizon: float = 300.0,
) -> FaultSchedule:
    """One node's NIC is cut for ``duration`` seconds, then healed."""
    return FaultSchedule(
        name="partition",
        events=(
            FaultEvent(
                at=at, kind=FaultKind.PARTITION, target=target, duration=duration
            ),
        ),
        retry=retry
        or RetryPolicy(timeout=max(4.0, 1.5 * duration), max_retries=4,
                       backoff_base=0.5, backoff_cap=2.0),
        horizon=horizon,
    )


def kernel_stall(
    at: float = 1.0,
    target: int = 0,
    retry: Optional[RetryPolicy] = None,
    horizon: float = 300.0,
) -> FaultSchedule:
    """Kernels running at ``at`` hang; only client timeouts recover."""
    return FaultSchedule(
        name="kernel-stall",
        events=(FaultEvent(at=at, kind=FaultKind.KERNEL_STALL, target=target),),
        retry=retry
        or RetryPolicy(timeout=4.0, max_retries=4, backoff_base=0.25,
                       backoff_cap=1.0),
        horizon=horizon,
    )


def probe_loss(
    at: float = 1.0,
    duration: float = 3.0,
    target: int = 0,
    retry: Optional[RetryPolicy] = None,
    horizon: float = 300.0,
    stale_probe_timeout: float = 0.5,
) -> FaultSchedule:
    """Estimator probes are lost for a window; stale state must demote."""
    return FaultSchedule(
        name="probe-loss",
        events=(
            FaultEvent(
                at=at, kind=FaultKind.PROBE_LOSS, target=target, duration=duration
            ),
        ),
        retry=retry or RetryPolicy(timeout=30.0, max_retries=2),
        horizon=horizon,
        stale_probe_timeout=stale_probe_timeout,
    )


def slowdown(
    at: float = 1.0,
    duration: Optional[float] = 2.0,
    factor: float = 0.25,
    target: int = 0,
    retry: Optional[RetryPolicy] = None,
    horizon: float = 300.0,
) -> FaultSchedule:
    """One server turns whole-box straggler (CPU *and* NIC derated).

    ``duration=None`` leaves the server slow for the rest of the run —
    a persistent straggler; otherwise the matching ``SLOWDOWN_END``
    fires automatically.
    """
    return FaultSchedule(
        name="slowdown",
        events=(
            FaultEvent(
                at=at, kind=FaultKind.SLOWDOWN, target=target,
                factor=factor, duration=duration,
            ),
        ),
        retry=retry or RetryPolicy(timeout=30.0, max_retries=4),
        horizon=horizon,
    )


def stragglers(
    seed: int = 0,
    n_servers: int = 1,
    persistent_fraction: float = 0.25,
    persistent_factor_range: Tuple[float, float] = (0.2, 0.5),
    n_transient: int = 2,
    transient_factor_range: Tuple[float, float] = (0.25, 0.7),
    transient_duration_range: Tuple[float, float] = (0.5, 2.0),
    span: float = 4.0,
    at: float = 0.0,
    retry: Optional[RetryPolicy] = None,
    horizon: float = 600.0,
) -> FaultSchedule:
    """Seeded degraded-server model: the straggler-injection scenario.

    Draws a *persistent* per-server slowdown for roughly
    ``persistent_fraction`` of the deployment (at least one server when
    the fraction is positive) firing at ``at`` and standing for the
    whole run, plus ``n_transient`` self-healing ``SLOWDOWN`` events
    scattered over ``span`` seconds — the mix the straggler-aware
    client dispatcher (``repro.straggler``) is evaluated against.
    Everything is drawn from one ``random.Random(seed)``, so the same
    seed always produces the same degradation story.
    """
    if n_servers <= 0:
        raise ValueError("n_servers must be positive")
    if not 0 <= persistent_fraction <= 1:
        raise ValueError("persistent_fraction must lie in [0, 1]")
    rng = random.Random(seed)
    events: List[FaultEvent] = []
    n_persistent = round(persistent_fraction * n_servers)
    if persistent_fraction > 0:
        n_persistent = max(1, n_persistent)
    n_persistent = min(n_persistent, n_servers)
    slow = rng.sample(range(n_servers), n_persistent)
    for target in slow:
        events.append(
            FaultEvent(
                at=at,
                kind=FaultKind.SLOWDOWN,
                target=target,
                factor=round(rng.uniform(*persistent_factor_range), 3),
            )
        )
    for _ in range(n_transient):
        events.append(
            FaultEvent(
                at=round(rng.uniform(max(at, 0.1), max(at, 0.1) + span), 3),
                kind=FaultKind.SLOWDOWN,
                target=rng.randrange(n_servers),
                factor=round(rng.uniform(*transient_factor_range), 3),
                duration=round(rng.uniform(*transient_duration_range), 3),
            )
        )
    return FaultSchedule(
        name=f"stragglers-{seed}",
        events=tuple(events),
        retry=retry or RetryPolicy(timeout=30.0, max_retries=4),
        horizon=horizon,
    )


def chaos(
    seed: int = 0,
    n_events: int = 6,
    span: float = 8.0,
    n_targets: int = 1,
    retry: Optional[RetryPolicy] = None,
    horizon: float = 600.0,
) -> FaultSchedule:
    """A seeded random mix of recoverable faults over ``span`` seconds.

    Only self-healing events are drawn (everything carries a duration),
    so any workload eventually completes — the recovery-invariant test
    leans on that.
    """
    rng = random.Random(seed)
    kinds = [
        FaultKind.CRASH,
        FaultKind.CPU_DEGRADE,
        FaultKind.LINK_DEGRADE,
        FaultKind.PARTITION,
        FaultKind.KERNEL_STALL,
    ]
    events: List[FaultEvent] = []
    for _ in range(n_events):
        kind = rng.choice(kinds)
        at = round(rng.uniform(0.2, span), 3)
        target = rng.randrange(max(1, n_targets))
        if kind is FaultKind.KERNEL_STALL:
            events.append(FaultEvent(at=at, kind=kind, target=target))
        else:
            events.append(
                FaultEvent(
                    at=at,
                    kind=kind,
                    target=target,
                    factor=round(rng.uniform(0.2, 0.8), 3),
                    duration=round(rng.uniform(0.5, 2.5), 3),
                )
            )
    return FaultSchedule(
        name=f"chaos-{seed}",
        events=tuple(events),
        retry=retry
        or RetryPolicy(timeout=4.0, max_retries=8, backoff_base=0.25,
                       backoff_cap=2.0),
        horizon=horizon,
    )


def with_guaranteed_crash(
    schedule: FaultSchedule,
    at: float = 0.05,
    downtime: float = 0.4,
    target: int = 0,
    before: Optional[float] = None,
) -> FaultSchedule:
    """``schedule`` with at least one crash/restart cycle.

    The chaos generator draws kinds at random, so a given seed may
    produce no crash at all — or only one so late the workload has
    already finished; soak runs that assert crash-recovery invariants
    (retry storms, breaker trips, conservation under ``ServerCrashed``)
    append one deterministically when no crash fires by ``before``
    (``None`` accepts a crash at any time).
    """
    cutoff = float("inf") if before is None else before
    if any(
        e.kind is FaultKind.CRASH and e.at <= cutoff for e in schedule.events
    ):
        return schedule
    crash = FaultEvent(
        at=at, kind=FaultKind.CRASH, target=target, duration=downtime
    )
    return replace(schedule, events=schedule.events + (crash,))


#: name → factory.  ``scenario(name, **overrides)`` is the front door.
SCENARIOS: Dict[str, Callable[..., FaultSchedule]] = {
    "degraded-node": degraded_node,
    "crash-restart": crash_restart,
    "partition": partition,
    "kernel-stall": kernel_stall,
    "probe-loss": probe_loss,
    "slowdown": slowdown,
    "stragglers": stragglers,
    "chaos": chaos,
}


def scenario(name: str, **overrides: Any) -> FaultSchedule:
    """Build a library scenario, overriding factory parameters.

    ``scenario("crash-restart", at=0.5, downtime=1.0)`` — tests use the
    overrides to scale fault timings to small workloads.
    """
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
    return factory(**overrides)
