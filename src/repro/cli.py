"""Command-line interface for the DOSAS reproduction.

Regenerate any paper artefact, run custom experiments, calibrate
kernels, and record/replay workload traces without writing code:

.. code-block:: console

    $ python -m repro figure 7                 # DOSAS vs AS vs TS, 128 MB
    $ python -m repro figure 7 --chart         # as a terminal line chart
    $ python -m repro table 4                  # decision accuracy
    $ python -m repro run --kernel sum --requests 16 --mb 512
    $ python -m repro run --faults degraded-node   # same, under failures
    $ python -m repro run --scheme dosas --trace t.json  # record a trace
    $ python -m repro trace validate t.json        # …and check it
    $ python -m repro trace critical-path t.json   # per-request breakdown
    $ python -m repro calibrate                # Table III on this host
    $ python -m repro sweep --kernel gaussian2d --mb 256
    $ python -m repro sweep --jobs 4 --cache .sweep-cache  # parallel + memoised
    $ python -m repro headline                 # the 40 % / 21 % claims
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.cluster.config import GB, MB
from repro.core import Scheme, WorkloadSpec, run_scheme
from repro.analysis import (
    bandwidth_figure,
    figure_series,
    format_table,
    headline_improvements,
    render_series,
    table3_rows,
)
from repro.analysis.charts import render_chart
from repro.analysis.figures import table4_accuracy, table4_rows
from repro.kernels.registry import list_kernels

#: figure id → (description, driver kwargs)
FIGURES: Dict[int, dict] = {
    2: dict(kernel="gaussian2d", size=128 * MB, schemes=(Scheme.TS, Scheme.AS),
            title="Figure 2 — Gaussian TS vs AS, 128 MB (motivation)"),
    4: dict(kernel="gaussian2d", size=128 * MB, schemes=(Scheme.TS, Scheme.AS),
            title="Figure 4 — Gaussian TS vs AS, 128 MB"),
    5: dict(kernel="gaussian2d", size=512 * MB, schemes=(Scheme.TS, Scheme.AS),
            title="Figure 5 — Gaussian TS vs AS, 512 MB"),
    6: dict(kernel="sum", size=128 * MB, schemes=(Scheme.TS, Scheme.AS),
            title="Figure 6 — SUM TS vs AS, 128 MB"),
    7: dict(kernel="gaussian2d", size=128 * MB,
            schemes=(Scheme.TS, Scheme.AS, Scheme.DOSAS),
            title="Figure 7 — DOSAS vs AS vs TS, 128 MB"),
    8: dict(kernel="gaussian2d", size=256 * MB,
            schemes=(Scheme.TS, Scheme.AS, Scheme.DOSAS),
            title="Figure 8 — DOSAS vs AS vs TS, 256 MB"),
    9: dict(kernel="gaussian2d", size=512 * MB,
            schemes=(Scheme.TS, Scheme.AS, Scheme.DOSAS),
            title="Figure 9 — DOSAS vs AS vs TS, 512 MB"),
    10: dict(kernel="gaussian2d", size=1 * GB,
             schemes=(Scheme.TS, Scheme.AS, Scheme.DOSAS),
             title="Figure 10 — DOSAS vs AS vs TS, 1 GB"),
    11: dict(bandwidth=True, size=256 * MB,
             title="Figure 11 — achieved bandwidth, 256 MB"),
    12: dict(bandwidth=True, size=512 * MB,
             title="Figure 12 — achieved bandwidth, 512 MB"),
}


def _emit_series(title: str, series: dict, chart: bool, out,
                 as_json: bool = False) -> None:
    if as_json:
        import json

        print(json.dumps({"title": title, "series": series}), file=out)
    elif chart:
        print(render_chart(title, series), file=out)
    else:
        print(render_series(title, "n_requests", series), file=out)


def cmd_figure(args, out=None) -> int:
    """Regenerate one of the paper's figures."""
    out = out if out is not None else sys.stdout
    spec = FIGURES.get(args.number)
    if spec is None:
        print(f"error: no figure {args.number}; choose from "
              f"{sorted(FIGURES)}", file=sys.stderr)
        return 2
    jobs = getattr(args, "jobs", 1)
    cache_dir = getattr(args, "cache", None)
    if spec.get("bandwidth"):
        series = bandwidth_figure(spec["size"], jobs=jobs, cache_dir=cache_dir)
    else:
        series = figure_series(spec["kernel"], spec["size"],
                               list(spec["schemes"]),
                               jobs=jobs, cache_dir=cache_dir)
    _emit_series(spec["title"], series, args.chart, out,
                 as_json=getattr(args, "json", False))
    return 0


def cmd_table(args, out=None) -> int:
    """Regenerate Table III or Table IV."""
    out = out if out is not None else sys.stdout
    if args.number == 3:
        rows = table3_rows()
        print(format_table(
            ["kernel", "measured MB/s", "paper MB/s"],
            [[r["kernel"], r["measured_mb_s"], r["paper_mb_s"] or "-"]
             for r in rows],
        ), file=out)
        return 0
    if args.number == 4:
        rows = table4_rows(jitter=True)
        print(format_table(
            ["#", "situation", "algorithm", "practice", "judgment"],
            [[r.situation, r.label, r.algorithm, r.practice,
              "TRUE" if r.judgment else "FALSE"] for r in rows],
        ), file=out)
        print(f"accuracy: {table4_accuracy(rows):.1%} (paper: 95%)", file=out)
        return 0
    print("error: only tables 3 and 4 exist in the paper", file=sys.stderr)
    return 2


def _fresh_tracer():
    """A Tracer for one scheme's run, with request ids rebased.

    Restarting the rid/parent counters before each run keeps exported
    traces deterministic (same seed ⇒ byte-identical file) and makes
    rids comparable across schemes in a multi-run export.
    """
    from repro.obs import Tracer
    from repro.pvfs.client import reset_parent_ids
    from repro.pvfs.requests import reset_request_ids

    reset_request_ids()
    reset_parent_ids()
    return Tracer()


def _write_trace(path: str, tracers, out) -> None:
    from repro.obs import write_chrome_trace

    write_chrome_trace(path, tracers)
    n = sum(len(t.events) for t in tracers.values())
    print(f"wrote {n} span events to {path}", file=out)


def _parse_tenants(specs: Sequence[str]):
    """``NAME:REQUESTS[:RATE_MB[:SLO_S]]`` strings → TenantSpec tuple.

    A missing rate leaves the tenant unpoliced (depth/intake checks
    only); a missing SLO disables attainment accounting.
    """
    from repro.qos import TenantSpec

    tenants = []
    for text in specs:
        parts = text.split(":")
        if len(parts) not in (2, 3, 4):
            raise ValueError(
                f"tenant spec {text!r} is not NAME:REQUESTS[:RATE_MB[:SLO_S]]"
            )
        name, requests = parts[0], int(parts[1])
        rate = float(parts[2]) * MB if len(parts) >= 3 else None
        slo = float(parts[3]) if len(parts) == 4 else None
        tenants.append(
            TenantSpec(name=name, requests=requests, rate=rate, slo_latency=slo)
        )
    return tuple(tenants)


def _tenant_rows(r) -> List[list]:
    rows = []
    for name, t in r.qos_stats["tenants"]["per_tenant"].items():
        ledger = t.get("ledger", {})
        att = t["slo_attainment"]
        rows.append([
            name, t["requests"], f"{t['goodput'] / MB:.1f}",
            "-" if att is None else f"{att:.0%}",
            f"{t['latency_max']:.2f}" if t["latency_max"] is not None else "-",
            f"{ledger.get('borrowed_bytes', 0.0) / MB:.1f}",
            f"{ledger.get('lent_bytes', 0.0) / MB:.1f}",
            int(ledger.get("denied", 0)),
        ])
    return rows


def cmd_run(args, out=None) -> int:
    """Run one custom workload point under all three schemes.

    With ``--faults <scenario>`` the point runs under that failure
    schedule (see ``repro.faults``) and the table switches to the
    fault metrics: goodput, retries, recovery latency, wasted work.
    With ``--trace FILE`` each scheme's run is recorded and the merged
    Chrome-trace export written to FILE (``--scheme`` restricts the
    run to one scheme).  With ``--tenants`` the workload becomes a
    multi-tenant mix, per-tenant policing with token borrowing is
    armed (``--no-borrow`` pins the static partition) and a per-tenant
    table follows each scheme's row.
    """
    out = out if out is not None else sys.stdout
    if args.kernel not in list_kernels():
        print(f"error: unknown kernel {args.kernel!r}; known: "
              f"{list_kernels()}", file=sys.stderr)
        return 2
    if args.replicas > args.storage_nodes:
        print("error: --replicas cannot exceed --storage-nodes",
              file=sys.stderr)
        return 2
    tenants = ()
    if getattr(args, "tenants", None):
        if getattr(args, "faults", None):
            print("error: --tenants and --faults cannot be combined "
                  "(use 'repro soak --tenants' for tenants under faults)",
                  file=sys.stderr)
            return 2
        try:
            tenants = _parse_tenants(args.tenants)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
    spec = WorkloadSpec(
        kernel=args.kernel,
        n_requests=args.requests,
        request_bytes=args.mb * MB,
        n_storage=args.storage_nodes,
        jitter=args.jitter,
        seed=args.seed,
        kernel_slots=args.kernel_slots,
        straggler_scheduler=args.straggler,
        n_replicas=args.replicas,
        tenants=tenants,
    )
    if getattr(args, "faults", None):
        return _run_with_faults(args, spec, out)
    qos = retry = None
    if tenants:
        # Tenant-denied work recovers through the retry machinery, so
        # policed runs always arm a patient policy and an effectively
        # boundless budget — fairness, not fault tolerance, is shown.
        from repro.core.asc import RetryPolicy
        from repro.qos import QoSConfig

        qos = QoSConfig(
            max_queue_depth=8 * max(1, spec.total_requests // spec.n_storage),
            breaker_threshold=10_000,
            retry_budget=None,
            tenant_borrow=not args.no_borrow,
        )
        retry = RetryPolicy(timeout=60.0, max_retries=24, backoff_base=0.25,
                            backoff_factor=2.0, backoff_cap=2.0)
    schemes = [Scheme(args.scheme)] if getattr(args, "scheme", None) \
        else list(Scheme)
    trace_path = getattr(args, "trace", None)
    tracers = {}
    rows = []
    tenant_tables = []
    for scheme in schemes:
        tracer = _fresh_tracer() if trace_path else None
        r = run_scheme(scheme, spec, tracer=tracer, qos=qos,
                       retry_policy=retry,
                       sim_scheduler=getattr(args, "sim_scheduler", "calendar"))
        if tracer is not None:
            tracers[scheme.value] = tracer
        rows.append([scheme.value, r.makespan, r.bandwidth / MB,
                     r.served_active, r.demoted, r.interrupted])
        if tenants:
            tenant_tables.append((scheme.value, _tenant_rows(r)))
    print(format_table(
        ["scheme", "makespan (s)", "bandwidth (MB/s)",
         "offloaded", "demoted", "migrated"],
        rows,
    ), file=out)
    for scheme_name, t_rows in tenant_tables:
        print(f"\ntenants under {scheme_name} "
              f"(borrowing {'off' if args.no_borrow else 'on'}):", file=out)
        print(format_table(
            ["tenant", "requests", "goodput (MB/s)", "SLO att",
             "max lat (s)", "borrowed (MB)", "lent (MB)", "denied"],
            t_rows,
        ), file=out)
    if trace_path:
        _write_trace(trace_path, tracers, out)
    return 0


def _run_with_faults(args, spec: WorkloadSpec, out) -> int:
    from repro.analysis.faults import summarize_fault_run
    from repro.faults import SCENARIOS, scenario

    if args.faults not in SCENARIOS:
        print(f"error: unknown fault scenario {args.faults!r}; known: "
              f"{sorted(SCENARIOS)}", file=sys.stderr)
        return 2
    overrides = {}
    if args.fault_at is not None:
        overrides["at"] = args.fault_at
    if args.faults == "chaos":
        overrides.setdefault("seed", args.seed if args.seed is not None else 0)
        overrides["n_targets"] = spec.n_storage
    elif args.faults == "stragglers":
        overrides.setdefault("seed", args.seed if args.seed is not None else 0)
        overrides["n_servers"] = spec.n_storage
    sched = scenario(args.faults, **overrides)
    print(f"scenario: {sched.name}  "
          f"(events={len(sched.timeline())}, horizon={sched.horizon}s, "
          f"retry timeout={sched.retry.timeout}s "
          f"x{sched.retry.max_retries})", file=out)
    schemes = [Scheme(args.scheme)] if getattr(args, "scheme", None) \
        else list(Scheme)
    trace_path = getattr(args, "trace", None)
    tracers = {}
    rows = []
    sim_scheduler = getattr(args, "sim_scheduler", "calendar")
    for scheme in schemes:
        healthy = run_scheme(scheme, spec, sim_scheduler=sim_scheduler)
        tracer = _fresh_tracer() if trace_path else None
        faulty = run_scheme(scheme, spec, fault_schedule=sched,
                            tracer=tracer, sim_scheduler=sim_scheduler)
        if tracer is not None:
            tracers[scheme.value] = tracer
        m = summarize_fault_run(faulty, baseline=healthy)
        rows.append([
            scheme.value, f"{m.makespan:.3f}", f"{m.goodput_mb_s:.1f}",
            f"{m.goodput_retention:.1%}", m.retries, m.recovered_requests,
            f"{m.mean_recovery_latency:.3f}", f"{m.wasted_mb:.1f}",
        ])
    print(format_table(
        ["scheme", "makespan (s)", "goodput (MB/s)", "retention",
         "retries", "recovered", "mean recovery (s)", "wasted (MB)"],
        rows,
    ), file=out)
    if trace_path:
        _write_trace(trace_path, tracers, out)
    return 0


def cmd_sweep(args, out=None) -> int:
    """Sweep request counts for one kernel/size (a custom figure).

    ``--jobs N`` fans the grid's independent simulations across N
    worker processes; ``--cache DIR`` memoises completed points so a
    re-run only simulates what changed.  Results are identical to the
    serial, uncached run.
    """
    out = out if out is not None else sys.stdout
    series = figure_series(
        args.kernel, args.mb * MB,
        [Scheme.TS, Scheme.AS, Scheme.DOSAS],
        counts=tuple(args.counts),
        jobs=args.jobs,
        cache_dir=args.cache,
    )
    _emit_series(
        f"{args.kernel} exec time (s), {args.mb} MB/request",
        series, args.chart, out, as_json=getattr(args, "json", False),
    )
    return 0


def cmd_calibrate(args, out=None) -> int:
    """Measure this host's kernel rates (Table III methodology)."""
    out = out if out is not None else sys.stdout
    from repro.kernels.calibrate import calibration_table
    from repro.kernels.registry import default_registry

    kernels = None
    if args.all:
        kernels = [default_registry.get(n) for n in default_registry.names()]
    rows = calibration_table(kernels=kernels, nbytes=args.mb * MB)
    print(format_table(
        ["kernel", "measured MB/s", "paper MB/s"],
        [[r["kernel"], r["measured_mb_s"], r["paper_mb_s"] or "-"]
         for r in rows],
    ), file=out)
    return 0


def cmd_gantt(args, out=None) -> int:
    """Run one workload point and draw its per-request timeline."""
    out = out if out is not None else sys.stdout
    from repro.analysis import records_from_scheme_result, render_gantt

    if args.kernel not in list_kernels():
        print(f"error: unknown kernel {args.kernel!r}", file=sys.stderr)
        return 2
    spec = WorkloadSpec(
        kernel=args.kernel,
        n_requests=args.requests,
        request_bytes=args.mb * MB,
        arrival_spacing=args.spacing,
        probe_period=0.25,
    )
    scheme = Scheme(args.scheme)
    result = run_scheme(scheme, spec)
    records = records_from_scheme_result(result)
    print(render_gantt(
        records,
        title=(f"{scheme.value.upper()} — {args.requests} x {args.mb} MB "
               f"{args.kernel}, spacing {args.spacing}s"),
    ), file=out)
    return 0


def cmd_trace(args, out=None) -> int:
    """Generate, inspect or replay workload traces (JSON lines)."""
    out = out if out is not None else sys.stdout
    from repro.core import run_plan
    from repro.workload import (
        ArrivalPattern,
        BatchApplication,
        WorkloadGenerator,
        load_trace,
        save_trace,
    )

    if args.trace_command == "generate":
        apps = []
        for spec_str in args.apps:
            parts = spec_str.split(":")
            if len(parts) not in (3, 4):
                print(f"error: app spec {spec_str!r} is not "
                      "name:processes:mb[:operation]", file=sys.stderr)
                return 2
            name, nproc, mb = parts[0], int(parts[1]), int(parts[2])
            operation = parts[3] if len(parts) == 4 else None
            if operation is not None and operation not in list_kernels():
                print(f"error: unknown kernel {operation!r}", file=sys.stderr)
                return 2
            apps.append(BatchApplication(name, nproc, mb * MB,
                                         operation=operation))
        plan = WorkloadGenerator(args.seed).plan(
            apps, ArrivalPattern.POISSON if args.poisson else
            ArrivalPattern.BATCH, rate=args.rate,
        )
        n = save_trace(plan, args.out)
        print(f"wrote {n} requests to {args.out}", file=out)
        return 0

    if args.trace_command == "show":
        plan = load_trace(args.file)
        print(format_table(
            ["app", "proc", "seq", "arrival (s)", "MB", "kind", "operation"],
            [[r.app, r.process_index, r.sequence, r.arrival_time,
              r.size // MB, "active" if r.active else "normal",
              r.operation or "-"] for r in plan],
        ), file=out)
        return 0

    if args.trace_command == "run":
        plan = load_trace(args.file)
        spec = WorkloadSpec(n_storage=args.storage_nodes, probe_period=0.25)
        trace_path = getattr(args, "trace", None)
        tracers = {}
        rows = []
        schemes = [Scheme(args.scheme)] if args.scheme else list(Scheme)
        for scheme in schemes:
            tracer = _fresh_tracer() if trace_path else None
            r = run_plan(scheme, plan, spec, tracer=tracer)
            if tracer is not None:
                tracers[scheme.value] = tracer
            rows.append([scheme.value, r.makespan, r.mean_latency,
                         r.served_active, r.demoted, r.interrupted])
        print(format_table(
            ["scheme", "makespan (s)", "mean latency (s)",
             "offloaded", "demoted", "migrated"],
            rows,
        ), file=out)
        if trace_path:
            _write_trace(trace_path, tracers, out)
        return 0

    if args.trace_command == "validate":
        return _trace_validate(args, out)

    if args.trace_command == "critical-path":
        return _trace_critical_path(args, out)

    print("error: unknown trace subcommand", file=sys.stderr)
    return 2


def _trace_validate(args, out) -> int:
    """Check a trace export's structure and span accounting."""
    import json

    from repro.obs import events_from_file, validate_chrome_trace
    from repro.analysis.critical_path import unclosed_requests

    with open(args.file, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    errors = validate_chrome_trace(doc)
    if errors:
        for err in errors:
            print(f"error: {err}", file=sys.stderr)
        return 1
    events = events_from_file(args.file)
    open_rids = unclosed_requests(events)
    if open_rids:
        print(f"error: {len(open_rids)} request span(s) never closed: "
              f"rids {open_rids[:10]}", file=sys.stderr)
        return 1
    print(f"{args.file}: OK ({len(doc['traceEvents'])} trace events, "
          f"{len(events)} spans, all request spans closed)", file=out)
    return 0


def _trace_critical_path(args, out) -> int:
    """Per-request latency breakdown of a trace export."""
    import json

    from repro.obs import SpanEvent, validate_chrome_trace
    from repro.analysis.critical_path import (
        critical_paths,
        format_critical_path_table,
    )

    with open(args.file, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    errors = validate_chrome_trace(doc)
    if errors:
        print(f"error: invalid trace file: {errors[0]}", file=sys.stderr)
        return 1
    raw = doc["spans"]
    run = getattr(args, "run", None)
    if run:
        # Multi-run exports label each raw span with its run (scheme).
        raw = [d for d in raw if d.get("run") == run]
        if not raw:
            runs = sorted({d.get("run") for d in doc["spans"]})
            print(f"error: no events for run {run!r} in {args.file}; "
                  f"runs: {runs}", file=sys.stderr)
            return 2
    paths = critical_paths(SpanEvent.from_dict(d) for d in raw)
    if not paths:
        print("no request spans in trace", file=out)
        return 0
    print(format_critical_path_table(paths), file=out)
    return 0


def cmd_headline(args, out=None) -> int:
    """The paper's Sec. IV-B.3 improvement claims."""
    out = out if out is not None else sys.stdout
    h = headline_improvements()
    print(format_table(
        ["contention", "vs", "measured", "paper"],
        [
            ["low (n=1)", "TS", f"{h['low_vs_ts']:.1%}", "~40%"],
            ["low (n=1)", "AS", f"{h['low_vs_as']:.1%}", "~0%"],
            ["high (n=32)", "AS", f"{h['high_vs_as']:.1%}", "~21%"],
            ["high (n=32)", "TS", f"{h['high_vs_ts']:.1%}", "~0%"],
        ],
    ), file=out)
    return 0


def _resolve_scenario(ref: str):
    """A scenario from a file path or a built-in library name."""
    import os

    from repro.scenario import BUILTIN, get_scenario, load_scenario

    if os.path.exists(ref) or ref.endswith((".yaml", ".yml", ".json")):
        return load_scenario(ref)
    if ref in BUILTIN:
        return get_scenario(ref)
    raise ValueError(
        f"unknown scenario {ref!r}: not a file, not a built-in "
        f"(built-ins: {sorted(BUILTIN)})"
    )


def cmd_soak(args, out=None) -> int:
    """Chaos-soak the overload-protection stack; exit 1 on violations.

    ``--scenario`` accepts the native ``chaos`` label, a built-in
    scenario name, or a YAML/JSON scenario file — scenario fields
    override the soak defaults, and explicitly-given CLI flags win
    over both.
    """
    out = out if out is not None else sys.stdout
    # Deferred import: the soak harness pulls in repro.core and the
    # fault library, which most CLI invocations never need.
    from repro.analysis.soak import format_soak_report, soak_acceptance
    from repro.qos.soak import SoakSpec, run_soak

    kwargs: Dict[str, object] = {}
    schedule_for = None
    if args.scenario != "chaos":
        from repro.scenario import (
            ScenarioError,
            soak_schedule_factory,
            soak_spec_kwargs,
            validate_scenario,
        )

        try:
            sc = _resolve_scenario(args.scenario)
            validate_scenario(sc)
        except (ScenarioError, ValueError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        kwargs = soak_spec_kwargs(sc)
        schedule_for = soak_schedule_factory(sc)
    # Explicit CLI flags override scenario fields; the remaining gaps
    # fall back to the SoakSpec/argparse defaults.  A loaded scenario
    # keeps its own name as the report label (not the file path).
    kwargs.setdefault("scenario", args.scenario)
    if args.seeds is not None:
        kwargs["seeds"] = tuple(args.seeds)
    kwargs.setdefault("seeds", (0, 1, 2))
    if args.requests is not None:
        kwargs["n_requests"] = args.requests
    if args.mb is not None:
        kwargs["request_bytes"] = args.mb * MB
    if args.max_virtual_time is not None:
        kwargs["max_virtual_time"] = args.max_virtual_time
    if args.sim_scheduler is not None:
        kwargs["sim_scheduler"] = args.sim_scheduler
    if args.unprotected:
        kwargs["protected"] = False
    if args.no_straggler:
        kwargs["straggler"] = False
    if args.tenants:
        kwargs["tenants"] = True
    try:
        spec = SoakSpec(**kwargs)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    report = run_soak(spec, schedule_for=schedule_for)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
    if args.json:
        print(report.to_json(), file=out)
    else:
        print(format_soak_report(report), file=out)
    return 1 if soak_acceptance(report) else 0


def _scenario_run_table(report) -> str:
    """Human rendering of one scenario report."""
    rows = []
    for sr in report.seeds:
        for run in sr.runs:
            att = ", ".join(
                f"{k}={v:.0%}" for k, v in sorted(run.attainment.items())
            )
            rows.append([
                sr.seed, f"{run.scheme}/{run.mode}",
                "-" if run.failed else f"{run.goodput / MB:.1f}",
                "-" if run.failed else f"{run.makespan:.2f}",
                run.retries, run.hedges_issued, att or "-",
                len(run.violations),
            ])
    return format_table(
        ["seed", "run", "goodput (MB/s)", "makespan (s)", "retries",
         "hedges", "SLO attainment", "violations"],
        rows,
    )


def _scenario_report(report, args, out) -> int:
    violations = report.violations()
    if getattr(args, "out", None):
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
    if getattr(args, "json", False):
        print(report.to_json(), file=out)
    else:
        print(f"scenario: {report.scenario}  "
              f"(baseline: {report.baseline}, "
              f"tags: {', '.join(report.tags) or '-'})", file=out)
        print(_scenario_run_table(report), file=out)
        for v in violations:
            print(f"VIOLATION: {v}", file=out)
        if not violations:
            print("all invariants hold", file=out)
    return 1 if violations else 0


def cmd_scenario(args, out=None) -> int:
    """Declarative scenarios: list, validate, run, dump, smoke."""
    out = out if out is not None else sys.stdout
    from repro.scenario import (
        BUILTIN,
        ScenarioError,
        dumps_scenario,
        get_scenario,
        list_scenarios,
        run_scenario,
        smoke_scenarios,
        validate_scenario,
    )

    if args.scenario_command == "list":
        rows = []
        for name in list_scenarios():
            data = BUILTIN[name]
            rows.append([
                name,
                ", ".join(data.get("tags", [])) or "-",
                data.get("description", "")[:64],
            ])
        print(format_table(["scenario", "tags", "description"], rows),
              file=out)
        return 0

    if args.scenario_command == "validate":
        failures = 0
        for ref in args.scenarios:
            try:
                sc = _resolve_scenario(ref)
                validate_scenario(sc)
            except (ScenarioError, ValueError) as err:
                print(f"error: {err}", file=sys.stderr)
                failures += 1
                continue
            print(f"{ref}: OK ({sc.name}, "
                  f"{sc.total_requests} requests, "
                  f"{len(sc.run.seeds)} seeds)", file=out)
        return 2 if failures else 0

    if args.scenario_command == "dump":
        try:
            sc = get_scenario(args.name)
        except KeyError as err:
            print(f"error: {err.args[0]}", file=sys.stderr)
            return 2
        try:
            text = dumps_scenario(sc, fmt=args.format)
        except ScenarioError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote {sc.name} to {args.out}", file=out)
        else:
            print(text, end="", file=out)
        return 0

    if args.scenario_command == "run":
        try:
            sc = _resolve_scenario(args.scenario)
            validate_scenario(sc)
        except (ScenarioError, ValueError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        seeds = tuple(args.seed) if args.seed else None
        report = run_scenario(sc, seeds=seeds)
        return _scenario_report(report, args, out)

    if args.scenario_command == "smoke":
        import json as _json

        names = list_scenarios() if args.all else smoke_scenarios()
        seeds = tuple(args.seed) if args.seed else None
        failures = 0
        combined = {}
        for name in names:
            sc = get_scenario(name)
            validate_scenario(sc)
            report = run_scenario(sc, seeds=seeds)
            violations = report.violations()
            combined[name] = _json.loads(report.to_json())
            status = "OK" if not violations else "FAIL"
            print(f"{name}: {status} "
                  f"({len(report.seeds)} seeds)", file=out)
            for v in violations:
                print(f"  VIOLATION: {v}", file=out)
            failures += bool(violations)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(_json.dumps(combined, sort_keys=True, indent=2)
                         + "\n")
        print(f"{len(names) - failures}/{len(names)} scenarios clean",
              file=out)
        return 1 if failures else 0

    print("error: unknown scenario subcommand", file=sys.stderr)
    return 2


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DOSAS (CLUSTER 2012) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", type=int)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the figure's sweep")
    p.add_argument("--cache", metavar="DIR",
                   help="memoise completed sweep points in DIR")
    p.add_argument("--chart", action="store_true",
                   help="draw a terminal line chart instead of a table")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of a table")
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("table", help="regenerate a paper table (3 or 4)")
    p.add_argument("number", type=int)
    p.set_defaults(func=cmd_table)

    p = sub.add_parser("run", help="run one custom workload point")
    p.add_argument("--kernel", default="gaussian2d")
    p.add_argument("--requests", type=int, default=8)
    p.add_argument("--mb", type=int, default=128)
    p.add_argument("--storage-nodes", type=int, default=1)
    p.add_argument("--kernel-slots", type=int, default=1)
    p.add_argument("--jitter", action="store_true")
    p.add_argument("--seed", type=int, default=None,
                   help="workload seed (default: the library's fixed "
                        "default seed; 0 is a real seed, not the default)")
    p.add_argument("--faults", metavar="SCENARIO",
                   help="inject a failure scenario (degraded-node, "
                        "crash-restart, partition, kernel-stall, "
                        "probe-loss, chaos, slowdown, stragglers)")
    p.add_argument("--straggler", action="store_true",
                   help="arm the straggler-aware dispatcher (latency "
                        "board, replica routing, hedged reads)")
    p.add_argument("--replicas", type=int, default=1,
                   help="replicas per stripe unit (chained declustering); "
                        ">1 gives the straggler dispatcher real choices")
    p.add_argument("--fault-at", type=float, default=None,
                   help="override the scenario's first-fault time (s)")
    p.add_argument("--scheme", choices=[s.value for s in Scheme],
                   help="run only one scheme instead of all three")
    p.add_argument("--trace", metavar="FILE",
                   help="record the run(s) and write a Chrome trace "
                        "export to FILE (open in chrome://tracing)")
    p.add_argument("--tenants", nargs="+",
                   metavar="NAME:REQUESTS[:RATE_MB[:SLO_S]]",
                   help="multi-tenant mix: per-tenant demand (active "
                        "reads per storage node), rate guarantee in "
                        "MB/s per server, and SLO latency in seconds; "
                        "replaces --requests and arms per-tenant "
                        "policing with token borrowing")
    p.add_argument("--no-borrow", action="store_true",
                   help="with --tenants: static partition (disable the "
                        "decentralized token borrowing)")
    p.add_argument("--sim-scheduler", choices=["calendar", "heap"],
                   default="calendar",
                   help="engine event scheduler (result-identical per "
                        "seed; calendar is the amortized-O(1) default, "
                        "heap the reference)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("sweep", help="sweep request counts")
    p.add_argument("--kernel", default="gaussian2d")
    p.add_argument("--mb", type=int, default=128)
    p.add_argument("--counts", type=int, nargs="+",
                   default=[1, 2, 4, 8, 16, 32, 64])
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the sweep (1 = in-process)")
    p.add_argument("--cache", metavar="DIR",
                   help="memoise completed sweep points in DIR")
    p.add_argument("--chart", action="store_true")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_sweep)

    from repro.lint.cli import add_lint_parser

    add_lint_parser(sub)

    p = sub.add_parser("calibrate", help="measure kernel rates on this host")
    p.add_argument("--mb", type=int, default=8)
    p.add_argument("--all", action="store_true",
                   help="include extension kernels")
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser("headline", help="the 40%%/21%% improvement claims")
    p.set_defaults(func=cmd_headline)

    p = sub.add_parser(
        "soak", help="chaos-soak the overload-protection stack")
    # Workload knobs default to None so a scenario file's fields are
    # distinguishable from "the user typed this flag" — explicit flags
    # override scenario fields, which override the soak defaults.
    p.add_argument("--scenario", default="chaos",
                   help="'chaos' (native), a built-in scenario name, or "
                        "a YAML/JSON scenario file whose fields seed "
                        "the soak spec")
    p.add_argument("--seeds", type=int, nargs="+", default=None)
    p.add_argument("--requests", type=int, default=None,
                   help="concurrent active I/Os per client group "
                        "(default 10)")
    p.add_argument("--mb", type=int, default=None,
                   help="bytes per request (MB, default 32)")
    p.add_argument("--unprotected", action="store_true",
                   help="disable the QoS stack and use the retry-storm "
                        "policy (degradation demo)")
    p.add_argument("--no-straggler", action="store_true",
                   help="keep the straggler dispatcher (and replicas) "
                        "off the protected DOSAS runs")
    p.add_argument("--tenants", action="store_true",
                   help="split the workload into the default two-tenant "
                        "mix and assert the borrow-ledger conservation "
                        "invariants on every run")
    p.add_argument("--max-virtual-time", type=float, default=None,
                   help="watchdog bound on each run's simulated seconds "
                        "(default 120)")
    p.add_argument("--sim-scheduler", choices=["calendar", "heap"],
                   default=None,
                   help="engine event scheduler (result-identical per "
                        "seed; the report is byte-identical either way)")
    p.add_argument("--json", action="store_true",
                   help="print the deterministic JSON report")
    p.add_argument("--out", metavar="FILE",
                   help="also write the JSON report to FILE")
    p.set_defaults(func=cmd_soak)

    p = sub.add_parser(
        "scenario",
        help="declarative scenarios: list / validate / run / dump / smoke")
    scen_sub = p.add_subparsers(dest="scenario_command", required=True)
    sl = scen_sub.add_parser("list", help="the built-in scenario library")
    sl.set_defaults(func=cmd_scenario)
    sv = scen_sub.add_parser(
        "validate", help="strict-validate scenario files or built-ins")
    sv.add_argument("scenarios", nargs="+", metavar="FILE_OR_NAME")
    sv.set_defaults(func=cmd_scenario)
    sr = scen_sub.add_parser(
        "run", help="run one scenario through the invariant engine")
    sr.add_argument("scenario", metavar="FILE_OR_NAME")
    sr.add_argument("--seed", type=int, nargs="+", default=None,
                    help="override the scenario's seed list")
    sr.add_argument("--json", action="store_true",
                    help="print the deterministic JSON report")
    sr.add_argument("--out", metavar="FILE",
                    help="also write the JSON report to FILE")
    sr.set_defaults(func=cmd_scenario)
    sd = scen_sub.add_parser(
        "dump", help="render a built-in scenario as YAML/JSON")
    sd.add_argument("name")
    sd.add_argument("--format", choices=["json", "yaml"], default="json")
    sd.add_argument("--out", metavar="FILE")
    sd.set_defaults(func=cmd_scenario)
    ss = scen_sub.add_parser(
        "smoke", help="run the smoke-tagged subset; exit 1 on violations")
    ss.add_argument("--all", action="store_true",
                    help="run the whole library, not just the smoke tags")
    ss.add_argument("--seed", type=int, nargs="+", default=None,
                    help="override every scenario's seed list")
    ss.add_argument("--out", metavar="FILE",
                    help="write the combined JSON report to FILE")
    ss.set_defaults(func=cmd_scenario)

    p = sub.add_parser("gantt", help="per-request timeline of one run")
    p.add_argument("--scheme", default="dosas", choices=[s.value for s in Scheme])
    p.add_argument("--kernel", default="gaussian2d")
    p.add_argument("--requests", type=int, default=8)
    p.add_argument("--mb", type=int, default=128)
    p.add_argument("--spacing", type=float, default=0.0)
    p.set_defaults(func=cmd_gantt)

    p = sub.add_parser("trace", help="generate / show / replay traces")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    g = trace_sub.add_parser("generate", help="build a trace from app specs")
    g.add_argument("--apps", nargs="+", required=True,
                   metavar="name:processes:mb[:operation]")
    g.add_argument("--out", required=True)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--poisson", action="store_true")
    g.add_argument("--rate", type=float, default=1.0)
    g.set_defaults(func=cmd_trace)
    s = trace_sub.add_parser("show", help="print a trace")
    s.add_argument("file")
    s.set_defaults(func=cmd_trace)
    r = trace_sub.add_parser("run", help="replay a trace")
    r.add_argument("file")
    r.add_argument("--scheme", choices=[sv.value for sv in Scheme])
    r.add_argument("--storage-nodes", type=int, default=1)
    r.add_argument("--trace", metavar="FILE",
                   help="write a Chrome trace export of the replay")
    r.set_defaults(func=cmd_trace)
    v = trace_sub.add_parser(
        "validate", help="check a trace export's structure and spans")
    v.add_argument("file")
    v.set_defaults(func=cmd_trace)
    c = trace_sub.add_parser(
        "critical-path", help="per-request latency breakdown of an export")
    c.add_argument("file")
    c.add_argument("--run", help="restrict to one run label (scheme)")
    c.set_defaults(func=cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except (OSError, ValueError):
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
