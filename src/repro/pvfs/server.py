"""The I/O server running on each storage node.

Serves normal reads itself (optional disk stage, then the node's NIC
link, which serialises transfers — the g(x) = x/bw model).  Active
requests are delegated to a pluggable *active handler*; in a full
DOSAS deployment that handler is the Active Storage Server
(``repro.core.ass``).  Without a handler, active requests are
rejected loudly — a traditional PVFS deployment.

The server keeps an ``outstanding`` table of accepted-but-unanswered
requests.  That table *is* the I/O queue of the paper's Figure 1: the
Contention Estimator's probe reads (n, k, D, D_A) from it.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Protocol, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.qos.admission import AdmissionController, AdmissionDecision
from repro.sim.engine import Environment
from repro.sim.events import Event, Timer
from repro.sim.exceptions import Failure
from repro.sim.process import Process
from repro.cluster.config import ClusterConfig
from repro.cluster.network import Link
from repro.cluster.node import StorageNode
from repro.pvfs.metadata import MetadataServer, PVFSError
from repro.pvfs.requests import IOKind, IOReply, IORequest


class ServerFault(PVFSError):
    """Base class for failure-injected server-side errors."""


class ServerCrashed(ServerFault):
    """The server crashed with this request in its queue."""


class ServerUnavailable(ServerFault):
    """The server is down and rejected a new request."""


class ServerOverloaded(ServerFault):
    """Admission control refused the request (queue full / intake policed)."""


class DeadlineExceeded(ServerFault):
    """The request's deadline passed before the server could answer it."""


class ActiveHandler(Protocol):
    """What the DOSAS Active Storage Server implements."""

    def submit(self, request: IORequest) -> None:
        """Accept one active request for processing or demotion."""


class IOServer:
    """One PVFS I/O server bound to a storage node and its NIC."""

    def __init__(
        self,
        env: Environment,
        node: StorageNode,
        link: Link,
        mds: MetadataServer,
        config: ClusterConfig,
        server_index: int = 0,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.link = link
        self.mds = mds
        self.config = config
        self.server_index = server_index
        #: Overload protection on intake (None accepts everything).
        self.admission = admission
        self.active_handler: Optional[ActiveHandler] = None
        #: Accepted requests not yet replied — the Figure-1 I/O queue.
        self.outstanding: Dict[int, IORequest] = {}
        #: Typed per-server instruments; ``monitor`` stays as an alias
        #: because older callers (and tests) use ``monitor.get_counter``.
        self.metrics = MetricsRegistry(now=lambda: env.now)
        self.monitor = self.metrics
        self._track = f"server:{node.name}"
        #: True while crashed: new requests are rejected.
        self.down = False
        #: Serving process per rid for normal/write requests, so a
        #: crash or client cancellation can interrupt them mid-service.
        self._service: Dict[int, Process] = {}
        #: Armed deadline timer per rid (cancelled on any completion).
        self._deadline_timers: Dict[int, Timer] = {}

    # -- wiring ---------------------------------------------------------------
    def attach_active_handler(self, handler: ActiveHandler) -> None:
        """Install the Active Storage Server for this node."""
        self.active_handler = handler

    # -- request intake ----------------------------------------------------------
    def submit(self, request: IORequest) -> None:
        """Accept a request into the queue and start service.

        Request messages themselves are tiny (no payload), so intake is
        immediate; all modelled time is disk, CPU and data transfer.
        """
        if request.rid in self.outstanding:
            raise PVFSError(f"duplicate request id {request.rid}")
        tr = self.env.tracer
        if self.down:
            # A crashed server answers nothing; model the connection
            # refusal as an immediate failed reply so clients can retry.
            self.metrics.inc("requests_rejected")
            if tr.enabled:
                tr.instant(self.env.now, "reject", self._track, rid=request.rid)
            request.reply.fail(
                ServerUnavailable(
                    f"server {self.node.name} is down (request {request.rid})"
                )
            )
            return
        now = self.env.now
        if request.deadline is not None and now >= request.deadline:
            # Expired on arrival: refusing is cheaper than serving work
            # nobody will wait for.
            self.metrics.inc("deadline_rejected")
            if tr.enabled:
                tr.instant(now, "deadline-reject", self._track, rid=request.rid)
            request.reply.fail(
                DeadlineExceeded(
                    f"request {request.rid} reached server {self.node.name} "
                    f"past its deadline"
                )
            )
            return
        if self.admission is not None:
            verdict = self.admission.screen(
                len(self.outstanding),
                request.is_active,
                request.size,
                now,
                tenant=request.tenant,
            )
            if verdict is AdmissionDecision.REJECT and not request.is_active:
                # DOSAS shedding order: demote queued active work to
                # client-side execution before refusing a normal read.
                if self.shed_queued_active(limit=1):
                    verdict = self.admission.screen(
                        len(self.outstanding),
                        request.is_active,
                        request.size,
                        now,
                        tenant=request.tenant,
                    )
            if verdict is AdmissionDecision.SHED:
                self._shed(request)
                return
            if verdict is AdmissionDecision.REJECT:
                self.metrics.inc("requests_overloaded")
                if tr.enabled:
                    tr.instant(
                        now,
                        "overload-reject",
                        self._track,
                        rid=request.rid,
                        queue=len(self.outstanding),
                    )
                request.reply.fail(
                    ServerOverloaded(
                        f"server {self.node.name} rejected request "
                        f"{request.rid}: queue depth {len(self.outstanding)}"
                    )
                )
                return
        self.outstanding[request.rid] = request
        if request.deadline is not None:
            self._deadline_timers[request.rid] = Timer(
                self.env,
                request.deadline - now,
                lambda rid=request.rid: self._expire(rid),
            )
        self.metrics.inc("requests_received")
        self.metrics.inc(f"requests_{request.kind.value}")
        self.metrics.time_gauge("queue_length").set(len(self.outstanding))
        if tr.enabled:
            tr.begin(
                self.env.now,
                "request",
                self._track,
                rid=request.rid,
                io=request.kind.value,
                size=request.size,
                client=request.client_name,
            )
            tr.instant(
                self.env.now,
                "enqueue",
                self._track,
                rid=request.rid,
                queue=len(self.outstanding),
            )

        if request.kind is IOKind.NORMAL:
            self._service[request.rid] = self.env.process(self._serve_normal(request))
        elif request.kind is IOKind.WRITE:
            self._service[request.rid] = self.env.process(self._serve_write(request))
        else:
            if self.active_handler is None:
                raise PVFSError(
                    f"server {self.node.name} received an active request but has "
                    "no active storage server attached"
                )
            self.active_handler.submit(request)

    # -- failure hooks (see repro.faults) ------------------------------------
    def crash(self, cause: str = "node-crash") -> None:
        """Hard-fail the node: every queued request dies, intake stops.

        In-flight normal/write service processes are interrupted, the
        active handler (when attached) drops its queued and running
        kernels, and every outstanding reply fails with
        :class:`ServerCrashed` so clients learn immediately — matching
        a connection reset from a dead peer.  Idempotent.
        """
        if self.down:
            return
        self.down = True
        self.metrics.inc("crashes")
        tr = self.env.tracer
        if tr.enabled:
            tr.instant(self.env.now, "server-crash", self._track, cause=cause)
        for proc in list(self._service.values()):
            if proc.is_alive and proc is not self.env.active_process:
                proc.interrupt(cause, exc_type=Failure)
        self._service.clear()
        handler = self.active_handler
        if handler is not None and hasattr(handler, "on_crash"):
            handler.on_crash(cause)
        for timer in self._deadline_timers.values():
            timer.cancel()
        self._deadline_timers.clear()
        victims = list(self.outstanding.values())
        self.outstanding.clear()
        if victims:
            # Conservation counter: received = completed + cancelled +
            # failed_crash + deadline_expired + still-outstanding.
            self.metrics.inc("requests_failed_crash", len(victims))
        for req in victims:
            if tr.enabled:
                tr.end(
                    self.env.now, "request", self._track, rid=req.rid, outcome="crashed"
                )
            if not req.reply.triggered:
                req.reply.fail(
                    ServerCrashed(
                        f"server {self.node.name} crashed holding request {req.rid}"
                    )
                )
        self.metrics.time_gauge("queue_length").set(0)

    def restart(self) -> None:
        """Bring a crashed server back with an empty queue.  Idempotent.

        A reboot also clears transient derates (a slowdown does not
        survive power-cycling the box); a deliberate network partition
        is outside the box and stays in force.
        """
        if not self.down:
            return
        self.down = False
        self.node.cpu.restore()
        self.link.restore()
        self.metrics.inc("restarts")
        tr = self.env.tracer
        if tr.enabled:
            tr.instant(self.env.now, "server-restart", self._track)

    def cancel(self, rid: int) -> bool:
        """Client-initiated abandonment (timeout path, before reissue).

        Drops the request without delivering any reply — the client has
        already defused and stopped listening on the reply event.
        Returns True if the request was still queued here.
        """
        request = self.outstanding.pop(rid, None)
        timer = self._deadline_timers.pop(rid, None)
        if timer is not None:
            timer.cancel()
        proc = self._service.pop(rid, None)
        if proc is not None and proc.is_alive and proc is not self.env.active_process:
            proc.interrupt("client-cancel", exc_type=Failure)
        handler = self.active_handler
        if (
            request is not None
            and request.is_active
            and handler is not None
            and hasattr(handler, "abort")
        ):
            handler.abort(rid)
        if request is not None:
            self.metrics.inc("requests_cancelled")
            self.metrics.time_gauge("queue_length").set(len(self.outstanding))
            tr = self.env.tracer
            if tr.enabled:
                tr.end(
                    self.env.now, "request", self._track, rid=rid, outcome="cancelled"
                )
        return request is not None

    # -- overload protection (see repro.qos) ---------------------------------
    def _shed(self, request: IORequest) -> None:
        """Answer an active arrival as demoted without queueing it.

        The reply mirrors the runtime's demotion (``completed=0``, any
        prior checkpoint carried through) so the ASC finishes the work
        client-side — the request never enters ``outstanding``.
        """
        self.metrics.inc("requests_shed")
        tr = self.env.tracer
        if tr.enabled:
            tr.instant(
                self.env.now,
                "shed",
                self._track,
                rid=request.rid,
                queue=len(self.outstanding),
            )
        checkpoint = request.resume_from
        done = checkpoint.bytes_done if checkpoint is not None else 0
        request.reply.succeed(
            IOReply(
                rid=request.rid,
                completed=False,
                checkpoint=checkpoint,
                fh=request.fh,
                offset=request.offset + done,
                remaining=request.size - done,
                extents=request.extents,
                bytes_done=done,
                bytes_streamed=0.0,
                demoted=True,
                served_active=False,
                finished_at=self.env.now,
            )
        )

    def shed_queued_active(self, limit: Optional[int] = None) -> int:
        """Demote queued (not yet running) active work to the clients.

        The admission controller calls this to free queue room before
        a normal read is refused; each shed request is answered through
        the runtime's demotion path (so it counts as completed work
        here).  Returns how many requests were shed.
        """
        handler = self.active_handler
        if handler is None or not hasattr(handler, "shed"):
            return 0
        shed = 0
        for req in self.queued_active_requests():
            if limit is not None and shed >= limit:
                break
            if handler.shed(req.rid):
                shed += 1
                self.metrics.inc("requests_shed_queued")
        return shed

    def _expire(self, rid: int) -> None:
        """Deadline timer fired: cancel the work, fail the reply typed."""
        self._deadline_timers.pop(rid, None)
        request = self.outstanding.pop(rid, None)
        if request is None:
            return
        proc = self._service.pop(rid, None)
        if proc is not None and proc.is_alive and proc is not self.env.active_process:
            proc.interrupt("deadline", exc_type=Failure)
        handler = self.active_handler
        if request.is_active and handler is not None and hasattr(handler, "abort"):
            handler.abort(rid)
        self.metrics.inc("deadline_expired")
        self.metrics.time_gauge("queue_length").set(len(self.outstanding))
        tr = self.env.tracer
        if tr.enabled:
            tr.end(
                self.env.now, "request", self._track, rid=rid, outcome="deadline"
            )
        if not request.reply.triggered:
            request.reply.fail(
                DeadlineExceeded(
                    f"request {rid} exceeded its deadline on server "
                    f"{self.node.name}"
                )
            )

    # -- normal I/O path -----------------------------------------------------------
    def _serve_normal(self, request: IORequest) -> Generator[Event, Any, None]:
        tr = self.env.tracer
        if tr.enabled:
            tr.instant(
                self.env.now, "dispatch", self._track, rid=request.rid, mode="normal"
            )
        try:
            if self.config.model_disk:
                yield from self.node.disk_read(request.size)
            yield self.link.transfer(request.size)
        except Failure:
            # Crash or cancellation mid-service: whoever interrupted us
            # already removed the request and settled (or abandoned)
            # the reply — just stop.
            return
        finally:
            self._service.pop(request.rid, None)
        reply = IOReply(
            rid=request.rid,
            completed=True,
            result=request.size,
            fh=request.fh,
            offset=request.offset,
            bytes_streamed=float(request.size),
            demoted=False,
            served_active=False,
            finished_at=self.env.now,
        )
        self.finish(request, reply)

    # -- write path ------------------------------------------------------------------
    def _serve_write(self, request: IORequest) -> Generator[Event, Any, None]:
        """Ingest data: the transfer crosses the same NIC, then the
        bytes land in the file's buffer (when one exists)."""
        tr = self.env.tracer
        if tr.enabled:
            tr.instant(
                self.env.now, "dispatch", self._track, rid=request.rid, mode="write"
            )
        try:
            yield self.link.transfer(request.size)
            if self.config.model_disk:
                yield from self.node.disk_read(request.size)  # symmetric cost
        except Failure:
            return
        finally:
            self._service.pop(request.rid, None)
        if request.payload is not None:
            file = self.mds.lookup(request.fh.name)
            cursor = 0
            flat = request.payload.reshape(-1).view("uint8")
            for file_offset, nbytes in request.extents:
                file.write_bytes_from_array(
                    file_offset, flat[cursor : cursor + nbytes]
                )
                cursor += nbytes
        reply = IOReply(
            rid=request.rid,
            completed=True,
            result=request.size,
            fh=request.fh,
            offset=request.offset,
            bytes_streamed=float(request.size),
            demoted=False,
            served_active=False,
            finished_at=self.env.now,
        )
        self.finish(request, reply)

    # -- completion & stats -----------------------------------------------------------
    def finish(self, request: IORequest, reply: IOReply) -> None:
        """Remove from the queue and deliver the reply to the client.

        Also the completion entry point for the active handler.
        """
        if self.outstanding.pop(request.rid, None) is None:
            if request.reply.triggered or request.reply.defused:
                # Late completion of a request that crashed away, was
                # answered through another path, or was abandoned by a
                # cancelling client mid-delivery (defused reply, the
                # kernel's detached transfer outlives the cancel) —
                # counted so soak invariant checks can see the drop.
                self.metrics.inc("late_replies")
                tr = self.env.tracer
                if tr.enabled:
                    tr.instant(
                        self.env.now,
                        "late-reply",
                        self._track,
                        rid=request.rid,
                        completed=reply.completed,
                    )
                return
            raise PVFSError(f"finishing unknown request {request.rid}")
        timer = self._deadline_timers.pop(request.rid, None)
        if timer is not None:
            timer.cancel()
        self.metrics.inc("requests_completed")
        self.metrics.inc("bytes_streamed", reply.bytes_streamed)
        self.metrics.time_gauge("queue_length").set(len(self.outstanding))
        self.metrics.histogram("service_time").observe(
            self.env.now - request.submitted_at
        )
        tr = self.env.tracer
        if tr.enabled:
            tr.instant(
                self.env.now,
                "reply",
                self._track,
                rid=request.rid,
                completed=reply.completed,
                demoted=reply.demoted,
                served_active=reply.served_active,
            )
            tr.end(
                self.env.now,
                "request",
                self._track,
                rid=request.rid,
                outcome="demoted" if reply.demoted else "completed",
            )
        request.reply.succeed(reply)

    def queue_stats(self) -> Tuple[int, int, float, float]:
        """(n, k, D, D_A) over outstanding requests — paper Table II.

        n: total queued requests; k: active among them; D: total
        requested bytes; D_A: bytes requested by active I/Os.
        """
        n = len(self.outstanding)
        k = 0
        total = 0.0
        active = 0.0
        for req in self.outstanding.values():
            total += req.size
            if req.is_active:
                k += 1
                active += req.size
        return n, k, total, active

    def queued_active_requests(self) -> list:
        """Outstanding active requests in shedding order.

        Submission-ordered by default; with a tenant ledger attached,
        requests from tenants living furthest beyond their guarantee
        (outstanding borrowed debt, see
        :meth:`repro.qos.tenancy.TenantLedger.over_quota`) sort first —
        the multi-tenant refinement of the DOSAS shedding order: the
        noisy tenant's active work is demoted before anyone else's.
        """
        ledger = self.admission.tenants if self.admission is not None else None
        if ledger is None:
            return sorted(
                (r for r in self.outstanding.values() if r.is_active),
                key=lambda r: (r.submitted_at, r.rid),
            )
        now = self.env.now
        return sorted(
            (r for r in self.outstanding.values() if r.is_active),
            key=lambda r: (-ledger.over_quota(r.tenant, now), r.submitted_at, r.rid),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<IOServer {self.node.name} outstanding={len(self.outstanding)}>"
