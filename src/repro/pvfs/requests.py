"""I/O request and reply records.

An :class:`IORequest` is one per-server piece of a client read — the
unit that sits in the storage node's I/O queue (Figure 1) and that the
DOSAS scheduling algorithm decides about (the paper's i-th request with
data size d_i and type active/normal).

An :class:`IOReply` mirrors the paper's ``struct result`` (Table I):
``completed`` (0/1), ``buf`` (result, or kernel status when not
completed), the file handle and the current data position, so a
demoted request can be finished by the Active Storage Client.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, TYPE_CHECKING

import numpy as np
import numpy.typing as npt

from repro.kernels.base import KernelCheckpoint
from repro.pvfs.filehandle import FileHandle, PVFSFile

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event


class IOKind(enum.Enum):
    """Request type: the paper's Normal I/O vs Active I/O, plus writes."""

    NORMAL = "normal"
    ACTIVE = "active"
    WRITE = "write"


_rid_counter = itertools.count(1)


def next_request_id() -> int:
    """Globally unique request id."""
    return next(_rid_counter)


def reset_request_ids(start: int = 1) -> None:
    """Restart the request-id sequence.

    Request ids are process-global so ids never collide across runs;
    tools comparing trace exports between two same-seed runs (the
    determinism tests, ``repro trace`` diffing) reset the sequence so
    both runs label requests identically.
    """
    global _rid_counter
    _rid_counter = itertools.count(start)


def slice_extents(
    extents: Tuple[Tuple[int, int], ...], start: int, length: int
) -> List[Tuple[int, int]]:
    """Map a range of the *concatenated* extent stream to file pieces.

    A striped request's data is the concatenation of its (possibly
    non-contiguous) ``(file_offset, nbytes)`` extents in logical
    order.  Checkpoints count progress along that stream; this helper
    translates stream position ``[start, start+length)`` back to file
    extents, so both the runtime and the ASC read exactly the right
    stripes when resuming.
    """
    if start < 0 or length < 0:
        raise ValueError("start and length must be non-negative")
    out: List[Tuple[int, int]] = []
    stream = 0
    remaining = length
    for file_offset, nbytes in extents:
        if remaining <= 0:
            break
        piece_end = stream + nbytes
        if piece_end <= start:
            stream = piece_end
            continue
        skip = max(0, start - stream)
        take = min(nbytes - skip, remaining)
        if take > 0:
            out.append((file_offset + skip, take))
            remaining -= take
        stream = piece_end
    if remaining > 0:
        raise ValueError(
            f"range [{start}, {start + length}) exceeds the extent stream"
        )
    return out


def read_extent_stream(
    file: PVFSFile,
    extents: Tuple[Tuple[int, int], ...],
    start: int,
    length: int,
    dtype: npt.DTypeLike = np.float64,
) -> np.ndarray:
    """Materialise ``[start, start+length)`` of the extent stream."""
    pieces = [
        file.read_bytes_as_array(off, nbytes, dtype=dtype)
        for off, nbytes in slice_extents(extents, start, length)
    ]
    if not pieces:
        return np.empty(0, dtype=dtype)
    return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)


@dataclass
class IORequest:
    """One per-server I/O request.

    Attributes
    ----------
    rid:
        Unique id (one logical client read that stripes over s servers
        produces s requests sharing ``parent_id``).
    parent_id:
        Id of the logical client operation.
    kind:
        NORMAL or ACTIVE.
    fh:
        Client file handle.
    offset, size:
        The *logical* extent this request covers (already restricted
        to one server by the client-side striping).
    operation:
        Kernel name for active requests, None for normal.
    meta:
        Kernel metadata (e.g. row width).
    client_name:
        Requesting compute node (for tracing).
    reply:
        Event succeeded with the :class:`IOReply`.
    submitted_at:
        Simulation time of submission.
    resume_from:
        Checkpoint when this request resumes a previously interrupted
        kernel execution.
    deadline:
        Absolute simulated time after which the work is worthless.
        Servers refuse expired arrivals and cancel expired queued work
        with ``DeadlineExceeded``; ``None`` means no deadline.
    tenant:
        Name of the tenant (job) this request belongs to, carried from
        the workload through the ASC so servers can police per-tenant
        rate guarantees; ``None`` means unpoliced.
    """

    rid: int
    parent_id: int
    kind: IOKind
    fh: FileHandle
    offset: int
    size: int
    operation: Optional[str]
    client_name: str
    reply: "Event"
    submitted_at: float
    meta: dict = field(default_factory=dict)
    resume_from: Optional[KernelCheckpoint] = None
    deadline: Optional[float] = None
    tenant: Optional[str] = None
    #: WRITE requests may carry real bytes (None in timing-only runs).
    payload: Optional[np.ndarray] = None
    #: The exact file pieces this request covers, as
    #: ``((file_offset, nbytes), …)`` in logical order.  For an
    #: unstriped request this is just ``((offset, size),)``; striped
    #: requests list each of the server's stripes.
    extents: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative request size {self.size}")
        if self.offset < 0:
            raise ValueError(f"negative request offset {self.offset}")
        if self.kind is IOKind.ACTIVE and not self.operation:
            raise ValueError("active requests need an operation name")
        if not self.extents:
            self.extents = ((self.offset, self.size),)
        total = sum(nbytes for _off, nbytes in self.extents)
        if total != self.size:
            raise ValueError(
                f"extents cover {total} bytes but size says {self.size}"
            )

    @property
    def is_active(self) -> bool:
        """True for active I/O."""
        return self.kind is IOKind.ACTIVE

    def read_stream(
        self, file: PVFSFile, start: int, length: int, dtype: npt.DTypeLike = np.float64
    ) -> np.ndarray:
        """Read ``[start, start+length)`` of this request's data stream."""
        return read_extent_stream(file, self.extents, start, length, dtype)


@dataclass
class IOReply:
    """The paper's ``struct result`` (Table I) plus tracing fields.

    Attributes
    ----------
    rid:
        The request this answers.
    completed:
        True ⇔ the paper's ``completed == 1``: the active computation
        finished (or, for a normal read, the data arrived).
    result:
        ``buf`` when completed: the kernel result (or data size for a
        normal read).
    checkpoint:
        ``buf`` when *not* completed: the saved kernel status, or None
        when the request was demoted before starting.
    fh:
        File handle (so the client can finish the work).
    offset:
        "current data position" — the first byte the client-side kernel
        still has to process.
    remaining:
        Bytes of the request extent not yet processed (0 when
        completed); the ASC reads exactly this much to finish.
    bytes_streamed:
        Bytes that crossed the network for this reply.
    demoted:
        True when the server changed this active I/O into a normal I/O.
    served_active:
        True when a storage-side kernel (fully) produced the result.
    finished_at:
        Simulation time of the reply.
    """

    rid: int
    completed: bool
    result: Any = None
    checkpoint: Optional[KernelCheckpoint] = None
    fh: Optional[FileHandle] = None
    offset: int = 0
    remaining: int = 0
    bytes_streamed: float = 0.0
    demoted: bool = False
    served_active: bool = False
    finished_at: float = 0.0
    #: The request's extent list (see :attr:`IORequest.extents`),
    #: echoed back so the ASC can finish demoted striped requests.
    extents: Tuple[Tuple[int, int], ...] = ()
    #: Bytes of the extent stream already folded into ``checkpoint``.
    bytes_done: int = 0
    #: Name of the output file a filter kernel wrote at the storage
    #: node (Son et al. write-back convention), when applicable.
    output_file: Optional[str] = None
