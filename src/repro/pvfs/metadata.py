"""Metadata server: namespace, handles, layouts.

PVFS2 separates metadata from data; DOSAS only needs create/open/
stat/unlink plus the stripe layout lookup, so that is what this server
provides.  Metadata operations are modelled as instantaneous (the
paper's workloads are data-dominated; an optional per-op latency knob
exists for ablations).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.pvfs.filehandle import FileHandle, PVFSFile, SyntheticData
from repro.pvfs.layout import StripeLayout


class PVFSError(Exception):
    """File-system level errors (missing files, duplicate creates…)."""


class MetadataServer:
    """The single metadata server of the file system."""

    def __init__(self, n_io_servers: int, default_stripe_size: int) -> None:
        if n_io_servers <= 0:
            raise ValueError("n_io_servers must be positive")
        if default_stripe_size <= 0:
            raise ValueError("default_stripe_size must be positive")
        self.n_io_servers = int(n_io_servers)
        self.default_stripe_size = int(default_stripe_size)
        self._files: Dict[str, PVFSFile] = {}

    # -- namespace ops -------------------------------------------------------
    def create(
        self,
        name: str,
        size: int,
        data: Optional[np.ndarray] = None,
        stripe_size: Optional[int] = None,
        n_servers: Optional[int] = None,
        first_server: int = 0,
        seed: int = 0,
        meta: Optional[dict] = None,
        writable: bool = False,
        n_replicas: int = 1,
    ) -> PVFSFile:
        """Create a file.

        ``data`` attaches real content; otherwise the file gets a
        deterministic synthetic provider so kernels can still compute
        on it.  ``writable=True`` (without ``data``) materialises a
        zero-filled buffer so the file accepts writes — used for
        kernel output files.  ``n_replicas > 1`` declares each byte
        servable by that many servers (chained over the whole
        deployment) — the candidate set hedged reads choose from.
        """
        if name in self._files:
            raise PVFSError(f"file {name!r} already exists")
        if writable and data is None:
            if size % 8:
                raise PVFSError("writable files must be 8-byte sized")
            data = np.zeros(size // 8, dtype=np.float64)
        width = min(n_servers or self.n_io_servers, self.n_io_servers)
        if not 0 <= first_server < self.n_io_servers:
            raise PVFSError(
                f"first_server {first_server} out of range for "
                f"{self.n_io_servers} I/O servers"
            )
        layout = StripeLayout(
            stripe_size=stripe_size or self.default_stripe_size,
            n_servers=width,
            server_list=[
                (first_server + j) % self.n_io_servers for j in range(width)
            ],
            n_replicas=n_replicas,
            replica_span=self.n_io_servers,
        )
        if data is not None:
            size = data.nbytes
        file = PVFSFile(
            name=name,
            size=int(size),
            layout=layout,
            data=data,
            synthetic=None if data is not None else SyntheticData(seed),
            meta=dict(meta or {}),
        )
        self._files[name] = file
        return file

    def open(self, name: str) -> FileHandle:
        """Return a fresh handle for an existing file."""
        return FileHandle.for_file(self.lookup(name))

    def lookup(self, name: str) -> PVFSFile:
        """The server-side file object for ``name``."""
        try:
            return self._files[name]
        except KeyError:
            raise PVFSError(f"no such file {name!r}") from None

    def stat(self, name: str) -> dict:
        """Size/layout attributes of ``name``."""
        f = self.lookup(name)
        return {
            "name": f.name,
            "size": f.size,
            "stripe_size": f.layout.stripe_size,
            "n_servers": f.layout.n_servers,
            "has_content": f.has_content,
        }

    def unlink(self, name: str) -> None:
        """Remove ``name`` from the namespace."""
        if name not in self._files:
            raise PVFSError(f"no such file {name!r}")
        del self._files[name]

    def listdir(self) -> list:
        """All file names, sorted."""
        return sorted(self._files)

    def __contains__(self, name: str) -> bool:
        return name in self._files
