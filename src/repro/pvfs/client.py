"""The PVFS client library running on each compute node.

Scatters logical reads over the I/O servers holding the file's
stripes, gathers the per-server replies, and exposes both the normal
path (plain reads) and the active path (reads carrying an operation
name).  The Active Storage Client (``repro.core.asc``) builds on the
active path; plain applications use :meth:`read`.

All client methods are *simulation processes*: drive them with
``yield from`` inside another process, or wrap in ``env.process`` and
``env.run(until=...)``.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Sequence, TYPE_CHECKING

from repro.sim.engine import Environment
from repro.sim.events import AllOf, Event
from repro.cluster.node import ComputeNode

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np
from repro.kernels.base import KernelCheckpoint
from repro.pvfs.filehandle import FileHandle
from repro.pvfs.metadata import MetadataServer, PVFSError
from repro.pvfs.requests import IOKind, IOReply, IORequest, next_request_id
from repro.pvfs.server import IOServer

_parent_counter = itertools.count(1)


def reset_parent_ids(start: int = 1) -> None:
    """Restart the logical-operation id sequence.

    Parent ids are globally unique within a process so concurrent runs
    never collide; trace-determinism tests (and any tool diffing trace
    exports between runs) reset them so two same-seed runs serialise
    byte-identically.  See also
    :func:`repro.pvfs.requests.reset_request_ids`.
    """
    global _parent_counter
    _parent_counter = itertools.count(start)


class PVFSClient:
    """One compute node's file-system client."""

    def __init__(
        self,
        env: Environment,
        node: ComputeNode,
        servers: Sequence[IOServer],
        mds: MetadataServer,
        tenant: Optional[str] = None,
    ) -> None:
        if not servers:
            raise PVFSError("a PVFS deployment needs at least one I/O server")
        self.env = env
        self.node = node
        self.servers = list(servers)
        self.mds = mds
        #: Tenant identity stamped onto every request this client
        #: fabricates, so servers can police per-tenant guarantees.
        self.tenant = tenant

    # -- namespace -------------------------------------------------------------
    def open(self, name: str) -> FileHandle:
        """Open ``name`` (metadata ops are instantaneous)."""
        return self.mds.open(name)

    # -- request fabrication ---------------------------------------------------------
    def _build_requests(
        self,
        fh: FileHandle,
        offset: int,
        size: int,
        kind: IOKind,
        operation: Optional[str],
        meta: Optional[dict],
        resume_from: Optional[KernelCheckpoint] = None,
    ) -> List[IORequest]:
        if offset < 0 or size < 0 or offset + size > fh.size:
            raise PVFSError(
                f"extent [{offset}, {offset + size}) outside {fh.name!r} "
                f"of size {fh.size}"
            )
        parent = next(_parent_counter)
        # Per-server stripe pieces in logical order.
        pieces_by_server: Dict[int, List] = {}
        for piece in fh.layout.map_extent(offset, size):
            pieces_by_server.setdefault(piece.server, []).append(piece)

        requests: List[IORequest] = []
        for server_idx in sorted(pieces_by_server):
            pieces = pieces_by_server[server_idx]
            requests.append(
                IORequest(
                    rid=next_request_id(),
                    parent_id=parent,
                    kind=kind,
                    fh=fh,
                    offset=pieces[0].logical_offset,
                    size=sum(p.length for p in pieces),
                    operation=operation,
                    client_name=self.node.name,
                    reply=self.env.event(),
                    submitted_at=self.env.now,
                    meta=dict(meta or {}),
                    resume_from=resume_from,
                    tenant=self.tenant,
                    extents=tuple(
                        (p.logical_offset, p.length) for p in pieces
                    ),
                )
            )
        return requests

    # -- normal I/O -------------------------------------------------------------
    def read(
        self, fh: FileHandle, offset: int = 0, size: Optional[int] = None
    ) -> Generator[Event, Any, List[IOReply]]:
        """Read ``size`` bytes at ``offset`` (simulation process).

        Returns the list of per-server :class:`IOReply` objects; the
        total transferred equals ``size``.
        """
        size = fh.size - offset if size is None else size
        requests = self._build_requests(fh, offset, size, IOKind.NORMAL, None, None)
        return self._scatter_gather(requests)

    # -- writes ----------------------------------------------------------------
    def write(
        self,
        fh: FileHandle,
        offset: int = 0,
        size: Optional[int] = None,
        data: Optional["np.ndarray"] = None,
    ) -> Generator[Event, Any, List[IOReply]]:
        """Write ``size`` bytes at ``offset`` (simulation process).

        ``data`` (numpy array) attaches real bytes — each per-server
        request receives the slice matching its stripes; ``None``
        performs a timing-only write.
        """
        import numpy as np

        if data is not None:
            data = np.ascontiguousarray(data)
            size = data.nbytes if size is None else size
        size = fh.size - offset if size is None else size
        requests = self._build_requests(fh, offset, size, IOKind.WRITE, None, None)
        if data is not None:
            flat = data.reshape(-1).view(np.uint8)
            for request in requests:
                pieces = []
                for file_offset, nbytes in request.extents:
                    rel = file_offset - offset
                    pieces.append(flat[rel : rel + nbytes])
                request.payload = (
                    pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
                )
        return self._scatter_gather(requests)

    # -- active I/O -----------------------------------------------------------
    def read_active(
        self,
        fh: FileHandle,
        operation: str,
        offset: int = 0,
        size: Optional[int] = None,
        meta: Optional[dict] = None,
        resume_from: Optional[KernelCheckpoint] = None,
    ) -> Generator[Event, Any, List[IOReply]]:
        """Issue an active read (simulation process).

        Each stripe server receives an active request for its share;
        replies may be completed (server-side result), demoted
        (``completed == 0``), or partially-completed with a checkpoint.
        The caller — normally the ASC — handles demotions.
        """
        size = fh.size - offset if size is None else size
        requests = self._build_requests(
            fh, offset, size, IOKind.ACTIVE, operation, meta, resume_from
        )
        return self._scatter_gather(requests)

    # -- transport -------------------------------------------------------------
    def server_for(self, request: IORequest) -> IOServer:
        """The I/O server that owns this request's stripes."""
        server_idx = request.fh.layout.server_of(request.offset)
        return self.servers[server_idx % len(self.servers)]

    def candidates_for(self, request: IORequest) -> List[int]:
        """Global indices of every server able to serve this request.

        The layout's replica chain (primary first), clipped to the
        deployment — the candidate set a straggler-aware dispatcher
        reorders.  Width-spanning requests hedge on the primary
        stripe's replicas.
        """
        replicas = request.fh.layout.replicas_of(request.offset)
        n = len(self.servers)
        out: List[int] = []
        for idx in replicas:
            idx %= n
            if idx not in out:
                out.append(idx)
        return out

    def submit(self, request: IORequest) -> IOServer:
        """Route one request to its stripe server and return the server.

        The retry machinery in the ASC submits pieces individually so
        it can attach its own timeout to each reply.
        """
        return self.submit_to(request, self.server_for(request))

    def submit_to(self, request: IORequest, server: IOServer) -> IOServer:
        """Route one request to an explicitly chosen (replica) server.

        The straggler-aware dispatcher picks among
        :meth:`candidates_for`; plain :meth:`submit` is the degenerate
        layout-primary case.
        """
        tr = self.env.tracer
        if tr.enabled:
            tr.instant(
                self.env.now,
                "issue",
                f"client:{self.node.name}",
                rid=request.rid,
                server=server.node.name,
                io=request.kind.value,
                parent=request.parent_id,
            )
        server.submit(request)
        return server

    def reissue(
        self,
        request: IORequest,
        resume_from: Optional[KernelCheckpoint] = None,
    ) -> IORequest:
        """Clone ``request`` for a retry: fresh id, fresh reply event.

        ``resume_from`` carries the latest checkpoint so the server
        (or a demotion-finishing client) continues from exactly where
        the failed attempt left off — completed bytes are never
        re-read.  Without one, the original request's checkpoint (if
        any) is preserved.
        """
        return IORequest(
            rid=next_request_id(),
            parent_id=request.parent_id,
            kind=request.kind,
            fh=request.fh,
            offset=request.offset,
            size=request.size,
            operation=request.operation,
            client_name=request.client_name,
            reply=self.env.event(),
            submitted_at=self.env.now,
            meta=dict(request.meta),
            resume_from=resume_from if resume_from is not None else request.resume_from,
            deadline=request.deadline,
            tenant=request.tenant,
            extents=request.extents,
        )

    def _scatter_gather(
        self, requests: List[IORequest]
    ) -> Generator[Event, Any, List[IOReply]]:
        """Submit per-server requests, wait for every reply (process)."""
        for request in requests:
            self.submit(request)

        yield AllOf(self.env, [r.reply for r in requests])
        replies: List[IOReply] = [r.reply.value for r in requests]
        return replies
