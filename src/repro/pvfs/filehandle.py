"""File objects and handles.

A :class:`PVFSFile` is the server-side object: name, size, stripe
layout, and an optional data provider.  A :class:`FileHandle` is the
client-side capability returned by the metadata server (the ``fh`` the
paper's ``struct result`` carries so a demoted I/O can be completed
client-side).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
import numpy.typing as npt


class SyntheticData:
    """Deterministic pseudo-data provider for size-only files.

    Generates reproducible float64 content for any byte extent without
    materialising the whole file, so correctness checks work even on
    simulated multi-gigabyte files.  Byte extents must be 8-byte
    aligned when read as floats.

    The file is conceptually split into fixed element blocks; block j
    is generated with a counter-based Philox generator keyed on
    ``(seed, j)``, so any extent reads identically regardless of how
    it is chunked — a property the test suite checks (prefix+suffix
    reads must equal one whole read).
    """

    ITEMSIZE = 8
    BLOCK_ELEMS = 4096

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def _block(self, index: int) -> np.ndarray:
        rng = np.random.Generator(
            np.random.Philox(key=(self.seed << 32) ^ index)
        )
        return rng.random(self.BLOCK_ELEMS, dtype=np.float64)

    def read(self, offset: int, size: int) -> np.ndarray:
        """float64 elements for bytes ``[offset, offset+size)``."""
        if offset % self.ITEMSIZE or size % self.ITEMSIZE:
            raise ValueError("synthetic reads must be 8-byte aligned")
        start = offset // self.ITEMSIZE
        count = size // self.ITEMSIZE
        if count == 0:
            return np.empty(0, dtype=np.float64)
        first_block = start // self.BLOCK_ELEMS
        last_block = (start + count - 1) // self.BLOCK_ELEMS
        parts = [self._block(j) for j in range(first_block, last_block + 1)]
        data = np.concatenate(parts) if len(parts) > 1 else parts[0]
        lo = start - first_block * self.BLOCK_ELEMS
        return data[lo : lo + count].copy()


@dataclass
class PVFSFile:
    """Server-side file object.

    Attributes
    ----------
    name:
        Path-like identifier.
    size:
        Logical size in bytes.
    layout:
        Stripe distribution.
    data:
        Backing numpy array (float64/uint8) when the file carries real
        content, else ``None`` for size-only files.
    synthetic:
        Deterministic provider used when ``data`` is None and a kernel
        actually needs bytes.
    meta:
        Free-form attributes (e.g. image width for 2-D kernels).
    """

    name: str
    size: int
    layout: "StripeLayout"
    data: Optional[np.ndarray] = None
    synthetic: Optional[SyntheticData] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative file size {self.size}")
        if self.data is not None and self.data.nbytes != self.size:
            raise ValueError(
                f"data has {self.data.nbytes} bytes but size says {self.size}"
            )

    def read_bytes_as_array(
        self, offset: int, size: int, dtype: npt.DTypeLike = np.float64
    ) -> np.ndarray:
        """Materialise the extent ``[offset, offset+size)`` as an array."""
        if offset < 0 or size < 0 or offset + size > self.size:
            raise ValueError(
                f"extent [{offset}, {offset + size}) outside file of size {self.size}"
            )
        if self.data is not None:
            flat = self.data.reshape(-1).view(np.uint8)
            return flat[offset : offset + size].view(dtype).copy()
        if self.synthetic is not None:
            arr = self.synthetic.read(offset, size)
            return arr.view(dtype) if dtype != np.float64 else arr
        raise ValueError(f"file {self.name!r} is size-only and has no provider")

    def write_bytes_from_array(self, offset: int, array: np.ndarray) -> int:
        """Store ``array``'s bytes at ``offset``; returns bytes written.

        Only content-backed (writable) files accept writes — a
        synthetic provider is immutable by construction.
        """
        payload = np.ascontiguousarray(array).reshape(-1).view(np.uint8)
        if offset < 0 or offset + payload.size > self.size:
            raise ValueError(
                f"write [{offset}, {offset + payload.size}) outside file "
                f"of size {self.size}"
            )
        if self.data is None:
            raise ValueError(
                f"file {self.name!r} is not writable (no content buffer)"
            )
        flat = self.data.reshape(-1).view(np.uint8)
        flat[offset : offset + payload.size] = payload
        return int(payload.size)

    @property
    def has_content(self) -> bool:
        """True when real or synthetic bytes are available."""
        return self.data is not None or self.synthetic is not None

    @property
    def writable(self) -> bool:
        """True when the file accepts writes."""
        return self.data is not None


# FileHandle ids are global so every client/server pair agrees.
_handle_counter = itertools.count(1)


@dataclass(frozen=True)
class FileHandle:
    """Client-side capability for an open file."""

    handle_id: int
    name: str
    size: int
    layout: "StripeLayout"
    meta: tuple = ()

    @staticmethod
    def for_file(file: PVFSFile) -> "FileHandle":
        """Mint a fresh handle for ``file``."""
        return FileHandle(
            handle_id=next(_handle_counter),
            name=file.name,
            size=file.size,
            layout=file.layout,
            meta=tuple(sorted(file.meta.items())),
        )

    @property
    def meta_dict(self) -> Dict[str, object]:
        """File attributes as a dict."""
        return dict(self.meta)


from repro.pvfs.layout import StripeLayout  # noqa: E402  (dataclass forward ref)
