"""PVFS2-style parallel file system substrate.

The DOSAS prototype was "built using the PVFS2 parallel file system"
(paper Sec. III).  This subpackage reproduces the parts DOSAS depends
on: a metadata server handing out file handles, round-robin striping
of file data across I/O servers, per-server request queues (the
contended resource of Figure 1), and a client that scatters requests
and gathers replies.

Files can carry real numpy-backed data (examples and correctness
tests exercise actual kernels on actual bytes) or be *size-only*
(pure timing studies at paper scale — a simulated 1 GB request needs
no real gigabyte).
"""

from repro.pvfs.layout import StripeLayout, StripeExtent
from repro.pvfs.filehandle import FileHandle, PVFSFile, SyntheticData
from repro.pvfs.metadata import MetadataServer, PVFSError
from repro.pvfs.requests import IOKind, IOReply, IORequest
from repro.pvfs.server import (
    IOServer,
    ServerCrashed,
    ServerFault,
    ServerUnavailable,
)
from repro.pvfs.client import PVFSClient

__all__ = [
    "FileHandle",
    "IOKind",
    "IOReply",
    "IORequest",
    "IOServer",
    "MetadataServer",
    "PVFSClient",
    "PVFSError",
    "PVFSFile",
    "ServerCrashed",
    "ServerFault",
    "ServerUnavailable",
    "StripeExtent",
    "StripeLayout",
    "SyntheticData",
]
