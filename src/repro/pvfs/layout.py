"""Round-robin stripe layout (PVFS "simple striping" distribution).

A file is chopped into ``stripe_size`` units dealt round-robin across
``n_servers`` I/O servers starting at ``first_server``.  The layout
maps any byte extent to per-server extents and back — the round-trip
is property-tested (no byte lost, none duplicated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class StripeExtent:
    """A contiguous piece of one logical extent on one server.

    Attributes
    ----------
    server:
        I/O server index in [0, n_servers).
    logical_offset:
        Offset of this piece within the file.
    length:
        Bytes in this piece.
    """

    server: int
    logical_offset: int
    length: int

    @property
    def logical_end(self) -> int:
        """One past the last byte of the piece."""
        return self.logical_offset + self.length


class StripeLayout:
    """Round-robin distribution of file bytes over I/O servers.

    Parameters
    ----------
    stripe_size:
        Striping unit in bytes.
    n_servers:
        Stripe width — how many servers the file spreads over.
    first_server:
        Which *slot* holds stripe 0 (rotation within the width).
    server_list:
        Global I/O-server indices backing the width's slots; defaults
        to ``0..n_servers-1``.  Lets a narrow file (width 1 or 2) live
        on any subset of a larger deployment — PVFS's datafile
        handle list.
    n_replicas:
        How many servers can serve any given byte (1 = unreplicated).
        Replica ``k`` of an offset whose primary is global server ``p``
        lives on global server ``(p + k) % replica_span`` — chained
        declustering over the deployment, so consecutive replicas land
        on distinct nodes.
    replica_span:
        Deployment size the replica chain wraps over; defaults to
        ``max(server_list) + 1``.
    """

    def __init__(
        self,
        stripe_size: int,
        n_servers: int,
        first_server: int = 0,
        server_list: Optional[Sequence[int]] = None,
        n_replicas: int = 1,
        replica_span: int | None = None,
    ) -> None:
        if stripe_size <= 0:
            raise ValueError(f"stripe_size must be positive, got {stripe_size}")
        if n_servers <= 0:
            raise ValueError(f"n_servers must be positive, got {n_servers}")
        if not 0 <= first_server < n_servers:
            raise ValueError("first_server out of range")
        self.stripe_size = int(stripe_size)
        self.n_servers = int(n_servers)
        self.first_server = int(first_server)
        if server_list is None:
            self.server_list = tuple(range(n_servers))
        else:
            self.server_list = tuple(int(s) for s in server_list)
            if len(self.server_list) != n_servers:
                raise ValueError(
                    f"server_list has {len(self.server_list)} entries for "
                    f"width {n_servers}"
                )
            if any(s < 0 for s in self.server_list):
                raise ValueError("server indices must be non-negative")
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        self.replica_span = (
            max(self.server_list) + 1 if replica_span is None else int(replica_span)
        )
        if self.replica_span < 1:
            raise ValueError("replica_span must be >= 1")
        if max(self.server_list) >= self.replica_span:
            raise ValueError("server_list exceeds replica_span")
        # A chain longer than the deployment would wrap onto itself.
        self.n_replicas = min(int(n_replicas), self.replica_span)

    def server_of(self, offset: int) -> int:
        """The global server index holding the byte at ``offset``."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        stripe_index = offset // self.stripe_size
        slot = (self.first_server + stripe_index) % self.n_servers
        return self.server_list[slot]

    def replicas_of(self, offset: int) -> List[int]:
        """Every global server able to serve ``offset``, primary first.

        Replicas follow the chained-declustering rule documented on the
        constructor; the list is deduplicated (a tiny deployment may
        wrap) and ordered primary, then successive replicas — the
        *candidate set* the straggler-aware dispatcher reorders.
        """
        primary = self.server_of(offset)
        out: List[int] = []
        for k in range(self.n_replicas):
            server = (primary + k) % self.replica_span
            if server not in out:
                out.append(server)
        return out

    def map_extent(self, offset: int, size: int) -> List[StripeExtent]:
        """Split ``[offset, offset+size)`` into per-server pieces.

        Pieces come back in logical-offset order; adjacent same-server
        pieces are *not* merged (each is one stripe or a fragment),
        because the server processes stripes independently.
        """
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if size < 0:
            raise ValueError(f"negative size {size}")
        pieces: List[StripeExtent] = []
        position = offset
        end = offset + size
        while position < end:
            stripe_index = position // self.stripe_size
            stripe_end = (stripe_index + 1) * self.stripe_size
            length = min(end, stripe_end) - position
            pieces.append(
                StripeExtent(
                    server=self.server_of(position),
                    logical_offset=position,
                    length=length,
                )
            )
            position += length
        return pieces

    def bytes_per_server(self, offset: int, size: int) -> Dict[int, int]:
        """Total bytes of the extent resident on each server."""
        out: Dict[int, int] = {}
        for piece in self.map_extent(offset, size):
            out[piece.server] = out.get(piece.server, 0) + piece.length
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StripeLayout stripe={self.stripe_size} servers={self.n_servers} "
            f"first={self.first_server}>"
        )
