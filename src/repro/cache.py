"""On-disk result cache for sweep points (``repro.cache``).

Re-running a figure or table bench replays dozens of simulations whose
inputs have not changed.  :class:`ResultCache` memoises each completed
(scheme, spec[, plan]) point on disk, keyed by a *stable content hash*
of the point plus a code-version salt, so unchanged points become
cache hits and edited simulator code invalidates everything at once.

Keying
------
The key is the SHA-256 of a canonical JSON document::

    {"salt": <code-version salt>,
     "scheme": "dosas",
     "spec": {...every WorkloadSpec field...},
     "plan": [...every PlannedRequest field...] | null}

Canonical means ``sort_keys=True`` with compact separators — dict
insertion order, dataclass field order and whitespace cannot perturb
the key.  The salt defaults to :func:`default_salt`, a hash of the
package version plus the source text of the simulation-critical
modules: editing the engine, the schemes or the runtime changes the
salt and naturally invalidates stale entries.  Pass an explicit salt
to pin (or bust) the namespace by hand.

Entries are one JSON file per key (sharded by the key's first two hex
chars) holding the serialised :class:`~repro.core.SchemeResult` or
:class:`~repro.core.PlanResult`.  Numpy payloads (kernel results) are
stored as nested lists and come back as lists, which is sufficient for
every analysis consumer; the simulated *numbers* round-trip exactly
because JSON floats are IEEE doubles.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import asdict
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.metrics import MetricsRegistry

_log = logging.getLogger("repro.cache")

from repro.core.planrun import PlanResult, RequestOutcome
from repro.core.schemes import Scheme, SchemeResult, WorkloadSpec
from repro.workload.generator import PlannedRequest, RequestPlan

__all__ = [
    "ResultCache",
    "default_salt",
    "point_key",
    "result_to_dict",
    "result_from_dict",
]

#: Modules whose source text feeds :func:`default_salt` — the layers
#: whose behaviour determines simulated results.
_SALT_MODULES = (
    "repro.sim.engine",
    "repro.sim.events",
    "repro.sim.process",
    "repro.sim.resources",
    "repro.sim.store",
    "repro.cluster.config",
    "repro.cluster.network",
    "repro.cluster.node",
    "repro.pvfs.server",
    "repro.pvfs.client",
    "repro.core.schemes",
    "repro.core.planrun",
    "repro.core.runtime",
    "repro.core.estimator",
    "repro.core.scheduler",
    "repro.core.model",
)

_default_salt_memo: Optional[str] = None


def default_salt() -> str:
    """Code-version salt: package version + simulator source digest.

    Computed once per process.  Falls back to the bare version string
    when module sources are unreadable (zipapp, stripped install).
    """
    global _default_salt_memo
    if _default_salt_memo is None:
        import importlib

        import repro

        h = hashlib.sha256(repro.__version__.encode())
        try:
            for name in _SALT_MODULES:
                mod = importlib.import_module(name)
                with open(mod.__file__, "rb") as fh:  # type: ignore[arg-type]
                    h.update(fh.read())
        except (OSError, TypeError, ImportError):
            pass
        _default_salt_memo = h.hexdigest()[:16]
    return _default_salt_memo


def _jsonable(obj: Any) -> Any:
    """Plain-JSON view of a result payload (numpy-aware, recursive)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):  # numpy arrays and scalars
        return _jsonable(tolist())
    item = getattr(obj, "item", None)
    if callable(item):
        return _jsonable(item())
    return repr(obj)


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def point_key(
    scheme: Scheme,
    spec: WorkloadSpec,
    plan: Optional[Union[RequestPlan, Iterable[PlannedRequest]]] = None,
    salt: Optional[str] = None,
) -> str:
    """Stable content hash identifying one sweep point."""
    doc = {
        "salt": default_salt() if salt is None else salt,
        "scheme": scheme.value,
        "spec": asdict(spec),
        "plan": None if plan is None else [asdict(r) for r in plan],
    }
    return hashlib.sha256(_canonical(doc).encode()).hexdigest()


# -- result (de)serialisation -------------------------------------------------

def result_to_dict(result: Union[SchemeResult, PlanResult]) -> dict:
    """JSON-safe document for either result type."""
    if isinstance(result, SchemeResult):
        d = asdict(result)
        d["scheme"] = result.scheme.value
        d["results"] = _jsonable(result.results)
        return {"type": "scheme", "data": _jsonable(d)}
    if isinstance(result, PlanResult):
        return {
            "type": "plan",
            "data": {
                "scheme": result.scheme.value,
                "outcomes": [
                    {
                        "request": asdict(o.request),
                        "started_at": o.started_at,
                        "finished_at": o.finished_at,
                        "result": _jsonable(o.result),
                        "disposition": o.disposition,
                    }
                    for o in result.outcomes
                ],
                "served_active": result.served_active,
                "demoted": result.demoted,
                "interrupted": result.interrupted,
                "retries": result.retries,
                "retry_timeouts": result.retry_timeouts,
                "failed_requests": result.failed_requests,
                "wasted_bytes": result.wasted_bytes,
                "fault_log": _jsonable(result.fault_log),
                "retry_events": _jsonable(result.retry_events),
            },
        }
    raise TypeError(f"cannot serialise {type(result).__name__}")


def result_from_dict(doc: dict) -> Union[SchemeResult, PlanResult]:
    """Inverse of :func:`result_to_dict`."""
    kind, data = doc["type"], dict(doc["data"])
    if kind == "scheme":
        data["scheme"] = Scheme(data["scheme"])
        data["spec"] = WorkloadSpec(**data["spec"])
        return SchemeResult(**data)
    if kind == "plan":
        data["scheme"] = Scheme(data["scheme"])
        data["outcomes"] = [
            RequestOutcome(
                request=PlannedRequest(**o["request"]),
                started_at=o["started_at"],
                finished_at=o["finished_at"],
                result=o["result"],
                disposition=o["disposition"],
            )
            for o in data["outcomes"]
        ]
        return PlanResult(**data)
    raise ValueError(f"unknown result document type {kind!r}")


class ResultCache:
    """Directory of memoised sweep-point results.

    Parameters
    ----------
    root:
        Cache directory (created on first store).
    salt:
        Key-namespace salt; defaults to :func:`default_salt` so code
        edits invalidate old entries automatically.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        salt: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.root = os.fspath(root)
        self.salt = default_salt() if salt is None else salt
        #: Session counters (reported by the sweep CLI).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Observable degrade path: unreadable/undecodable entries are
        #: counted (``cache.corrupt_entries``) and logged, never
        #: silently swallowed — a corrupted cache directory should be
        #: visible, not just slow.
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def corrupt_entries(self) -> int:
        """Entries that existed on disk but could not be used."""
        return int(self.metrics.get_counter("cache.corrupt_entries"))

    def key(
        self,
        scheme: Scheme,
        spec: WorkloadSpec,
        plan: Optional[RequestPlan] = None,
    ) -> str:
        """The point's content hash under this cache's salt."""
        return point_key(scheme, spec, plan, salt=self.salt)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Union[SchemeResult, PlanResult]]:
        """The memoised result, or ``None`` on a miss.

        An entry that exists but cannot be read or decoded degrades to
        a miss *observably*: it increments ``cache.corrupt_entries``
        and emits a debug log naming the entry and the cause, so a
        corrupted cache directory shows up in metrics instead of
        masquerading as a cold cache.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError) as exc:
            self._degrade(path, "unreadable entry", exc)
            return None
        try:
            result = result_from_dict(doc)
        except (KeyError, TypeError, ValueError) as exc:
            # Schema drift from an older version of the result format.
            self._degrade(path, "undecodable entry (schema drift?)", exc)
            return None
        self.hits += 1
        return result

    def _degrade(self, path: str, why: str, exc: Exception) -> None:
        """Count + log a corrupt entry, then treat it as a miss."""
        self.misses += 1
        self.metrics.inc("cache.corrupt_entries")
        _log.debug("result cache: %s %s treated as a miss: %s: %s",
                   why, path, type(exc).__name__, exc)

    def put(self, key: str, result: Union[SchemeResult, PlanResult]) -> None:
        """Store ``result`` under ``key`` (atomic rename, last wins)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        doc = result_to_dict(result)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def __len__(self) -> int:
        n = 0
        try:
            shards: List[str] = sorted(os.listdir(self.root))
        except OSError:
            return 0
        for shard in shards:
            p = os.path.join(self.root, shard)
            if os.path.isdir(p):
                n += sum(1 for f in sorted(os.listdir(p))
                         if f.endswith(".json"))
        return n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ResultCache {self.root!r} salt={self.salt[:8]} "
            f"hits={self.hits} misses={self.misses}>"
        )
