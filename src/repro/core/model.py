"""The DOSAS analytic cost model (paper Sec. III-D, Table II, Eq. 1–7).

Notation (Table II)::

    n        I/O requests in the queue
    k        active I/O requests among them
    d_i      request data size of the i-th request
    D_A      total active-request bytes    (Σ d_i over active)
    D_N      total normal-request bytes
    D        D_A + D_N
    S_{C,op} storage-node capability for op  (bytes/s)
    C_{C,op} compute-node capability for op  (bytes/s)
    f(x)     compute time  = x / S  (storage)  or  x / C  (compute)
    g(x)     transfer time = x / bw
    h(x)     result size of active computation on x bytes
    bw       compute↔storage network bandwidth

Whole-queue estimates (Eq. 1–3)::

    T_A = f(D_A) + g(D_N) + g(h(D_A))          # all active done actively
    IO_size = max(d_i)   over active requests
    T_N = g(D) + f(IO_size)                     # everything as normal I/O

Per-request terms for the 0/1 optimisation (Eq. 4–7)::

    x_i = d_i / S + h(d_i) / bw                 # cost if done actively
    y_i = d_i / bw                              # cost if demoted
    z   = max_i d_i (1 - a_i) / C               # parallel client compute
    t   = Σ [x_i a_i + y_i (1 - a_i)] + z       # objective (Eq. 4)

The objective encodes the paper's empirically calibrated execution
model: active computations serialise on the storage node's kernel
executor (the Σ x_i a_i term), demoted transfers serialise on the NIC
(the Σ y_i term), and demoted computations run in parallel on their
requesting compute nodes (the max-term z).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.kernels.costs import KernelCostModel


@dataclass(frozen=True)
class CostModel:
    """System parameters the scheduler reasons with.

    Attributes
    ----------
    kernel:
        Cost model of the operation (``op``): S_max, h(x).
    storage_capability:
        S_{C,op} — effective storage-node rate for the op, bytes/s.
        The Contention Estimator derives this from the kernel's max
        rate and the probed system state.
    compute_capability:
        C_{C,op} — compute-node rate for the op, bytes/s.
    bandwidth:
        bw — network bandwidth, bytes/s.
    """

    kernel: KernelCostModel
    storage_capability: float
    compute_capability: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.storage_capability <= 0:
            raise ValueError("storage_capability must be positive")
        if self.compute_capability <= 0:
            raise ValueError("compute_capability must be positive")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    # -- Table II primitives ------------------------------------------------
    def f_storage(self, nbytes: float) -> float:
        """f(x) on the storage node: x / S_{C,op}."""
        return nbytes / self.storage_capability

    def f_compute(self, nbytes: float) -> float:
        """f(x) on a compute node: x / C_{C,op}."""
        return nbytes / self.compute_capability

    def g(self, nbytes: float) -> float:
        """g(x): network transfer time x / bw."""
        return nbytes / self.bandwidth

    def h(self, nbytes: float) -> float:
        """h(x): result bytes of active computation on x input bytes."""
        return self.kernel.h(nbytes)

    # -- Eq. 1–3: whole-queue estimates -----------------------------------------
    def t_all_active(self, active_sizes: Sequence[float], normal_bytes: float = 0.0) -> float:
        """T_A (Eq. 1): every active request executed on storage."""
        d_a = float(sum(active_sizes))
        h_total = float(sum(self.h(d) for d in active_sizes))
        return self.f_storage(d_a) + self.g(normal_bytes) + self.g(h_total)

    def t_all_normal(self, active_sizes: Sequence[float], normal_bytes: float = 0.0) -> float:
        """T_N (Eq. 2–3): every request served as normal I/O."""
        if not active_sizes:
            return self.g(normal_bytes)
        io_size = max(active_sizes)  # Eq. 2
        d = float(sum(active_sizes)) + normal_bytes
        return self.g(d) + self.f_compute(io_size)

    # -- Eq. 5–7: per-request terms ----------------------------------------------
    def x_i(self, d_i: float) -> float:
        """Eq. 5: active cost of one request = d_i/S + h(d_i)/bw."""
        return self.f_storage(d_i) + self.g(self.h(d_i))

    def y_i(self, d_i: float) -> float:
        """Eq. 6: demoted transfer cost = d_i/bw."""
        return self.g(d_i)

    def z(self, demoted_sizes: Sequence[float]) -> float:
        """Eq. 7: parallel client compute = max demoted d_i / C."""
        if not demoted_sizes:
            return 0.0
        return max(demoted_sizes) / self.compute_capability

    # -- Eq. 4: the objective -----------------------------------------------------
    def objective(self, sizes: Sequence[float], assignment: Sequence[int]) -> float:
        """t (Eq. 4) for a concrete 0/1 assignment.

        ``assignment[i] == 1`` ⇔ the i-th active request is executed
        on the storage node.
        """
        if len(sizes) != len(assignment):
            raise ValueError("sizes and assignment lengths differ")
        total = 0.0
        demoted: List[float] = []
        for d_i, a_i in zip(sizes, assignment):
            if a_i not in (0, 1):
                raise ValueError(f"assignment entries must be 0/1, got {a_i}")
            if a_i:
                total += self.x_i(d_i)
            else:
                total += self.y_i(d_i)
                demoted.append(d_i)
        return total + self.z(demoted)


@dataclass(frozen=True)
class RequestCost:
    """Pre-computed per-request terms handed to the solvers.

    ``w_i = d_i / C_{C,op_i}`` is the request's *client compute time*
    if demoted — the quantity the z term (Eq. 7) maximises.  Keeping
    it per-request (instead of dividing by one global C) lets a single
    solver instance mix operations with different client rates: the
    joint objective is

        t = Σ [x_i a_i + y_i (1 - a_i)] + max_i w_i (1 - a_i)

    which reduces to the paper's Eq. 4 when all requests share an op.
    """

    rid: int
    d_i: float
    x_i: float
    y_i: float
    w_i: float = 0.0

    def __post_init__(self) -> None:
        if self.d_i < 0:
            raise ValueError("d_i must be non-negative")
        if self.w_i < 0:
            raise ValueError("w_i must be non-negative")


@dataclass(frozen=True)
class SchedulingInstance:
    """One solver input: k active requests with per-request terms.

    Built by the Contention Estimator from the probed I/O queue.
    ``model`` is kept for single-op instances (tests, documentation);
    mixed-operation instances built with :meth:`from_costs` may pass
    ``model=None`` — the solvers only consume the x/y/w vectors.
    """

    model: Optional[CostModel]
    costs: Tuple[RequestCost, ...]

    @staticmethod
    def from_sizes(model: CostModel, sizes: Sequence[float], rids: Optional[Sequence[int]] = None) -> "SchedulingInstance":
        """Build a single-operation instance from raw request sizes."""
        if rids is None:
            rids = list(range(len(sizes)))
        if len(rids) != len(sizes):
            raise ValueError("rids and sizes lengths differ")
        costs = tuple(
            RequestCost(
                rid=rid,
                d_i=float(d),
                x_i=model.x_i(d),
                y_i=model.y_i(d),
                w_i=float(d) / model.compute_capability,
            )
            for rid, d in zip(rids, sizes)
        )
        return SchedulingInstance(model=model, costs=costs)

    @staticmethod
    def from_costs(costs: Sequence[RequestCost]) -> "SchedulingInstance":
        """Build a (possibly mixed-operation) instance directly."""
        return SchedulingInstance(model=None, costs=tuple(costs))

    @property
    def k(self) -> int:
        """Number of active requests."""
        return len(self.costs)

    @property
    def sizes(self) -> npt.NDArray[np.float64]:
        """d vector."""
        return np.array([c.d_i for c in self.costs], dtype=np.float64)

    @property
    def x(self) -> npt.NDArray[np.float64]:
        """x vector (Eq. 5)."""
        return np.array([c.x_i for c in self.costs], dtype=np.float64)

    @property
    def y(self) -> npt.NDArray[np.float64]:
        """y vector (Eq. 6)."""
        return np.array([c.y_i for c in self.costs], dtype=np.float64)

    @property
    def w(self) -> npt.NDArray[np.float64]:
        """w vector: per-request client compute time (Eq. 7's operand)."""
        return np.array([c.w_i for c in self.costs], dtype=np.float64)

    def value(self, assignment: Sequence[int]) -> float:
        """Joint objective of ``assignment``.

        t = Σ [x_i a_i + y_i (1 − a_i)] + max_i w_i (1 − a_i) —
        identical to the paper's Eq. 4 for single-op instances (a
        property the test suite checks against ``CostModel.objective``).
        """
        if len(assignment) != self.k:
            raise ValueError("assignment length mismatch")
        total = 0.0
        z = 0.0
        for cost, a_i in zip(self.costs, assignment):
            if a_i not in (0, 1):
                raise ValueError(f"assignment entries must be 0/1, got {a_i}")
            if a_i:
                total += cost.x_i
            else:
                total += cost.y_i
                z = max(z, cost.w_i)
        return total + z
