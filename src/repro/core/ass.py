"""The Active Storage Server (ASS) — paper Sec. III-A.

"The ASS is placed on storage nodes, and is responsible for processing
different I/O requests."  It is the composition of the Active I/O
Runtime, the Contention Estimator and a storage-side PK deployment,
attached to a PVFS I/O server as its active handler.  The shared-
memory channel between R and the kernels is also owned here.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.engine import Environment
from repro.cluster.network import Link
from repro.cluster.node import StorageNode
from repro.kernels.registry import KernelRegistry, default_registry
from repro.shm.channel import Channel
from repro.core.estimator import ContentionEstimator
from repro.core.runtime import ActiveIORuntime, RuntimeConfig
from repro.pvfs.requests import IORequest
from repro.pvfs.server import IOServer


class ActiveStorageServer:
    """One storage node's active-storage stack."""

    def __init__(
        self,
        env: Environment,
        server: IOServer,
        estimator: ContentionEstimator,
        registry: Optional[KernelRegistry] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.env = env
        self.server = server
        self.node: StorageNode = server.node
        self.link: Link = server.link
        #: Storage-side PK deployment (paper: kernels live on both
        #: sides).  Kernel objects are stateless (execution state is
        #: externalised in KernelState), so deployments may share
        #: instances — which also lets experiments override a kernel's
        #: rate once and have every side observe it.
        self.registry = registry or default_registry
        #: Runtime ↔ kernel shared-memory channel (Sec. III-E).
        self.channel = Channel(env)
        self.estimator = estimator
        self.runtime = ActiveIORuntime(
            env=env,
            server=server,
            node=self.node,
            link=self.link,
            registry=self.registry,
            estimator=estimator,
            config=config,
        )
        server.attach_active_handler(self)

    # -- ActiveHandler protocol --------------------------------------------------
    def submit(self, request: IORequest) -> None:
        """Route an active request into the runtime."""
        self.runtime.submit(request)

    # -- failure hooks (see repro.faults) ----------------------------------------
    def on_crash(self, cause: str = "node-crash") -> None:
        """Forwarded by the I/O server when the node crashes."""
        self.runtime.on_crash(cause)

    def on_degrade(self, cause: str = "node-degrade") -> None:
        """Checkpoint/migrate running kernels after a CPU derate."""
        self.runtime.on_degrade(cause)

    def abort(self, rid: int) -> bool:
        """Forwarded by the I/O server on client cancellation."""
        return self.runtime.abort(rid)

    def shed(self, rid: int) -> bool:
        """Forwarded by the I/O server's admission control (overload)."""
        return self.runtime.shed(rid)

    @property
    def stats(self) -> Dict[str, int]:
        """Runtime counters (served/demoted/interrupted)."""
        return dict(self.runtime.stats)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ActiveStorageServer {self.node.name}>"
