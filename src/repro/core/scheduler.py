"""Solvers for the DOSAS 0/1 offload optimisation (paper Eq. 8–11).

The problem (in the generalised per-request-weight form, where
``w_i = d_i / C_{C,op_i}`` — identical to the paper's Eq. 4 when all
requests share one operation)::

    minimise   Σ_i [x_i a_i + y_i (1 - a_i)]  +  max_i w_i (1 - a_i)
    over       a ∈ {0, 1}^k

Four solvers:

``ExhaustiveScheduler``
    The paper's own method (Eq. 9–11): build the k×2^k matrix A of all
    assignments and evaluate ``X·A + Y·B + max(Z∘B)/C`` column-wise.
    Vectorised with numpy exactly as the paper writes it.  Exponential —
    fine for the paper's k ≤ 64-situation grids but capped at k ≤ 20.
``BranchAndBoundScheduler``
    Exact solver standing in for the paper's "general constraint
    programming solver" remark, with admissible lower bounds.  Handles
    k in the hundreds.
``ThresholdScheduler``
    Exact O(k²) solver exploiting the objective's structure: condition
    on M = max demoted weight.  Given M, every request with w_i > M
    must be active and every other request independently picks
    min(x_i, y_i); scan all k+1 candidate M values.  The default in
    the DOSAS estimator.
``GreedyScheduler``
    Naive baseline ignoring the z term (a_i = [x_i < y_i]); used by the
    ablation bench to show why z matters.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.core.model import SchedulingInstance


@dataclass(frozen=True)
class SchedulerDecision:
    """Solver output.

    Attributes
    ----------
    assignment:
        a vector — ``assignment[i] == 1`` means execute the i-th
        request actively on the storage node.
    value:
        Objective value t of the assignment (Eq. 4).
    evaluations:
        How many assignments the solver examined (work metric for the
        ablation bench).
    """

    assignment: Tuple[int, ...]
    value: float
    evaluations: int = 0

    @property
    def n_active(self) -> int:
        """Requests kept active."""
        return int(sum(self.assignment))

    @property
    def n_demoted(self) -> int:
        """Requests demoted to normal I/O."""
        return len(self.assignment) - self.n_active


class Scheduler(abc.ABC):
    """Common solver interface."""

    #: Human-readable solver name for reports.
    name: str = "scheduler"

    @abc.abstractmethod
    def solve(self, instance: SchedulingInstance) -> SchedulerDecision:
        """Return the (approximately) optimal assignment for ``instance``."""

    def _empty(self) -> SchedulerDecision:
        return SchedulerDecision(assignment=(), value=0.0, evaluations=0)


class ExhaustiveScheduler(Scheduler):
    """The paper's matrix enumeration (Eq. 9–11), numpy-vectorised.

    Builds B (the complement matrix, b_ij = 1 - a_ij) and computes the
    1×m value vector ``X·A + Y·B + max(Z∘B)/C`` exactly as Eq. 10,
    then Eq. 11's argmin.
    """

    name = "exhaustive"

    def __init__(self, max_k: int = 20) -> None:
        if max_k < 1:
            raise ValueError("max_k must be >= 1")
        self.max_k = int(max_k)

    def solve(self, instance: SchedulingInstance) -> SchedulerDecision:
        k = instance.k
        if k == 0:
            return self._empty()
        if k > self.max_k:
            raise ValueError(
                f"exhaustive enumeration over 2^{k} assignments refused "
                f"(max_k={self.max_k}); use BranchAndBound or Threshold"
            )
        m = 1 << k
        # A[i, j] = bit i of column index j — every unique combination,
        # satisfying the paper's A_j ≠ A_p requirement by construction.
        columns = np.arange(m, dtype=np.uint64)
        A = ((columns[None, :] >> np.arange(k, dtype=np.uint64)[:, None]) & 1).astype(
            np.float64
        )
        B = 1.0 - A

        X = instance.x
        Y = instance.y
        W = instance.w

        serial = X @ A + Y @ B                       # Σ x_i a_ij + Σ y_i b_ij
        z_term = (W[:, None] * B).max(axis=0)        # max_i w_i b_ij
        values = serial + z_term                     # Eq. 10
        j = int(np.argmin(values))                   # Eq. 11
        assignment = tuple(int((j >> i) & 1) for i in range(k))
        return SchedulerDecision(
            assignment=assignment, value=float(values[j]), evaluations=m
        )


class ThresholdScheduler(Scheduler):
    """Exact polynomial solver conditioning on the max demoted weight.

    For every candidate M ∈ {0} ∪ {w_i}: any request with w_i > M must
    stay active (else it would exceed the assumed max); every request
    with w_i ≤ M independently picks min(x_i, y_i); the z term is M,
    charged only if some request of weight exactly M is demoted —
    which we enforce by demoting the min-regret eligible witness when
    none volunteers.
    """

    name = "threshold"

    def solve(self, instance: SchedulingInstance) -> SchedulerDecision:
        k = instance.k
        if k == 0:
            return self._empty()
        w = instance.w
        x = instance.x
        y = instance.y

        best_value = float("inf")
        best_assignment: Optional[npt.NDArray[np.int64]] = None
        evaluations = 0

        candidates = {0.0}
        candidates.update(float(v) for v in w)
        for m_val in sorted(candidates):
            evaluations += 1
            a = np.ones(k, dtype=np.int64)
            if m_val == 0.0:
                # Nothing costly demoted (zero-weight requests free).
                free = w == 0.0
                a[free] = (x[free] < y[free]).astype(np.int64)
            else:
                must_active = w > m_val
                eligible = ~must_active
                choose_demote = y < x
                a[eligible & choose_demote] = 0
                # Witness: some demoted request must have weight ==
                # m_val, otherwise this M is an overestimate and a
                # smaller candidate covers the true optimum — forcing
                # the min-regret witness keeps every candidate's value
                # a consistent upper bound.
                witnesses = eligible & (w == m_val)
                if not witnesses.any():
                    continue
                if not (witnesses & (a == 0)).any():
                    idx = np.flatnonzero(witnesses)
                    regret = x[idx] - y[idx]
                    pick = idx[int(np.argmax(regret))]
                    a[pick] = 0
            # Re-evaluate exactly through the model (guards against any
            # bookkeeping slip and keeps the reported value canonical).
            exact = instance.value([int(v) for v in a])
            if exact < best_value - 1e-15:
                best_value = exact
                best_assignment = a.copy()

        assert best_assignment is not None
        return SchedulerDecision(
            assignment=tuple(int(v) for v in best_assignment),
            value=best_value,
            evaluations=evaluations,
        )


class BranchAndBoundScheduler(Scheduler):
    """Exact depth-first branch-and-bound.

    Requests are considered in descending size order so the z term's
    max resolves early.  Lower bound at a node: committed cost
    + Σ min(x_j, y_j) over undecided + the z already incurred.
    """

    name = "branch_and_bound"

    def solve(self, instance: SchedulingInstance) -> SchedulerDecision:
        k = instance.k
        if k == 0:
            return self._empty()
        order = np.argsort(-instance.w, kind="stable")
        w = instance.w[order]
        x = instance.x[order]
        y = instance.y[order]
        min_xy_suffix = np.concatenate(
            [np.cumsum(np.minimum(x, y)[::-1])[::-1], [0.0]]
        )

        best_value = float("inf")
        best_assignment: Optional[List[int]] = None
        evaluations = 0

        # Iterative DFS stack: (index, partial cost, z so far, partial assignment).
        stack: List[Tuple[int, float, float, List[int]]] = [(0, 0.0, 0.0, [])]
        while stack:
            i, cost, z_cur, partial = stack.pop()
            evaluations += 1
            bound = cost + float(min_xy_suffix[i]) + z_cur
            if bound >= best_value:
                continue
            if i == k:
                total = cost + z_cur
                if total < best_value:
                    best_value = total
                    best_assignment = partial
                continue
            # Branch a_i = 1 (active) — z unchanged.
            stack.append((i + 1, cost + float(x[i]), z_cur, partial + [1]))
            # Branch a_i = 0 (demote) — z becomes max(z, w_i); since
            # weights descend, only the first demotion changes z.
            stack.append(
                (i + 1, cost + float(y[i]), max(z_cur, float(w[i])), partial + [0])
            )

        assert best_assignment is not None
        # Undo the size ordering.
        assignment = [0] * k
        for pos, original in enumerate(order):
            assignment[int(original)] = best_assignment[pos]
        return SchedulerDecision(
            assignment=tuple(assignment), value=best_value, evaluations=evaluations
        )


class GreedyScheduler(Scheduler):
    """Per-request min(x_i, y_i), ignoring the z coupling (baseline)."""

    name = "greedy"

    def solve(self, instance: SchedulingInstance) -> SchedulerDecision:
        k = instance.k
        if k == 0:
            return self._empty()
        assignment = tuple(
            1 if c.x_i <= c.y_i else 0 for c in instance.costs
        )
        return SchedulerDecision(
            assignment=assignment,
            value=instance.value(assignment),
            evaluations=k,
        )


_SCHEDULERS: Dict[str, Callable[..., Scheduler]] = {
    "exhaustive": ExhaustiveScheduler,
    "threshold": ThresholdScheduler,
    "branch_and_bound": BranchAndBoundScheduler,
    "greedy": GreedyScheduler,
}


def make_scheduler(name: str, **kwargs: Any) -> Scheduler:
    """Scheduler factory by name."""
    try:
        cls = _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(_SCHEDULERS)}"
        ) from None
    return cls(**kwargs)
