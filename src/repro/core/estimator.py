"""Contention Estimators.

Paper Sec. III-D: "The Contention Estimator is an implementation of
the algorithm.  It monitors current system status, including I/O
queue, memory usage and CPU usage, and generates the scheduling policy
for all active I/O requests in current I/O queue by using the probed
system information and the scheduling algorithm.  It then sends its
decision to R component for execution."

``DOSASEstimator`` is that component.  ``AlwaysOffloadEstimator`` and
``NeverOffloadEstimator`` express the AS and TS baselines through the
same interface so every scheme runs on identical machinery (only the
policy generator differs).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.cluster.probe import NodeProber, SystemProbe
from repro.core.model import CostModel, RequestCost, SchedulingInstance
from repro.core.policy import Decision, SchedulingPolicy
from repro.core.scheduler import Scheduler, ThresholdScheduler
from repro.kernels.costs import KernelCostModel
from repro.pvfs.requests import IORequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import ActiveIORuntime


class ContentionEstimator(abc.ABC):
    """Interface: produce scheduling policies for a runtime."""

    @abc.abstractmethod
    def evaluate(
        self,
        requests: List[IORequest],
        running: List[IORequest],
    ) -> SchedulingPolicy:
        """Produce a policy for queued (+ running) active requests."""

    def start(self, env: Environment, runtime: "ActiveIORuntime") -> None:
        """Hook for estimators that run a periodic probe process."""


class AlwaysOffloadEstimator(ContentionEstimator):
    """The AS baseline: every active request executes on storage."""

    def evaluate(
        self,
        requests: List[IORequest],
        running: List[IORequest],
    ) -> SchedulingPolicy:
        policy = SchedulingPolicy(generated_at=0.0, default=Decision.ACTIVE)
        for req in requests:
            policy.decisions[req.rid] = Decision.ACTIVE
        return policy


class NeverOffloadEstimator(ContentionEstimator):
    """Degenerate estimator demoting everything (TS expressed as policy)."""

    def evaluate(
        self,
        requests: List[IORequest],
        running: List[IORequest],
    ) -> SchedulingPolicy:
        policy = SchedulingPolicy(generated_at=0.0, default=Decision.NORMAL)
        for req in requests:
            policy.decisions[req.rid] = Decision.NORMAL
        return policy


class DOSASEstimator(ContentionEstimator):
    """The paper's dynamic estimator.

    Parameters
    ----------
    prober:
        Probe source for the storage node (CPU, memory, I/O queue).
    kernel_models:
        op name → :class:`KernelCostModel`.
    compute_capability:
        op name → C_{C,op} (bytes/s on a compute node).  If an op is
        missing, the kernel's own rate scaled by
        ``client_speed_factor`` is used.
    bandwidth:
        bw in bytes/s.
    scheduler:
        The 0/1 solver (default: exact threshold solver).
    probe_period:
        Seconds between periodic probes; each probe regenerates the
        policy.  ``None`` disables the periodic process — policies are
        then generated on demand only.
    degrade_by_cpu:
        When True, S_{C,op} is scaled by the fraction of cores *not*
        already busy with other work — the paper's "estimated by the
        CE according to its max value ... and the current system
        environment".  Off by default because in the reproduced
        experiments kernels are the only CPU consumers.
    client_speed_factor:
        Compute-node core speed relative to storage ("the storage node
        and the compute node have the same processing capability" ⇒ 1).
    stale_probe_timeout:
        Seconds of probe staleness the CE tolerates before treating
        the node as unreachable.  When probes are being lost (fault
        injection) the prober replays old snapshots marked ``stale``;
        once the newest real data is older than this, the CE stops
        trusting the node and demotes everything to client-side
        processing — lost telemetry reads as degradation, never as
        health.  ``None`` (default) disables the check.
    account_normal_traffic:
        Extension (off by default — the paper's Eq. 4 ignores D_N):
        when the probe shows queued normal-I/O bytes, demoted requests
        will wait behind them on the NIC.  That wait is a constant
        g(D_N) charge on *any* solution with ≥ 1 demotion, so the
        exact adjustment compares the solver's optimum (+ charge) with
        the all-active assignment and keeps the cheaper.  Fixes the
        model's heavy-background misjudgment (see the background
        ablation bench).
    """

    def __init__(
        self,
        prober: NodeProber,
        kernel_models: Dict[str, KernelCostModel],
        bandwidth: float,
        compute_capability: Optional[Dict[str, float]] = None,
        scheduler: Optional[Scheduler] = None,
        probe_period: Optional[float] = 0.1,
        degrade_by_cpu: bool = False,
        client_speed_factor: float = 1.0,
        account_normal_traffic: bool = False,
        stale_probe_timeout: Optional[float] = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.prober = prober
        self.kernel_models = dict(kernel_models)
        self.bandwidth = float(bandwidth)
        self.compute_capability = dict(compute_capability or {})
        self.scheduler = scheduler or ThresholdScheduler()
        self.probe_period = probe_period
        self.degrade_by_cpu = degrade_by_cpu
        self.client_speed_factor = float(client_speed_factor)
        self.account_normal_traffic = account_normal_traffic
        if stale_probe_timeout is not None and stale_probe_timeout <= 0:
            raise ValueError("stale_probe_timeout must be positive")
        self.stale_probe_timeout = stale_probe_timeout
        #: Policies generated, for tracing/accuracy evaluation.
        self.policy_log: List[SchedulingPolicy] = []

    # -- capability estimation -------------------------------------------------
    def storage_capability(self, op: str, probe: SystemProbe) -> float:
        """S_{C,op}: max rate, optionally degraded by probed CPU load.

        Always scaled by the probed core speed fraction: a straggler
        node honestly advertises less processing capability, which is
        what steers DOSAS away from offloading to degraded nodes.
        """
        model = self._model(op)
        rate = model.rate * probe.cpu_derate
        if self.degrade_by_cpu:
            # Cores busy with *other* work reduce the share available
            # to a newly scheduled kernel; never below 10 % of max so
            # the estimate stays finite under full load.
            rate *= max(0.1, 1.0 - probe.cpu_utilization)
        return rate

    def compute_capability_for(self, op: str) -> float:
        """C_{C,op} for the requesting compute node."""
        if op in self.compute_capability:
            return self.compute_capability[op]
        return self._model(op).rate * self.client_speed_factor

    def _model(self, op: str) -> KernelCostModel:
        try:
            return self.kernel_models[op]
        except KeyError:
            raise KeyError(
                f"no cost model for operation {op!r}; known: "
                f"{sorted(self.kernel_models)}"
            ) from None

    # -- policy generation ---------------------------------------------------------
    def evaluate(
        self,
        requests: List[IORequest],
        running: List[IORequest],
    ) -> SchedulingPolicy:
        """Solve Eq. 8 over the queued+running active requests.

        Running kernels participate with their *remaining* bytes so
        the solver can decide whether finishing them on storage still
        pays off; a running request demoted by the solution triggers
        ``interrupt_running``.
        """
        probe = self.prober.probe()
        everything = list(running) + list(requests)
        if self._node_unreachable(probe):
            # Telemetry loss reads as degradation: demote everything so
            # clients stop depending on a node whose state is unknown.
            policy = SchedulingPolicy(
                generated_at=self.prober.node.env.now,
                default=Decision.NORMAL,
                probe=probe,
            )
            for req in everything:
                policy.decisions[req.rid] = Decision.NORMAL
            policy.interrupt_running = bool(running)
            self.policy_log.append(policy)
            return policy
        if not everything:
            policy = SchedulingPolicy(
                generated_at=probe.time, default=Decision.ACTIVE, probe=probe
            )
            self.policy_log.append(policy)
            return policy

        # Mixed-operation queues are solved *jointly*: all offloaded
        # kernels share the storage executor (Σ x_i) and the NIC
        # (Σ y_i), and the parallel-client term is the max of the
        # per-request client compute times w_i = d_i / C_{C,op_i}.
        # For a single op this is exactly the paper's Eq. 4; for
        # mixes it is strictly tighter than per-op subproblems (which
        # would double-charge the max term) — an extension documented
        # in DESIGN.md.
        policy = SchedulingPolicy(
            generated_at=probe.time, default=Decision.ACTIVE, probe=probe
        )
        costs: List[RequestCost] = []
        for req in everything:
            op = req.operation or ""
            model = CostModel(
                kernel=self._model(op),
                storage_capability=self.storage_capability(op, probe),
                compute_capability=self.compute_capability_for(op),
                bandwidth=self.bandwidth,
            )
            d = self._remaining_bytes(req)
            costs.append(
                RequestCost(
                    rid=req.rid,
                    d_i=d,
                    x_i=model.x_i(d),
                    y_i=model.y_i(d),
                    w_i=d / model.compute_capability,
                )
            )
        instance = SchedulingInstance.from_costs(costs)
        decision = self.scheduler.solve(instance)
        if (
            self.account_normal_traffic
            and probe.normal_bytes > 0
            and decision.n_demoted > 0
        ):
            # g(D_N) is a constant charge on every ≥1-demotion
            # solution; the only alternative class is all-active.
            from repro.core.scheduler import SchedulerDecision

            all_active = tuple([1] * instance.k)
            v_active = instance.value(list(all_active))
            charged = decision.value + probe.normal_bytes / self.bandwidth
            if v_active < charged:
                decision = SchedulerDecision(
                    assignment=all_active,
                    value=v_active,
                    evaluations=decision.evaluations + 1,
                )
        for req, a_i in zip(everything, decision.assignment):
            policy.decisions[req.rid] = (
                Decision.ACTIVE if a_i else Decision.NORMAL
            )

        policy.objective_value = decision.value
        running_demoted = any(
            policy.decisions.get(r.rid) is Decision.NORMAL for r in running
        )
        policy.interrupt_running = running_demoted
        # New arrivals between probes inherit the majority verdict —
        # under overload (everything demoted) they are demoted on
        # arrival, matching the paper's new-arrival rule.
        policy.default = (
            Decision.NORMAL if policy.n_demoted > policy.n_active else Decision.ACTIVE
        )
        self.policy_log.append(policy)
        return policy

    def _node_unreachable(self, probe: SystemProbe) -> bool:
        """True when probe loss has outlasted the staleness budget."""
        if self.stale_probe_timeout is None or not probe.stale:
            return False
        age = self.prober.node.env.now - probe.time
        return age > self.stale_probe_timeout

    @staticmethod
    def _remaining_bytes(req: IORequest) -> float:
        done = req.resume_from.bytes_done if req.resume_from is not None else 0
        return float(max(0, req.size - done))

    # -- periodic probing ---------------------------------------------------------
    def start(self, env: Environment, runtime: "ActiveIORuntime") -> None:
        """Launch the periodic probe/refresh process."""
        if self.probe_period is not None:
            env.process(self._periodic(env, runtime, self.probe_period))

    def _periodic(
        self,
        env: Environment,
        runtime: "ActiveIORuntime",
        period: float,
    ) -> Generator[Event, Any, None]:
        while True:
            yield env.timeout(period)
            runtime.refresh_policy()
