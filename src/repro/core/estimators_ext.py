"""Extended Contention Estimators (paper future-work directions).

The baseline :class:`~repro.core.estimator.DOSASEstimator` decides
from the instantaneous probe.  Two refinements address its documented
weaknesses:

``SmoothedDOSASEstimator``
    Exponentially smooths the probed state across probes, so one noisy
    sample (a transient queue spike, one jittery transfer) cannot flip
    the policy.  Targets the paper's misjudgment cause (1): parameter
    variation.

``HysteresisDOSASEstimator``
    Requires the solver's verdict for a request to persist across
    ``confirmations`` consecutive evaluations before a *reversal* is
    enforced.  Prevents policy flapping — repeated interrupt/migrate
    cycles that each pay checkpoint and re-read costs — under arrival
    patterns that hover near the crossover.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cluster.probe import SystemProbe
from repro.core.estimator import DOSASEstimator
from repro.core.policy import Decision, SchedulingPolicy
from repro.pvfs.requests import IORequest


class SmoothedDOSASEstimator(DOSASEstimator):
    """EWMA smoothing of probe state before solving.

    Parameters
    ----------
    alpha:
        Smoothing weight of the newest sample in (0, 1]; 1 reduces to
        the base estimator.
    """

    def __init__(self, *args: Any, alpha: float = 0.3, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._smoothed_cpu: Optional[float] = None
        self._smoothed_mem: Optional[float] = None

    def _smooth(self, previous: Optional[float], sample: float) -> float:
        if previous is None:
            return sample
        return self.alpha * sample + (1 - self.alpha) * previous

    def storage_capability(self, op: str, probe: SystemProbe) -> float:
        cpu = self._smooth(self._smoothed_cpu, probe.cpu_utilization)
        self._smoothed_cpu = cpu
        self._smoothed_mem = self._smooth(
            self._smoothed_mem, probe.memory_utilization
        )
        model = self._model(op)
        rate = model.rate
        if self.degrade_by_cpu:
            rate *= max(0.1, 1.0 - cpu)
        return rate


class HysteresisDOSASEstimator(DOSASEstimator):
    """Verdict reversals must be confirmed before they are enforced.

    A request's very first verdict applies immediately (nothing to
    flap against); subsequent *changes* only take effect after the
    solver has produced the new verdict ``confirmations`` times in a
    row.
    """

    def __init__(self, *args: Any, confirmations: int = 2, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if confirmations < 1:
            raise ValueError("confirmations must be >= 1")
        self.confirmations = int(confirmations)
        #: rid → (currently enforced verdict, candidate verdict, streak).
        self._state: Dict[
            int, Tuple[Optional[Decision], Optional[Decision], int]
        ] = {}

    def evaluate(
        self,
        requests: List[IORequest],
        running: List[IORequest],
    ) -> SchedulingPolicy:
        raw = super().evaluate(requests, running)
        final = SchedulingPolicy(
            generated_at=raw.generated_at,
            default=raw.default,
            probe=raw.probe,
            objective_value=raw.objective_value,
        )
        seen: Set[int] = set()
        for rid, proposed in raw.decisions.items():
            seen.add(rid)
            enforced, candidate, streak = self._state.get(
                rid, (None, None, 0)
            )
            if enforced is None:
                enforced = proposed
                candidate, streak = None, 0
            elif proposed is enforced:
                candidate, streak = None, 0
            else:
                if proposed is candidate:
                    streak += 1
                else:
                    candidate, streak = proposed, 1
                if streak >= self.confirmations:
                    enforced = proposed
                    candidate, streak = None, 0
            self._state[rid] = (enforced, candidate, streak)
            final.decisions[rid] = enforced
        # Drop bookkeeping for requests that left the system.
        for rid in [r for r in self._state if r not in seen]:
            del self._state[rid]

        running_demoted = any(
            final.decisions.get(r.rid) is Decision.NORMAL for r in running
        )
        final.interrupt_running = running_demoted
        self.policy_log[-1] = final
        return final
