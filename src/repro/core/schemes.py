"""End-to-end TS / AS / DOSAS workload runs (paper Sec. IV-A.3).

"We tested three schemes:

- Traditional Storage (TS): the servers are responsible for normal I/O
  operations.  The analysis kernels are executed at the clients.
- Normal Active Storage (AS): the kernels are always executed at
  server side.
- Dynamic Operation Scheduling Active Storage (DOSAS): the I/O
  operations are dynamically scheduled according to the system
  situation of storage nodes."

``run_scheme`` builds the whole machine (cluster, PVFS, ASS/ASC),
executes the workload and returns a :class:`SchemeResult` with the
total execution time, per-request latencies, achieved bandwidth and
the decision trace — the raw material for every evaluation figure.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.engine import Environment
from repro.sim.events import AllOf, Event
from repro.cluster.config import ClusterConfig, MB, NodeSpec, discfarm_config
from repro.cluster.network import SerialLink
from repro.cluster.probe import NodeProber
from repro.cluster.topology import ClusterTopology
from repro.kernels.costs import KernelCostModel
from repro.kernels.registry import KernelRegistry, default_registry
from repro.pvfs.client import PVFSClient
from repro.pvfs.filehandle import FileHandle
from repro.pvfs.metadata import MetadataServer, PVFSError
from repro.pvfs.server import IOServer
from repro.qos import (
    AdmissionController,
    BreakerBoard,
    QoSConfig,
    RetryBudget,
    TenantSpec,
    TokenBucket,
    interleave,
)
from repro.core.asc import ActiveStorageClient, RetryPolicy
from repro.straggler import LatencyBoard, StragglerConfig, StragglerDispatcher

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule
    from repro.obs.tracer import Tracer
from repro.core.ass import ActiveStorageServer
from repro.core.estimator import (
    AlwaysOffloadEstimator,
    ContentionEstimator,
    DOSASEstimator,
)
from repro.core.runtime import RuntimeConfig
from repro.core.scheduler import make_scheduler


class Scheme(enum.Enum):
    """The three evaluated analysis schemes."""

    TS = "ts"
    AS = "as"
    DOSAS = "dosas"


#: Seed used when a spec leaves ``seed=None`` (the paper's submission
#: date).  An explicit ``seed=0`` is honoured as-is — historically it
#: was silently aliased to this default by an ``or`` expression.
DEFAULT_SEED = 20120924


def resolve_seed(seed: Optional[int]) -> int:
    """The spec's seed with the ``None`` sentinel resolved, exactly once."""
    return DEFAULT_SEED if seed is None else seed


@dataclass(frozen=True)
class WorkloadSpec:
    """One experiment point.

    Mirrors the paper's sweep dimensions: requests per storage node
    (1–64), per-request data size (128 MB–1 GB), the kernel, and the
    machine knobs the ablations vary.
    """

    kernel: str = "gaussian2d"
    n_requests: int = 8
    request_bytes: int = 128 * MB
    n_storage: int = 1
    arrival_spacing: float = 0.0
    jitter: bool = False
    #: ``None`` means "use :data:`DEFAULT_SEED`".  ``seed=0`` is a real
    #: seed, distinct from the default.
    seed: Optional[int] = None
    execute_kernels: bool = False
    scheduler_name: str = "threshold"
    probe_period: Optional[float] = 0.25
    kernel_slots: int = 1
    storage_cores: int = 2
    compute_cores: int = 8
    image_width: int = 1024
    degrade_by_cpu: bool = False
    allow_migration: bool = True
    #: Real-system effects the scheduling algorithm does not model
    #: (paper Sec. IV-B.2's two misjudgment causes).  Defaults are 0
    #: so analytic expectations hold exactly; the Table IV driver and
    #: ablations turn them on.
    kernel_overhead: float = 0.0
    network_latency: float = 0.0
    #: Background normal-I/O traffic per storage node (Figure 1 shows
    #: normal and active requests mixing in one queue): this many
    #: plain readers of ``background_bytes`` each run alongside the
    #: active workload, consuming NIC bandwidth (the model's D_N).
    background_readers: int = 0
    background_bytes: int = 128 * MB
    #: Let the DOSAS estimator charge g(D_N) for demotion decisions
    #: (extension; the paper's Eq. 4 ignores queued normal traffic).
    account_normal_traffic: bool = False
    #: NIC sharing discipline: "serial" (the paper's g(x)=x/bw FIFO
    #: model) or "fair" (fluid processor sharing) — an ablation.
    link_sharing: str = "serial"
    #: DOSAS estimator variant: "base", "smoothed", or "hysteresis"
    #: (the extended estimators of ``repro.core.estimators_ext``).
    estimator_variant: str = "base"
    #: Straggler-aware client dispatch (see repro.straggler): when on,
    #: clients rank replica candidates by observed latency and hedge
    #: slow reads.  Takes effect only with a retry policy (routing
    #: lives in the per-piece recovery path).
    straggler_scheduler: bool = False
    #: Servers able to serve each byte (1 = the classic single home).
    n_replicas: int = 1
    #: Straggler-policy knobs (flat so the result cache can round-trip
    #: the spec through ``asdict``/``WorkloadSpec(**...)``).
    hedge_delay_floor: float = 0.5
    hedge_quantile: float = 95.0
    #: Multi-tenant mix (see ``repro.qos.tenancy``): when non-empty,
    #: each tenant issues ``requests`` active reads per storage node
    #: (replacing the flat ``n_requests``) and carries its name on
    #: every request so servers can police per-tenant guarantees.
    #: Dicts are accepted (the cache round-trips the spec through
    #: ``asdict``/``WorkloadSpec(**...)``) and normalized to
    #: :class:`TenantSpec`.
    tenants: Tuple[TenantSpec, ...] = ()
    #: Explicit per-request arrival offsets in simulated seconds, one
    #: per request across the whole machine (``total_requests`` long).
    #: Empty keeps the classic ``arrival_spacing * i`` linear stagger;
    #: non-empty lets scenario compilers shape arbitrary arrival
    #: processes (bursty NWP phases, diurnal curves — see
    #: ``repro.scenario``).  Mutually exclusive with
    #: ``arrival_spacing``.  Lists are accepted (cache round-trip) and
    #: normalized to a tuple of floats.
    arrival_times: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.tenants:
            normalized = tuple(
                t if isinstance(t, TenantSpec) else TenantSpec(**t)
                for t in self.tenants
            )
            object.__setattr__(self, "tenants", normalized)
            names = [t.name for t in normalized]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate tenant names in {names}")
            if sum(t.requests for t in normalized) <= 0:
                raise ValueError("tenant mix has no demand (all requests == 0)")
        if self.arrival_times:
            offsets = tuple(float(t) for t in self.arrival_times)
            object.__setattr__(self, "arrival_times", offsets)
            if self.arrival_spacing:
                raise ValueError(
                    "arrival_times and arrival_spacing are mutually "
                    "exclusive — pick one arrival discipline"
                )
            if len(offsets) != self.total_requests:
                raise ValueError(
                    f"arrival_times has {len(offsets)} offsets for "
                    f"{self.total_requests} requests"
                )
            for i, t in enumerate(offsets):
                if not t >= 0 or t != t or t == float("inf"):
                    raise ValueError(
                        f"arrival_times[{i}] must be finite and "
                        f"non-negative, got {t}"
                    )
        if self.n_requests <= 0:
            raise ValueError("n_requests must be positive")
        if self.request_bytes <= 0:
            raise ValueError("request_bytes must be positive")
        if self.n_storage <= 0:
            raise ValueError("n_storage must be positive")
        if self.arrival_spacing < 0:
            raise ValueError("arrival_spacing must be non-negative")
        if self.background_readers < 0:
            raise ValueError("background_readers must be non-negative")
        if self.background_bytes <= 0:
            raise ValueError("background_bytes must be positive")
        if self.link_sharing not in ("serial", "fair"):
            raise ValueError(f"unknown link_sharing {self.link_sharing!r}")
        if self.estimator_variant not in ("base", "smoothed", "hysteresis"):
            raise ValueError(
                f"unknown estimator_variant {self.estimator_variant!r}"
            )
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if self.n_replicas > self.n_storage:
            raise ValueError(
                f"n_replicas {self.n_replicas} exceeds n_storage {self.n_storage}"
            )
        if self.hedge_delay_floor <= 0:
            raise ValueError("hedge_delay_floor must be positive")
        if not 0 < self.hedge_quantile <= 100:
            raise ValueError("hedge_quantile must lie in (0, 100]")

    @property
    def total_requests(self) -> int:
        """Requests across the whole machine."""
        if self.tenants:
            return sum(t.requests for t in self.tenants) * self.n_storage
        return self.n_requests * self.n_storage

    @property
    def total_bytes(self) -> int:
        """Aggregate requested data."""
        return self.total_requests * self.request_bytes

    def arrival_offset(self, i: int) -> float:
        """Request ``i``'s arrival offset under either discipline."""
        if self.arrival_times:
            return self.arrival_times[i]
        return self.arrival_spacing * i


@dataclass
class SchemeResult:
    """Outcome of one scheme run."""

    scheme: Scheme
    spec: WorkloadSpec
    makespan: float
    per_request_times: List[float]
    bandwidth: float
    served_active: int
    demoted: int
    interrupted: int
    results: List[Any] = field(default_factory=list)
    policy_values: List[float] = field(default_factory=list)
    #: Fault-run extras (all zero/empty for fault-free runs).
    retries: int = 0
    retry_timeouts: int = 0
    failed_requests: int = 0
    wasted_bytes: int = 0
    fault_log: List[Dict[str, Any]] = field(default_factory=list)
    retry_events: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-server metric snapshots (``MetricsRegistry.summary()`` plus
    #: ``server`` / ``outstanding_final``) — the raw material for the
    #: soak harness's conservation invariants.
    server_metrics: List[Dict[str, Any]] = field(default_factory=list)
    #: Aggregated overload-protection counters (see repro.qos); always
    #: present so the analysis schema is stable with or without QoS.
    qos_stats: Dict[str, Any] = field(default_factory=dict)
    #: Hedged-request ledger (see repro.straggler); conservation
    #: ``won + wasted == issued`` is asserted by the soak harness.
    hedges_issued: int = 0
    hedges_won: int = 0
    hedges_wasted: int = 0
    #: Per-request latency (finish − its own arrival), sorted — the
    #: tail-latency bench's raw material.  ``per_request_times`` keeps
    #: absolute finish times for backwards compatibility.
    per_request_latencies: List[float] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        """Mean per-request completion time."""
        return sum(self.per_request_times) / len(self.per_request_times)

    @property
    def goodput(self) -> float:
        """Useful bytes per second of makespan.

        "Useful" counts each requested byte once — retries that re-read
        or re-process data add wall-clock but no goodput, which is what
        makes this the headline metric under faults.
        """
        if self.makespan <= 0:
            return float("inf")
        return self.spec.total_bytes / self.makespan


def cost_models_from_registry(registry: KernelRegistry) -> Dict[str, KernelCostModel]:
    """Cost-model table for every kernel a registry knows."""
    models: Dict[str, KernelCostModel] = {}
    for name in registry.names():
        kernel = registry.get(name)
        models[name] = KernelCostModel(
            name=name,
            rate=kernel.rate,
            result_bytes=kernel.result_bytes,
        )
    return models


def _build_estimator(
    scheme: Scheme,
    spec: WorkloadSpec,
    prober: NodeProber,
    config: ClusterConfig,
    registry: KernelRegistry,
    stale_probe_timeout: Optional[float] = None,
    kernel_models: Optional[Dict[str, KernelCostModel]] = None,
) -> ContentionEstimator:
    """Estimator for one server.

    ``kernel_models`` lets the caller precompute the registry's cost
    models once per run instead of once per server.
    """
    if scheme is Scheme.AS:
        return AlwaysOffloadEstimator()
    if scheme is Scheme.DOSAS:
        kwargs: Dict[str, Any] = dict(
            prober=prober,
            kernel_models=(
                kernel_models
                if kernel_models is not None
                else cost_models_from_registry(registry)
            ),
            bandwidth=config.network_bandwidth,
            scheduler=make_scheduler(spec.scheduler_name),
            probe_period=spec.probe_period if spec.allow_migration else None,
            degrade_by_cpu=spec.degrade_by_cpu,
            client_speed_factor=config.compute_spec.core_speed
            / config.storage_spec.core_speed,
            account_normal_traffic=spec.account_normal_traffic,
            stale_probe_timeout=stale_probe_timeout,
        )
        if spec.estimator_variant == "smoothed":
            from repro.core.estimators_ext import SmoothedDOSASEstimator

            return SmoothedDOSASEstimator(**kwargs)
        if spec.estimator_variant == "hysteresis":
            from repro.core.estimators_ext import HysteresisDOSASEstimator

            return HysteresisDOSASEstimator(**kwargs)
        return DOSASEstimator(**kwargs)
    raise ValueError(f"scheme {scheme} needs no estimator")


def run_scheme(
    scheme: Scheme,
    spec: WorkloadSpec,
    fault_schedule: Optional["FaultSchedule"] = None,
    retry_policy: Optional[RetryPolicy] = None,
    max_virtual_time: Optional[float] = None,
    tracer: Optional["Tracer"] = None,
    qos: Optional[QoSConfig] = None,
    sim_scheduler: str = "calendar",
) -> SchemeResult:
    """Build the machine, run the workload, collect the numbers.

    ``fault_schedule`` injects failures (see ``repro.faults``); the
    schedule's suggested retry policy protects clients unless
    ``retry_policy`` overrides it.  Fault runs (and any run with
    ``max_virtual_time``) execute under a bounded-virtual-time
    watchdog, so a recovery bug raises ``WatchdogTimeout`` instead of
    hanging.

    ``qos`` (a :class:`repro.qos.QoSConfig`) arms overload protection:
    per-server admission control and intake policing, per-client
    circuit breakers, submit pacing, a run-global retry budget, and
    per-request deadlines.  Breakers, budget and deadlines act through
    the retry machinery, so they need a retry policy to take effect.

    ``tracer`` (a :class:`repro.obs.Tracer`) captures the full
    request-lifecycle timeline of the run — see ``repro.obs`` and
    ``docs/observability.md``.

    ``sim_scheduler`` selects the engine's pending-event scheduler
    (``"calendar"`` or ``"heap"``, see ``repro.sim.scheduler``).  Both
    are result-identical per seed — the knob trades implementation for
    wall-clock speed only, which is why it is a run argument and not
    part of the (result-embedded) :class:`WorkloadSpec`.
    """
    env = Environment(scheduler=sim_scheduler)
    if tracer is not None:
        env.tracer = tracer
    retry = retry_policy or (
        fault_schedule.retry if fault_schedule is not None else None
    )
    seed = resolve_seed(spec.seed)
    n_background = spec.background_readers * spec.n_storage
    config = discfarm_config(
        n_storage=spec.n_storage,
        n_compute=spec.total_requests + n_background,
        jitter=spec.jitter,
    ).with_(
        storage_spec=NodeSpec(cores=spec.storage_cores),
        compute_spec=NodeSpec(cores=spec.compute_cores),
        network_latency=spec.network_latency,
        seed=seed,
    )
    from repro.cluster.network import FairShareLink

    link_cls = SerialLink if spec.link_sharing == "serial" else FairShareLink
    topo = ClusterTopology(env, config, link_cls=link_cls)
    mds = MetadataServer(
        n_io_servers=spec.n_storage, default_stripe_size=config.stripe_size
    )
    servers = [
        IOServer(
            env, sn, topo.link_for(sn), mds, config, server_index=i,
            admission=(
                AdmissionController.from_config(
                    qos,
                    start=env.now,
                    tenants=spec.tenants,
                    # Per-server stream so the ledger's peer-scan
                    # permutation doesn't correlate across nodes.
                    seed=seed * 1_000_003 + 7919 * i,
                )
                if qos is not None else None
            ),
        )
        for i, sn in enumerate(topo.storage_nodes)
    ]
    retry_budget = (
        RetryBudget(
            qos.retry_budget,
            replenish_rate=qos.retry_replenish_rate,
            start=env.now,
        )
        if qos is not None and qos.retry_budget is not None
        else None
    )

    # Tenant identity per measured request: the per-node interleave
    # (smooth weighted round-robin over each tenant's demand) repeats
    # on every storage node, and request i lands on node i % n_storage,
    # so position i // n_storage in the sequence names its tenant.
    tenant_seq = interleave(spec.tenants) if spec.tenants else ()

    def _tenant_of(i: int) -> Optional[str]:
        return tenant_seq[i // spec.n_storage] if tenant_seq else None

    registry = default_registry
    kernel = registry.get(spec.kernel)

    # Straggler-aware dispatch: one latency board + dispatcher shared
    # by every client (each client alone sees too few requests to
    # learn anything); the shared rng stays deterministic because the
    # simulation is single-threaded.
    dispatcher: Optional[StragglerDispatcher] = None
    if spec.straggler_scheduler:
        board = LatencyBoard(
            StragglerConfig(
                hedge_delay_floor=spec.hedge_delay_floor,
                hedge_quantile=spec.hedge_quantile,
            )
        )
        dispatcher = StragglerDispatcher(board, seed=seed)

    asses: List[ActiveStorageServer] = []
    if scheme in (Scheme.AS, Scheme.DOSAS):
        runtime_config = RuntimeConfig(
            kernel_slots=spec.kernel_slots,
            execute_kernels=spec.execute_kernels,
            invocation_overhead=spec.kernel_overhead,
        )
        models = (
            cost_models_from_registry(registry)
            if scheme is Scheme.DOSAS else None
        )
        for server in servers:
            prober = NodeProber(server.node, server.queue_stats)
            estimator = _build_estimator(
                scheme, spec, prober, config, registry,
                stale_probe_timeout=(
                    fault_schedule.stale_probe_timeout
                    if fault_schedule is not None else None
                ),
                kernel_models=models,
            )
            asses.append(
                ActiveStorageServer(
                    env, server, estimator, registry=registry, config=runtime_config
                )
            )

    injector: Optional["FaultInjector"] = None
    if fault_schedule is not None:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(env, servers, fault_schedule).start()

    # One file per request, wholly resident on its home server.
    meta = (
        {"width": spec.image_width}
        if spec.kernel in ("gaussian2d", "sobel")
        else None
    )
    handles: List[FileHandle] = []
    for i in range(spec.total_requests):
        file = mds.create(
            f"/data/req{i}",
            size=spec.request_bytes,
            n_servers=1,
            first_server=i % spec.n_storage,
            seed=seed + i,
            meta=meta,
            n_replicas=spec.n_replicas,
        )
        handles.append(mds.open(file.name))

    # One requesting process per compute node (paper: "each process
    # requests one I/O operation at a time").
    client_rate = kernel.rate * config.compute_spec.core_speed
    ascs: List[ActiveStorageClient] = []

    def _make_asc(i: int) -> ActiveStorageClient:
        node = topo.compute_node(i)
        client = PVFSClient(env, node, servers, mds, tenant=_tenant_of(i))
        asc = ActiveStorageClient(
            env,
            node,
            client,
            registry=registry,
            execute_kernels=spec.execute_kernels,
            breakers=(
                BreakerBoard(
                    threshold=qos.breaker_threshold, cooldown=qos.breaker_cooldown
                )
                if qos is not None else None
            ),
            retry_budget=retry_budget,
            pace=(
                TokenBucket(qos.pace_rate, qos.pace_burst, start=env.now)
                if qos is not None and qos.pace_rate is not None
                else None
            ),
            deadline=qos.deadline if qos is not None else None,
            # Per-client seeded stream so full-jitter backoff is
            # deterministic yet de-synchronized across clients.
            rng=random.Random(seed * 1_000_003 + 9973 * i),
            dispatcher=dispatcher,
        )
        ascs.append(asc)
        return asc

    def _ts_request(i: int) -> Generator[Event, Any, Tuple[float, Any]]:
        asc = _make_asc(i)
        arrival = spec.arrival_offset(i)
        if arrival:
            yield env.timeout(arrival)
        yield from asc.read(handles[i], retry=retry)
        yield from asc.node.cpu.compute(float(spec.request_bytes), client_rate)
        result = None
        if spec.execute_kernels:
            file = mds.lookup(handles[i].name)
            data = file.read_bytes_as_array(0, spec.request_bytes, dtype=kernel.dtype)
            result = kernel.apply(data, meta=meta)
        return (env.now, result)

    def _active_request(i: int) -> Generator[Event, Any, Tuple[float, Any]]:
        asc = _make_asc(i)
        arrival = spec.arrival_offset(i)
        if arrival:
            yield env.timeout(arrival)
        outcome = yield from asc.read_ex(
            handles[i], spec.kernel, meta=meta, retry=retry
        )
        return (env.now, outcome)

    # Background normal readers (Figure 1's normal-I/O share of the
    # queue): their data competes for the same NICs but they are not
    # part of the measured active workload.
    background_handles: List[FileHandle] = []
    for j in range(n_background):
        f = mds.create(
            f"/background/b{j}",
            size=spec.background_bytes,
            n_servers=1,
            first_server=j % spec.n_storage,
            seed=seed + 10_000 + j,
        )
        background_handles.append(mds.open(f.name))

    def _background_reader(j: int) -> Generator[Event, Any, float]:
        node = topo.compute_node(spec.total_requests + j)
        client = PVFSClient(env, node, servers, mds)
        try:
            yield from client.read(background_handles[j])
        except PVFSError:
            pass  # background traffic lost to an injected fault is just gone
        return env.now

    # Background readers are created FIRST so their transfers sit at
    # the head of every NIC queue regardless of scheme — otherwise the
    # scheme whose data requests happen to enqueue earlier would dodge
    # the interference and the comparison would be unfair.
    for j in range(n_background):
        env.process(_background_reader(j))
    maker = _ts_request if scheme is Scheme.TS else _active_request
    procs = [env.process(maker(i)) for i in range(spec.total_requests)]
    done = AllOf(env, procs)
    deadline = max_virtual_time or (
        fault_schedule.horizon if fault_schedule is not None else None
    )
    if deadline is not None:
        from repro.faults.injector import run_with_watchdog

        run_with_watchdog(env, done, deadline)
    else:
        env.run(until=done)

    finish_times = [p.value[0] for p in procs]
    outcomes = [p.value[1] for p in procs]
    makespan = max(finish_times)
    # Per-request latency: finish relative to the request's own
    # staggered arrival — what a tail percentile should be taken over.
    latencies = sorted(
        t - spec.arrival_offset(i) for i, t in enumerate(finish_times)
    )

    served_active = demoted = interrupted = 0
    policy_values: List[float] = []
    if scheme is Scheme.TS:
        demoted = spec.total_requests
    else:
        for ass in asses:
            stats = ass.stats
            served_active += stats["served_active"]
            # An interrupted kernel is a demotion too — its remainder
            # was finished by the client.
            demoted += (
                stats["demoted_new"]
                + stats["demoted_queued"]
                + stats["interrupted"]
                + stats["shed_overload"]
            )
            interrupted += stats["interrupted"]
            est = ass.estimator
            if isinstance(est, DOSASEstimator):
                policy_values.extend(p.objective_value for p in est.policy_log)

    results: List[Any] = []
    if spec.execute_kernels:
        if scheme is Scheme.TS:
            results = outcomes
        else:
            results = [o.result for o in outcomes]

    retries = sum(a.stats["retries"] for a in ascs)
    retry_timeouts = sum(a.stats["retry_timeouts"] for a in ascs)
    retry_events = sorted(
        (e for a in ascs for e in a.retry_log),
        key=lambda e: (e["time"], e["rid"], e["attempt"]),
    )
    failed_requests = wasted_bytes = 0
    for ass in asses:
        failed_requests += ass.stats["failed"]
        wasted_bytes += ass.stats["wasted_bytes"]

    server_metrics: List[Dict[str, Any]] = [
        {
            "server": s.node.name,
            "outstanding_final": len(s.outstanding),
            **s.metrics.summary(),
        }
        for s in servers
    ]

    def _server_sum(name: str) -> int:
        return int(sum(s.metrics.get_counter(name) for s in servers))

    def _asc_sum(name: str) -> int:
        return sum(a.stats[name] for a in ascs)

    qos_stats: Dict[str, Any] = {
        "requests_shed": _server_sum("requests_shed"),
        "requests_shed_queued": _server_sum("requests_shed_queued"),
        "requests_overloaded": _server_sum("requests_overloaded"),
        "deadline_rejected": _server_sum("deadline_rejected"),
        "deadline_expired": _server_sum("deadline_expired"),
        "late_replies": _server_sum("late_replies"),
        "requests_failed_crash": _server_sum("requests_failed_crash"),
        "breaker_demotions": _asc_sum("breaker_demotions"),
        "breaker_fast_fails": _asc_sum("breaker_fast_fails"),
        "retries_denied_budget": _asc_sum("retries_denied_budget"),
        "deadline_failures": _asc_sum("deadline_failures"),
        "retry_budget_remaining": (
            retry_budget.remaining if retry_budget is not None else None
        ),
        # Hedged-request ledger (mirrored onto the result's top level);
        # the soak harness asserts won + wasted == issued.
        "hedges_issued": _asc_sum("hedges_issued"),
        "hedges_won": _asc_sum("hedges_won"),
        "hedges_wasted": _asc_sum("hedges_wasted"),
    }
    if dispatcher is not None:
        qos_stats["straggler"] = {
            **{k: dispatcher.stats[k] for k in sorted(dispatcher.stats)},
            "latency_board": dispatcher.board.snapshot(),
        }

    if spec.tenants:
        # Per-tenant goodput / SLO attainment from the request-level
        # latencies, plus the borrow/reclaim ledgers aggregated over
        # every server.  Key order is sorted everywhere so the report
        # serialises byte-identically per seed.
        lat_by_tenant: Dict[str, List[float]] = {t.name: [] for t in spec.tenants}
        for i, fin in enumerate(finish_times):
            name = _tenant_of(i)
            assert name is not None
            lat_by_tenant[name].append(fin - spec.arrival_offset(i))
        ledger_totals: Dict[str, Dict[str, float]] = {}
        for s in servers:
            ledger = s.admission.tenants if s.admission is not None else None
            if ledger is None:
                continue
            for name, counters in ledger.snapshot().items():
                agg = ledger_totals.setdefault(
                    name, {k: 0.0 for k in counters}
                )
                for key, value in counters.items():
                    agg[key] += value
        per_tenant: Dict[str, Any] = {}
        for t in sorted(spec.tenants, key=lambda t: t.name):
            lats = sorted(lat_by_tenant[t.name])
            n_req = len(lats)
            t_bytes = n_req * spec.request_bytes
            entry: Dict[str, Any] = {
                "requests": n_req,
                "bytes": t_bytes,
                "goodput": t_bytes / makespan if makespan > 0 else float("inf"),
                "slo_latency": t.slo_latency,
                "slo_attainment": (
                    sum(1 for x in lats if x <= t.slo_latency) / n_req
                    if t.slo_latency is not None and n_req
                    else None
                ),
                "latency_mean": sum(lats) / n_req if n_req else None,
                "latency_max": lats[-1] if n_req else None,
            }
            counters = ledger_totals.get(t.name)
            if counters is not None:
                entry["ledger"] = {k: counters[k] for k in sorted(counters)}
            per_tenant[t.name] = entry
        qos_stats["tenants"] = {
            "borrow_enabled": (
                bool(qos.tenant_borrow) if qos is not None else None
            ),
            "per_tenant": per_tenant,
        }

    return SchemeResult(
        scheme=scheme,
        spec=spec,
        makespan=makespan,
        per_request_times=sorted(finish_times),
        bandwidth=spec.total_bytes / makespan if makespan > 0 else float("inf"),
        served_active=served_active,
        demoted=demoted,
        interrupted=interrupted,
        results=results,
        policy_values=policy_values,
        retries=retries,
        retry_timeouts=retry_timeouts,
        failed_requests=failed_requests,
        wasted_bytes=wasted_bytes,
        fault_log=list(injector.log) if injector is not None else [],
        retry_events=retry_events,
        server_metrics=server_metrics,
        qos_stats=qos_stats,
        hedges_issued=int(qos_stats["hedges_issued"]),
        hedges_won=int(qos_stats["hedges_won"]),
        hedges_wasted=int(qos_stats["hedges_wasted"]),
        per_request_latencies=latencies,
    )
