"""Execute arbitrary workload plans against the simulated system.

``run_scheme`` covers the paper's homogeneous batch experiments;
``run_plan`` generalises to the Figure-1 scenario — several
applications, mixed active and normal I/O, staggered arrivals,
multiple requests per process — which the examples and the extension
benchmarks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.engine import Environment
from repro.sim.events import AllOf
from repro.cluster.config import NodeSpec, discfarm_config
from repro.cluster.probe import NodeProber
from repro.cluster.topology import ClusterTopology
from repro.kernels.registry import default_registry
from repro.pvfs.client import PVFSClient
from repro.pvfs.metadata import MetadataServer
from repro.pvfs.server import IOServer
from repro.core.asc import ActiveStorageClient
from repro.core.ass import ActiveStorageServer
from repro.core.runtime import RuntimeConfig
from repro.core.schemes import Scheme, WorkloadSpec, _build_estimator
from repro.workload.generator import PlannedRequest, RequestPlan


@dataclass
class RequestOutcome:
    """Completion record of one planned request."""

    request: PlannedRequest
    started_at: float
    finished_at: float
    result: object = None
    #: "normal" | "offloaded" | "demoted" | "mixed" (striped requests
    #: may split across dispositions).
    disposition: str = "normal"

    @property
    def latency(self) -> float:
        """Issue-to-completion time."""
        return self.finished_at - self.started_at


@dataclass
class PlanResult:
    """Outcome of running one plan under one scheme."""

    scheme: Scheme
    outcomes: List[RequestOutcome] = field(default_factory=list)
    served_active: int = 0
    demoted: int = 0
    interrupted: int = 0

    @property
    def makespan(self) -> float:
        """Latest completion time."""
        return max(o.finished_at for o in self.outcomes)

    @property
    def mean_latency(self) -> float:
        """Mean per-request latency."""
        return sum(o.latency for o in self.outcomes) / len(self.outcomes)

    def latencies_by_app(self) -> Dict[str, List[float]]:
        """App name → its request latencies."""
        out: Dict[str, List[float]] = {}
        for o in self.outcomes:
            out.setdefault(o.request.app, []).append(o.latency)
        return out


def run_plan(
    scheme: Scheme,
    plan: RequestPlan,
    spec: Optional[WorkloadSpec] = None,
) -> PlanResult:
    """Run ``plan`` under ``scheme``.

    ``spec`` supplies the machine knobs (storage nodes, overheads,
    jitter…); its per-request fields (kernel, count, size) are ignored
    in favour of the plan's own.  Files are created per request,
    round-robin across storage nodes.
    """
    if not len(plan):
        raise ValueError("empty plan")
    spec = spec or WorkloadSpec()

    env = Environment()
    by_process = plan.by_process()
    n_compute = max(1, len(by_process))
    config = discfarm_config(
        n_storage=spec.n_storage, n_compute=n_compute, jitter=spec.jitter
    ).with_(
        storage_spec=NodeSpec(cores=spec.storage_cores),
        compute_spec=NodeSpec(cores=spec.compute_cores),
        network_latency=spec.network_latency,
        seed=spec.seed or 20120924,
    )
    topo = ClusterTopology(env, config)
    mds = MetadataServer(spec.n_storage, config.stripe_size)
    servers = [
        IOServer(env, sn, topo.link_for(sn), mds, config, server_index=i)
        for i, sn in enumerate(topo.storage_nodes)
    ]
    registry = default_registry
    asses: List[ActiveStorageServer] = []
    if scheme in (Scheme.AS, Scheme.DOSAS):
        runtime_config = RuntimeConfig(
            kernel_slots=spec.kernel_slots,
            execute_kernels=spec.execute_kernels,
            invocation_overhead=spec.kernel_overhead,
        )
        for server in servers:
            prober = NodeProber(server.node, server.queue_stats)
            estimator = _build_estimator(scheme, spec, prober, config, registry)
            asses.append(
                ActiveStorageServer(
                    env, server, estimator, registry=registry, config=runtime_config
                )
            )

    # One file per planned request.
    handles = {}
    for idx, req in enumerate(plan):
        meta = (
            {"width": spec.image_width}
            if req.operation in ("gaussian2d", "sobel")
            else None
        )
        f = mds.create(
            f"/plan/{req.app}/p{req.process_index}/r{req.sequence}#{idx}",
            size=req.size,
            n_servers=1,
            first_server=idx % spec.n_storage,
            seed=spec.seed + idx,
            meta=meta,
        )
        handles[id(req)] = mds.open(f.name)

    outcomes: List[RequestOutcome] = []

    def _process(proc_index: int, requests: List[PlannedRequest]):
        node = topo.compute_node(proc_index % len(topo.compute_nodes))
        client = PVFSClient(env, node, servers, mds)
        asc = ActiveStorageClient(
            env, node, client, registry=registry,
            execute_kernels=spec.execute_kernels,
        )
        for req in requests:
            if env.now < req.arrival_time:
                yield env.timeout(req.arrival_time - env.now)
            started = env.now
            fh = handles[id(req)]
            result = None
            disposition = "normal"
            if req.active and scheme is not Scheme.TS:
                outcome = yield from asc.read_ex(fh, req.operation)
                result = outcome.result
                if outcome.demotions == 0:
                    disposition = "offloaded"
                elif outcome.demotions == len(outcome.served_active):
                    disposition = "demoted"
                else:
                    disposition = "mixed"
            else:
                yield from client.read(fh)
                if req.active:
                    # TS: the kernel runs client-side after the read.
                    kernel = registry.get(req.operation)
                    yield from node.cpu.compute(float(req.size), kernel.rate)
            outcomes.append(
                RequestOutcome(
                    request=req, started_at=started, finished_at=env.now,
                    result=result, disposition=disposition,
                )
            )

    procs = [
        env.process(_process(i, reqs))
        for i, ((_app, _pidx), reqs) in enumerate(sorted(by_process.items()))
    ]
    env.run(until=AllOf(env, procs))

    result = PlanResult(scheme=scheme, outcomes=outcomes)
    for ass in asses:
        stats = ass.stats
        result.served_active += stats["served_active"]
        # Interrupted kernels were migrated — the client finished them,
        # so they count among the demotions.
        result.demoted += (
            stats["demoted_new"]
            + stats["demoted_queued"]
            + stats["interrupted"]
        )
        result.interrupted += stats["interrupted"]
    return result
