"""Execute arbitrary workload plans against the simulated system.

``run_scheme`` covers the paper's homogeneous batch experiments;
``run_plan`` generalises to the Figure-1 scenario — several
applications, mixed active and normal I/O, staggered arrivals,
multiple requests per process — which the examples and the extension
benchmarks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.engine import Environment
from repro.sim.events import AllOf, Event
from repro.cluster.config import NodeSpec, discfarm_config
from repro.cluster.probe import NodeProber
from repro.cluster.topology import ClusterTopology
from repro.kernels.registry import default_registry
from repro.pvfs.client import PVFSClient
from repro.pvfs.filehandle import FileHandle
from repro.pvfs.metadata import MetadataServer
from repro.pvfs.server import IOServer
from repro.core.asc import ActiveStorageClient, RetryPolicy
from repro.core.ass import ActiveStorageServer
from repro.core.runtime import RuntimeConfig
from repro.core.schemes import (
    Scheme,
    WorkloadSpec,
    _build_estimator,
    cost_models_from_registry,
    resolve_seed,
)
from repro.sim.exceptions import SimulationError
from repro.workload.generator import PlannedRequest, RequestPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule
    from repro.obs.tracer import Tracer


@dataclass
class RequestOutcome:
    """Completion record of one planned request."""

    request: PlannedRequest
    started_at: float
    finished_at: float
    result: object = None
    #: "normal" | "offloaded" | "demoted" | "mixed" (striped requests
    #: may split across dispositions).
    disposition: str = "normal"

    @property
    def latency(self) -> float:
        """Issue-to-completion time."""
        return self.finished_at - self.started_at


@dataclass
class PlanResult:
    """Outcome of running one plan under one scheme."""

    scheme: Scheme
    outcomes: List[RequestOutcome] = field(default_factory=list)
    served_active: int = 0
    demoted: int = 0
    interrupted: int = 0
    #: Fault-run extras (all zero/empty for fault-free runs).
    retries: int = 0
    retry_timeouts: int = 0
    failed_requests: int = 0
    wasted_bytes: int = 0
    fault_log: List[Dict[str, Any]] = field(default_factory=list)
    retry_events: List[Dict[str, Any]] = field(default_factory=list)

    def _require_outcomes(self, metric: str) -> None:
        if not self.outcomes:
            raise SimulationError(
                f"{metric} is undefined: the run completed no requests "
                "(a watchdog-aborted fault run, or a plan whose every "
                "request failed)"
            )

    @property
    def makespan(self) -> float:
        """Latest completion time."""
        self._require_outcomes("makespan")
        return max(o.finished_at for o in self.outcomes)

    @property
    def mean_latency(self) -> float:
        """Mean per-request latency."""
        self._require_outcomes("mean_latency")
        return sum(o.latency for o in self.outcomes) / len(self.outcomes)

    def latencies_by_app(self) -> Dict[str, List[float]]:
        """App name → its request latencies."""
        out: Dict[str, List[float]] = {}
        for o in self.outcomes:
            out.setdefault(o.request.app, []).append(o.latency)
        return out


def run_plan(
    scheme: Scheme,
    plan: RequestPlan,
    spec: Optional[WorkloadSpec] = None,
    fault_schedule: Optional["FaultSchedule"] = None,
    retry_policy: Optional[RetryPolicy] = None,
    max_virtual_time: Optional[float] = None,
    tracer: Optional["Tracer"] = None,
    sim_scheduler: str = "calendar",
) -> PlanResult:
    """Run ``plan`` under ``scheme``.

    ``spec`` supplies the machine knobs (storage nodes, overheads,
    jitter…); its per-request fields (kernel, count, size) are ignored
    in favour of the plan's own.  Files are created per request,
    round-robin across storage nodes.

    ``fault_schedule`` / ``retry_policy`` / ``max_virtual_time`` behave
    as in :func:`~repro.core.schemes.run_scheme`: faults are injected
    per the schedule, clients retry per the policy, and the run is
    bounded in virtual time by a watchdog.  ``tracer`` records the
    request-lifecycle timeline (see ``repro.obs``).  ``sim_scheduler``
    picks the engine's event scheduler (``"calendar"``/``"heap"``,
    result-identical per seed — see ``repro.sim.scheduler``).
    """
    if not len(plan):
        raise ValueError("empty plan")
    spec = spec or WorkloadSpec()
    retry = retry_policy or (
        fault_schedule.retry if fault_schedule is not None else None
    )

    env = Environment(scheduler=sim_scheduler)
    if tracer is not None:
        env.tracer = tracer
    seed = resolve_seed(spec.seed)
    # Requests are keyed by their enumeration index in the plan — never
    # by id(): a recycled object address (plans rebuilt between calls,
    # GC reuse) would silently alias two requests to one file handle.
    indexed = list(enumerate(plan))
    by_process: Dict[Tuple[str, int], List[Tuple[int, PlannedRequest]]] = {}
    for idx, req in indexed:
        by_process.setdefault((req.app, req.process_index), []).append((idx, req))
    for entries in by_process.values():
        entries.sort(key=lambda e: (e[1].arrival_time, e[1].sequence))
    n_compute = max(1, len(by_process))
    config = discfarm_config(
        n_storage=spec.n_storage, n_compute=n_compute, jitter=spec.jitter
    ).with_(
        storage_spec=NodeSpec(cores=spec.storage_cores),
        compute_spec=NodeSpec(cores=spec.compute_cores),
        network_latency=spec.network_latency,
        seed=seed,
    )
    topo = ClusterTopology(env, config)
    mds = MetadataServer(spec.n_storage, config.stripe_size)
    servers = [
        IOServer(env, sn, topo.link_for(sn), mds, config, server_index=i)
        for i, sn in enumerate(topo.storage_nodes)
    ]
    registry = default_registry
    # Kernel lookups, precomputed once per run: the cost-model table
    # for the estimators and the per-operation kernels the TS path
    # executes client-side.
    kernel_models = (
        cost_models_from_registry(registry)
        if scheme is Scheme.DOSAS else None
    )
    kernel_by_op = {
        op: registry.get(op)
        for op in sorted({r.operation for r in plan if r.operation is not None})
    }
    asses: List[ActiveStorageServer] = []
    if scheme in (Scheme.AS, Scheme.DOSAS):
        runtime_config = RuntimeConfig(
            kernel_slots=spec.kernel_slots,
            execute_kernels=spec.execute_kernels,
            invocation_overhead=spec.kernel_overhead,
        )
        for server in servers:
            prober = NodeProber(server.node, server.queue_stats)
            estimator = _build_estimator(
                scheme, spec, prober, config, registry,
                stale_probe_timeout=(
                    fault_schedule.stale_probe_timeout
                    if fault_schedule is not None else None
                ),
                kernel_models=kernel_models,
            )
            asses.append(
                ActiveStorageServer(
                    env, server, estimator, registry=registry, config=runtime_config
                )
            )

    injector: Optional["FaultInjector"] = None
    if fault_schedule is not None:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(env, servers, fault_schedule).start()

    # One file per planned request, keyed by plan index.
    handles: List[FileHandle] = []
    for idx, req in indexed:
        meta = (
            {"width": spec.image_width}
            if req.operation in ("gaussian2d", "sobel")
            else None
        )
        f = mds.create(
            f"/plan/{req.app}/p{req.process_index}/r{req.sequence}#{idx}",
            size=req.size,
            n_servers=1,
            first_server=idx % spec.n_storage,
            seed=seed + idx,
            meta=meta,
        )
        handles.append(mds.open(f.name))

    outcomes: List[RequestOutcome] = []
    ascs: List[ActiveStorageClient] = []

    def _process(
        proc_index: int, requests: List[Tuple[int, PlannedRequest]]
    ) -> Generator[Event, Any, None]:
        node = topo.compute_node(proc_index % len(topo.compute_nodes))
        client = PVFSClient(env, node, servers, mds)
        asc = ActiveStorageClient(
            env, node, client, registry=registry,
            execute_kernels=spec.execute_kernels,
        )
        ascs.append(asc)
        for idx, req in requests:
            if env.now < req.arrival_time:
                yield env.timeout(req.arrival_time - env.now)
            started = env.now
            fh = handles[idx]
            result = None
            disposition = "normal"
            if req.active and scheme is not Scheme.TS:
                # Active planned requests always name an operation.
                assert req.operation is not None
                outcome = yield from asc.read_ex(fh, req.operation, retry=retry)
                result = outcome.result
                if outcome.demotions == 0:
                    disposition = "offloaded"
                elif outcome.demotions == len(outcome.served_active):
                    disposition = "demoted"
                else:
                    disposition = "mixed"
            else:
                yield from asc.read(fh, retry=retry)
                if req.active:
                    # TS: the kernel runs client-side after the read.
                    assert req.operation is not None
                    kernel = kernel_by_op[req.operation]
                    yield from node.cpu.compute(float(req.size), kernel.rate)
            outcomes.append(
                RequestOutcome(
                    request=req, started_at=started, finished_at=env.now,
                    result=result, disposition=disposition,
                )
            )

    procs = [
        env.process(_process(i, entries))
        for i, ((_app, _pidx), entries) in enumerate(sorted(by_process.items()))
    ]
    done = AllOf(env, procs)
    deadline = max_virtual_time or (
        fault_schedule.horizon if fault_schedule is not None else None
    )
    if deadline is not None:
        from repro.faults.injector import run_with_watchdog

        run_with_watchdog(env, done, deadline)
    else:
        env.run(until=done)

    result = PlanResult(scheme=scheme, outcomes=outcomes)
    for ass in asses:
        stats = ass.stats
        result.served_active += stats["served_active"]
        # Interrupted kernels were migrated — the client finished them,
        # so they count among the demotions.
        result.demoted += (
            stats["demoted_new"]
            + stats["demoted_queued"]
            + stats["interrupted"]
        )
        result.interrupted += stats["interrupted"]
        result.failed_requests += stats["failed"]
        result.wasted_bytes += stats["wasted_bytes"]
    result.retries = sum(a.stats["retries"] for a in ascs)
    result.retry_timeouts = sum(a.stats["retry_timeouts"] for a in ascs)
    result.retry_events = sorted(
        (e for a in ascs for e in a.retry_log),
        key=lambda e: (e["time"], e["rid"], e["attempt"]),
    )
    result.fault_log = list(injector.log) if injector is not None else []
    return result
