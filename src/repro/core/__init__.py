"""DOSAS core — the paper's contribution.

Components (paper Sec. III):

``model``
    The analytic cost model of Table II / Eq. 1–7: f(x), g(x), h(x),
    T_A, T_N, and the per-request x_i, y_i, z terms.
``scheduler``
    The 0/1 offload optimisation (Eq. 8): the paper's exhaustive
    matrix enumeration (Eq. 9–11), an exact branch-and-bound, an exact
    O(k²) threshold solver, and a naive greedy baseline.
``estimator``
    The Contention Estimator: probes CPU/memory/queue state and emits
    scheduling policies.  Static estimators (always-offload /
    never-offload) express the AS and TS baselines in the same
    machinery.
``runtime``
    The Active I/O Runtime (R): executes kernels on storage cores,
    demotes requests the policy rejects, interrupts and checkpoints
    running kernels on policy reversals.
``ass`` / ``asc``
    Active Storage Server and Active Storage Client — the two deployed
    halves wiring runtime+estimator to the PVFS server and finishing
    demoted work on compute nodes.
``schemes``
    End-to-end TS / AS / DOSAS workload runners producing the numbers
    behind every figure in the paper's evaluation.
"""

from repro.core.model import CostModel, RequestCost, SchedulingInstance
from repro.core.scheduler import (
    BranchAndBoundScheduler,
    ExhaustiveScheduler,
    GreedyScheduler,
    Scheduler,
    SchedulerDecision,
    ThresholdScheduler,
    make_scheduler,
)
from repro.core.policy import Decision, SchedulingPolicy
from repro.core.estimator import (
    AlwaysOffloadEstimator,
    ContentionEstimator,
    DOSASEstimator,
    NeverOffloadEstimator,
)
from repro.core.runtime import ActiveIORuntime, RuntimeConfig
from repro.core.ass import ActiveStorageServer
from repro.core.asc import (
    ActiveReadOutcome,
    ActiveStorageClient,
    RetryExhausted,
    RetryPolicy,
)
from repro.core.schemes import (
    DEFAULT_SEED,
    Scheme,
    SchemeResult,
    WorkloadSpec,
    resolve_seed,
    run_scheme,
)
from repro.core.planrun import PlanResult, RequestOutcome, run_plan
from repro.core.advisor import Advisor, Prediction
from repro.core.estimators_ext import (
    HysteresisDOSASEstimator,
    SmoothedDOSASEstimator,
)

__all__ = [
    "DEFAULT_SEED",
    "ActiveIORuntime",
    "Advisor",
    "HysteresisDOSASEstimator",
    "Prediction",
    "SmoothedDOSASEstimator",
    "ActiveReadOutcome",
    "ActiveStorageClient",
    "ActiveStorageServer",
    "AlwaysOffloadEstimator",
    "BranchAndBoundScheduler",
    "ContentionEstimator",
    "CostModel",
    "DOSASEstimator",
    "Decision",
    "ExhaustiveScheduler",
    "GreedyScheduler",
    "NeverOffloadEstimator",
    "PlanResult",
    "RequestCost",
    "RequestOutcome",
    "RetryExhausted",
    "RetryPolicy",
    "RuntimeConfig",
    "Scheduler",
    "SchedulerDecision",
    "SchedulingInstance",
    "SchedulingPolicy",
    "Scheme",
    "SchemeResult",
    "ThresholdScheduler",
    "WorkloadSpec",
    "make_scheduler",
    "resolve_seed",
    "run_plan",
    "run_scheme",
]
