"""Scheduling policies — the CE→Runtime contract.

Paper Sec. III-A: the Contention Estimator "is also in charge of
generating the scheduling policy for active I/O requests and sending
its decision, in the form of a scheduling policy, to the R component.
The R then serves the I/O requests according to the scheduling policy
it receives from the CE."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.probe import SystemProbe


class Decision(enum.Enum):
    """Per-request verdict."""

    ACTIVE = "active"    # execute the kernel on the storage node
    NORMAL = "normal"    # demote: serve as a normal read


@dataclass
class SchedulingPolicy:
    """A CE decision covering the active requests seen at probe time.

    Attributes
    ----------
    generated_at:
        Simulation time the policy was produced.
    decisions:
        rid → verdict for every active request the CE examined.
    default:
        Verdict for requests that arrive before the next policy
        refresh (the paper's "new arrival" rule: when the node is
        overloaded they are immediately demoted).
    interrupt_running:
        True when the CE wants currently-executing kernels preempted
        and migrated ("the R will record and interrupt current active
        I/O being serviced").
    probe:
        The system snapshot the policy was derived from (for tracing
        and the accuracy table).
    objective_value:
        The solver's predicted completion time t (Eq. 4).
    """

    generated_at: float
    decisions: Dict[int, Decision] = field(default_factory=dict)
    default: Decision = Decision.ACTIVE
    interrupt_running: bool = False
    probe: Optional[SystemProbe] = None
    objective_value: float = 0.0

    def decision_for(self, rid: int) -> Decision:
        """Verdict for request ``rid`` (falls back to ``default``)."""
        return self.decisions.get(rid, self.default)

    @property
    def n_active(self) -> int:
        """Requests the policy keeps active."""
        return sum(1 for d in self.decisions.values() if d is Decision.ACTIVE)

    @property
    def n_demoted(self) -> int:
        """Requests the policy demotes."""
        return sum(1 for d in self.decisions.values() if d is Decision.NORMAL)

    @property
    def rejects_all(self) -> bool:
        """True when every examined request was demoted."""
        return bool(self.decisions) and self.n_active == 0

    @staticmethod
    def static(decision: Decision, now: float = 0.0) -> "SchedulingPolicy":
        """A constant policy (AS = always ACTIVE, TS = always NORMAL)."""
        return SchedulingPolicy(generated_at=now, default=decision)
