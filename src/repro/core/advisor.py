"""Offline what-if advisor built on the analytic model.

The DOSAS cost model (Eq. 1–7) is useful beyond the online scheduler:
given a planned workload and machine, it predicts each scheme's
completion time *without simulating*, and recommends a configuration.
This realises the paper's closing suggestion that DOSAS "could serve
as part of a high performance I/O subsystem" — capacity planning is
the first thing an operator asks of such a subsystem.

Predictions use the same additive model the scheduler optimises, so
they inherit its documented blind spots (no compute/transfer overlap);
``predict_error`` quantifies the gap against the simulator for any
point, which the test suite bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig, discfarm_config
from repro.core.model import CostModel, SchedulingInstance
from repro.core.scheduler import Scheduler, ThresholdScheduler
from repro.core.schemes import Scheme, WorkloadSpec, run_scheme
from repro.kernels.costs import KernelCostModel
from repro.kernels.registry import default_registry


@dataclass(frozen=True)
class Prediction:
    """Analytic completion-time estimates for one workload point."""

    t_traditional: float      # T_N (Eq. 2–3)
    t_active: float           # T_A (Eq. 1)
    t_dosas: float            # optimum of Eq. 4
    recommended: Scheme
    n_offloaded: int          # requests DOSAS keeps active

    @property
    def dosas_gain_vs_best_static(self) -> float:
        """Fractional time saved vs the better static scheme."""
        best = min(self.t_traditional, self.t_active)
        if best <= 0:
            return 0.0
        return (best - self.t_dosas) / best


class Advisor:
    """Predicts scheme performance from the paper's cost model."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        self.config = config or discfarm_config()
        self.scheduler = scheduler or ThresholdScheduler()

    def _model(self, kernel_name: str) -> CostModel:
        kernel = default_registry.get(kernel_name)
        cost = KernelCostModel(
            name=kernel_name, rate=kernel.rate,
            result_bytes=kernel.result_bytes,
        )
        return CostModel(
            kernel=cost,
            storage_capability=kernel.rate * self.config.storage_spec.core_speed,
            compute_capability=kernel.rate * self.config.compute_spec.core_speed,
            bandwidth=self.config.network_bandwidth,
        )

    def predict(
        self,
        kernel: str,
        sizes: Sequence[float],
        normal_bytes: float = 0.0,
    ) -> Prediction:
        """Predict all three schemes for ``sizes`` active requests.

        ``normal_bytes`` adds background normal-I/O traffic on the
        same storage node (paper Table II's D_N).
        """
        if not sizes:
            raise ValueError("need at least one request")
        model = self._model(kernel)
        t_a = model.t_all_active(sizes, normal_bytes)
        t_n = model.t_all_normal(sizes, normal_bytes)
        instance = SchedulingInstance.from_sizes(model, sizes)
        decision = self.scheduler.solve(instance)
        t_d = decision.value + model.g(normal_bytes)
        best = min(
            ((t_n, Scheme.TS), (t_a, Scheme.AS), (t_d, Scheme.DOSAS)),
            key=lambda pair: pair[0],
        )
        return Prediction(
            t_traditional=t_n,
            t_active=t_a,
            t_dosas=t_d,
            recommended=best[1],
            n_offloaded=decision.n_active,
        )

    def sweep(
        self,
        kernel: str,
        request_bytes: float,
        counts: Sequence[int],
    ) -> List[Tuple[int, Prediction]]:
        """Predictions across a request-count sweep."""
        return [
            (n, self.predict(kernel, [float(request_bytes)] * n))
            for n in counts
        ]

    def crossover(
        self,
        kernel: str,
        request_bytes: float,
        max_requests: int = 1024,
    ) -> Optional[int]:
        """The smallest n at which TS's prediction beats AS's.

        None when active storage wins at every tested scale — the
        paper's SUM regime.
        """
        for n in range(1, max_requests + 1):
            p = self.predict(kernel, [float(request_bytes)] * n)
            if p.t_traditional < p.t_active:
                return n
        return None

    def predict_error(
        self,
        kernel: str,
        n_requests: int,
        request_bytes: int,
    ) -> Dict[str, float]:
        """|analytic − simulated| / simulated for each scheme.

        Quantifies how far the Eq. 4 additive model strays from the
        event-level simulation at one point (the model ignores
        compute/transfer overlap, so DOSAS error is the largest near
        the crossover).
        """
        sizes = [float(request_bytes)] * n_requests
        pred = self.predict(kernel, sizes)
        out: Dict[str, float] = {}
        for scheme, predicted in (
            (Scheme.TS, pred.t_traditional),
            (Scheme.AS, pred.t_active),
            (Scheme.DOSAS, pred.t_dosas),
        ):
            spec = WorkloadSpec(kernel=kernel, n_requests=n_requests,
                                request_bytes=request_bytes)
            simulated = run_scheme(scheme, spec).makespan
            out[scheme.value] = abs(predicted - simulated) / simulated
        return out
