"""The Active Storage Client (ASC) — paper Sec. III-B.

"The ASC is a process that runs on the system's compute nodes ...  it
has two functionalities: serving as an interface for applications, and
assisting the storage nodes to complete active I/O without the
intervention of application developers when the I/O is treated as
normal I/O by storage nodes."

"When the ASC receives an active I/O, it will register the operation,
I/O size ... and its fh at local, and then transfer the request to the
R ...  When the ASC receives the result of the I/O, it will first
check the completed argument: if it equals 0, it will manage the rest
of the processing until it has completed; if it equals 1, it will
return the result to the requesting application process directly."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.engine import Environment
from repro.cluster.node import ComputeNode
from repro.kernels.base import Kernel, KernelCheckpoint
from repro.kernels.registry import KernelRegistry, default_registry
from repro.pvfs.client import PVFSClient
from repro.pvfs.filehandle import FileHandle
from repro.pvfs.requests import IOReply, read_extent_stream, slice_extents


@dataclass
class _Registration:
    """The ASC's local record of one active I/O (paper Sec. III-B)."""

    operation: str
    size: int
    fh: FileHandle
    meta: Dict[str, object] = field(default_factory=dict)


@dataclass
class ActiveReadOutcome:
    """What an application gets back from one active read.

    Attributes
    ----------
    result:
        The combined kernel result (None in timing-only runs).
    served_active:
        Per-server flags: True where the storage side completed the
        kernel.
    demotions:
        How many per-server requests the client had to finish.
    client_bytes_read:
        Bytes the ASC pulled over normal reads to finish demoted work.
    client_compute_bytes:
        Bytes the client-side kernels processed.
    finished_at:
        Simulation time everything (including client-side work) done.
    output_files:
        Names of output files filter kernels wrote at storage nodes
        (Son et al. write-back convention); empty for reductions and
        for demoted pieces (whose output is returned directly).
    """

    result: Any
    served_active: List[bool]
    demotions: int
    client_bytes_read: int
    client_compute_bytes: int
    finished_at: float
    output_files: List[str] = field(default_factory=list)


class ActiveStorageClient:
    """One compute node's ASC."""

    def __init__(
        self,
        env: Environment,
        node: ComputeNode,
        pvfs: PVFSClient,
        registry: Optional[KernelRegistry] = None,
        execute_kernels: bool = False,
        client_speed_factor: float = 1.0,
    ) -> None:
        self.env = env
        self.node = node
        self.pvfs = pvfs
        #: Client-side PK deployment (shared instances — kernels are
        #: stateless; see ActiveStorageServer).
        self.registry = registry or default_registry
        self.execute_kernels = execute_kernels
        self.client_speed_factor = float(client_speed_factor)
        #: rid-independent registration log (operation, size, fh).
        self.registrations: List[_Registration] = []

    # -- application-facing API ---------------------------------------------------
    def read_ex(
        self,
        fh: FileHandle,
        operation: str,
        offset: int = 0,
        size: Optional[int] = None,
        meta: Optional[dict] = None,
    ):
        """Active read: the engine behind ``MPI_File_read_ex``.

        Simulation process returning an :class:`ActiveReadOutcome`.
        Every per-server reply with ``completed == 0`` is finished
        locally: normal read of the remaining extent, then the
        client-side kernel (resuming any checkpoint).
        """
        size = fh.size - offset if size is None else size
        self.registrations.append(
            _Registration(operation=operation, size=size, fh=fh, meta=dict(meta or {}))
        )
        replies: List[IOReply] = yield from self.pvfs.read_active(
            fh, operation, offset=offset, size=size, meta=meta
        )

        kernel = self.registry.get(operation)
        partials: List[Any] = []
        served_flags: List[bool] = []
        output_files: List[str] = []
        demotions = 0
        client_bytes = 0
        client_compute = 0

        for reply in replies:
            if reply.completed:
                served_flags.append(True)
                partials.append(reply.result)
                if reply.output_file:
                    output_files.append(reply.output_file)
                continue
            served_flags.append(False)
            demotions += 1
            partial, nread, ncomp = yield from self._finish_demoted(
                kernel, reply, operation, meta
            )
            partials.append(partial)
            client_bytes += nread
            client_compute += ncomp

        result = self._combine(kernel, partials)
        return ActiveReadOutcome(
            result=result,
            served_active=served_flags,
            demotions=demotions,
            client_bytes_read=client_bytes,
            client_compute_bytes=client_compute,
            finished_at=self.env.now,
            output_files=output_files,
        )

    def read(self, fh: FileHandle, offset: int = 0, size: Optional[int] = None):
        """Plain read passthrough (simulation process)."""
        replies = yield from self.pvfs.read(fh, offset=offset, size=size)
        return replies

    # -- demotion completion (paper: "manage the rest of the processing") ----------
    def _finish_demoted(
        self,
        kernel: Kernel,
        reply: IOReply,
        operation: str,
        meta: Optional[dict],
    ):
        """Normal-read the remaining data and run the client-side PK.

        Returns ``(partial_result, bytes_read, bytes_computed)``.
        """
        checkpoint: Optional[KernelCheckpoint] = reply.checkpoint
        done = reply.bytes_done
        remaining = int(reply.remaining)
        # The unprocessed data is the tail of the request's extent
        # stream — for striped requests that tail spans several file
        # pieces; each is read with its own normal I/O.
        pieces = slice_extents(reply.extents, done, remaining)

        for file_offset, nbytes in pieces:
            yield from self.pvfs.read(reply.fh, offset=file_offset, size=nbytes)

        # Client-side compute at C_{C,op} on this node's cores.
        if remaining > 0:
            yield from self.node.cpu.compute(
                float(remaining),
                kernel.rate * self.client_speed_factor,
            )

        partial = None
        if self.execute_kernels:
            file = self.pvfs.mds.lookup(reply.fh.name)
            state = (
                kernel.resume(checkpoint)
                if checkpoint is not None and checkpoint.records
                else kernel.init_state(self._meta_for(reply.fh, meta))
            )
            if remaining > 0:
                data = read_extent_stream(file, reply.extents, done, remaining,
                                          dtype=kernel.dtype)
                kernel.process_chunk(state, data)
            partial = kernel.finalize(state)
        return partial, int(remaining), int(remaining)

    def _combine(self, kernel: Kernel, partials: List[Any]):
        if not self.execute_kernels:
            return None
        real = [p for p in partials if p is not None]
        if not real:
            return None
        if len(real) == 1:
            return real[0]
        return kernel.combine(real)

    @staticmethod
    def _meta_for(fh: FileHandle, meta: Optional[dict]) -> Optional[dict]:
        merged = dict(fh.meta_dict)
        merged.update(meta or {})
        return merged or None
