"""The Active Storage Client (ASC) — paper Sec. III-B.

"The ASC is a process that runs on the system's compute nodes ...  it
has two functionalities: serving as an interface for applications, and
assisting the storage nodes to complete active I/O without the
intervention of application developers when the I/O is treated as
normal I/O by storage nodes."

"When the ASC receives an active I/O, it will register the operation,
I/O size ... and its fh at local, and then transfer the request to the
R ...  When the ASC receives the result of the I/O, it will first
check the completed argument: if it equals 0, it will manage the rest
of the processing until it has completed; if it equals 1, it will
return the result to the requesting application process directly."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.qos.breaker import BreakerBoard, CircuitBreaker
from repro.qos.budget import RetryBudget
from repro.qos.tokens import TokenBucket
from repro.sim.engine import Environment
from repro.sim.events import AllOf, AnyOf, Event
from repro.cluster.node import ComputeNode
from repro.kernels.base import Kernel, KernelCheckpoint
from repro.kernels.registry import KernelRegistry, default_registry
from repro.pvfs.client import PVFSClient
from repro.pvfs.filehandle import FileHandle
from repro.pvfs.metadata import PVFSError
from repro.pvfs.requests import (
    IOKind,
    IOReply,
    IORequest,
    read_extent_stream,
    slice_extents,
)
from repro.pvfs.server import DeadlineExceeded
from repro.straggler.dispatch import StragglerDispatcher


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side fault tolerance: timeout + bounded exponential backoff.

    Attributes
    ----------
    timeout:
        Seconds the ASC waits for each per-server reply before
        declaring the attempt lost.
    max_retries:
        Re-issues allowed per piece (total attempts = max_retries + 1).
    backoff_base:
        Delay before the first re-issue.
    backoff_factor:
        Multiplier per further re-issue.
    backoff_cap:
        Upper bound on any single backoff delay.
    full_jitter:
        When True, each backoff delay is drawn uniformly from
        ``[0, nominal]`` (AWS full-jitter), so synchronized clients
        don't re-issue in lockstep.  The draw uses the seeded RNG the
        caller passes to :meth:`backoff`, so it stays deterministic
        given the spec seed.
    """

    timeout: float = 5.0
    max_retries: int = 5
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap: float = 4.0
    full_jitter: bool = False

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")

    def backoff(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Delay before re-issue number ``attempt`` (0-based)."""
        delay = min(self.backoff_cap, self.backoff_base * self.backoff_factor ** attempt)
        if self.full_jitter and rng is not None:
            return rng.uniform(0.0, delay)
        return delay


class RetryExhausted(PVFSError):
    """A per-server piece failed/timed out beyond ``max_retries``.

    ``last_cause`` carries the final underlying failure — the last
    failed reply's exception, or None when the last attempt simply
    timed out without an answer.
    """

    def __init__(self, message: str, last_cause: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.last_cause = last_cause


@dataclass
class _Registration:
    """The ASC's local record of one active I/O (paper Sec. III-B)."""

    operation: str
    size: int
    fh: FileHandle
    meta: Dict[str, object] = field(default_factory=dict)


@dataclass
class ActiveReadOutcome:
    """What an application gets back from one active read.

    Attributes
    ----------
    result:
        The combined kernel result (None in timing-only runs).
    served_active:
        Per-server flags: True where the storage side completed the
        kernel.
    demotions:
        How many per-server requests the client had to finish.
    client_bytes_read:
        Bytes the ASC pulled over normal reads to finish demoted work.
    client_compute_bytes:
        Bytes the client-side kernels processed.
    finished_at:
        Simulation time everything (including client-side work) done.
    output_files:
        Names of output files filter kernels wrote at storage nodes
        (Son et al. write-back convention); empty for reductions and
        for demoted pieces (whose output is returned directly).
    """

    result: Any
    served_active: List[bool]
    demotions: int
    client_bytes_read: int
    client_compute_bytes: int
    finished_at: float
    output_files: List[str] = field(default_factory=list)


class ActiveStorageClient:
    """One compute node's ASC."""

    def __init__(
        self,
        env: Environment,
        node: ComputeNode,
        pvfs: PVFSClient,
        registry: Optional[KernelRegistry] = None,
        execute_kernels: bool = False,
        client_speed_factor: float = 1.0,
        breakers: Optional[BreakerBoard] = None,
        retry_budget: Optional[RetryBudget] = None,
        pace: Optional[TokenBucket] = None,
        deadline: Optional[float] = None,
        rng: Optional[random.Random] = None,
        dispatcher: Optional[StragglerDispatcher] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.pvfs = pvfs
        #: Client-side PK deployment (shared instances — kernels are
        #: stateless; see ActiveStorageServer).
        self.registry = registry or default_registry
        self.execute_kernels = execute_kernels
        self.client_speed_factor = float(client_speed_factor)
        #: Overload protection (see repro.qos): per-server circuit
        #: breakers, the run-global retry-token pool, submit pacing,
        #: the relative deadline stamped on every request, and the
        #: seeded RNG full-jitter backoff draws from.
        self.breakers = breakers
        self.retry_budget = retry_budget
        self.pace = pace
        self.deadline = deadline
        self.rng = rng
        #: Straggler-aware routing (see repro.straggler): when set,
        #: retried pieces are dispatched over replica candidate sets
        #: with hedged backups; ``None`` keeps the classic
        #: layout-primary path bit-for-bit unchanged.
        self.dispatcher = dispatcher
        #: rid-independent registration log (operation, size, fh).
        self.registrations: List[_Registration] = []
        #: Fault-recovery counters for the analysis layer.
        self.stats: Dict[str, int] = {
            "retries": 0,
            "retry_timeouts": 0,
            "retry_failures": 0,
            "requests_recovered": 0,
            "retries_denied_budget": 0,
            "breaker_fast_fails": 0,
            "breaker_demotions": 0,
            "deadline_failures": 0,
            "hedges_issued": 0,
            "hedges_won": 0,
            "hedges_wasted": 0,
        }
        #: One entry per abandoned attempt: time, rid, parent, attempt,
        #: reason — the analysis layer derives recovery latency from it.
        self.retry_log: List[Dict[str, Any]] = []

    # -- application-facing API ---------------------------------------------------
    def read_ex(
        self,
        fh: FileHandle,
        operation: str,
        offset: int = 0,
        size: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator[Event, Any, ActiveReadOutcome]:
        """Active read: the engine behind ``MPI_File_read_ex``.

        Simulation process returning an :class:`ActiveReadOutcome`.
        Every per-server reply with ``completed == 0`` is finished
        locally: normal read of the remaining extent, then the
        client-side kernel (resuming any checkpoint).

        With a :class:`RetryPolicy`, each per-server piece is driven
        independently through timeout/cancel/re-issue recovery, so a
        crashed or hung server delays only its own stripes.
        """
        size = fh.size - offset if size is None else size
        self.registrations.append(
            _Registration(operation=operation, size=size, fh=fh, meta=dict(meta or {}))
        )
        if retry is None:
            replies: List[IOReply] = yield from self.pvfs.read_active(
                fh, operation, offset=offset, size=size, meta=meta
            )
        else:
            requests = self.pvfs._build_requests(
                fh, offset, size, IOKind.ACTIVE, operation, meta
            )
            replies = yield from self._gather_with_retry(requests, retry)

        kernel = self.registry.get(operation)
        partials: List[Any] = []
        served_flags: List[bool] = []
        output_files: List[str] = []
        demotions = 0
        client_bytes = 0
        client_compute = 0

        for reply in replies:
            if reply.completed:
                served_flags.append(True)
                partials.append(reply.result)
                if reply.output_file:
                    output_files.append(reply.output_file)
                continue
            served_flags.append(False)
            demotions += 1
            tr = self.env.tracer
            if tr.enabled:
                tr.begin(
                    self.env.now,
                    "client-finish",
                    f"client:{self.node.name}",
                    rid=reply.rid,
                    remaining=int(reply.remaining),
                )
            partial, nread, ncomp = yield from self._finish_demoted(
                kernel, reply, operation, meta, retry
            )
            if tr.enabled:
                tr.end(
                    self.env.now,
                    "client-finish",
                    f"client:{self.node.name}",
                    rid=reply.rid,
                )
            partials.append(partial)
            client_bytes += nread
            client_compute += ncomp

        result = self._combine(kernel, partials)
        return ActiveReadOutcome(
            result=result,
            served_active=served_flags,
            demotions=demotions,
            client_bytes_read=client_bytes,
            client_compute_bytes=client_compute,
            finished_at=self.env.now,
            output_files=output_files,
        )

    def read(
        self,
        fh: FileHandle,
        offset: int = 0,
        size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator[Event, Any, List[IOReply]]:
        """Plain read passthrough (simulation process).

        With a :class:`RetryPolicy`, per-server pieces recover from
        crashes and hangs the same way active reads do.
        """
        if retry is None:
            replies: List[IOReply] = yield from self.pvfs.read(
                fh, offset=offset, size=size
            )
            return replies
        size = fh.size - offset if size is None else size
        requests = self.pvfs._build_requests(fh, offset, size, IOKind.NORMAL, None, None)
        replies = yield from self._gather_with_retry(requests, retry)
        return replies

    # -- fault recovery (see repro.faults) ----------------------------------
    def _gather_with_retry(
        self, requests: List[IORequest], retry: RetryPolicy
    ) -> Generator[Event, Any, List[IOReply]]:
        """Drive every per-server piece through recovery (process)."""
        if self.deadline is not None:
            now = self.env.now
            for request in requests:
                if request.deadline is None:
                    request.deadline = now + self.deadline
        procs = [
            self.env.process(self._recover_piece(r, retry)) for r in requests
        ]
        try:
            yield AllOf(self.env, procs)
        except PVFSError:
            # One piece gave up: the others keep running — defuse them
            # so a second late RetryExhausted cannot crash the engine.
            for proc in procs:
                proc.defuse()
            raise
        return [p.value for p in procs]

    def _recover_piece(
        self, request: IORequest, retry: RetryPolicy
    ) -> Generator[Event, Any, IOReply]:
        """Complete one per-server request under faults (process).

        Per attempt: consult the circuit breaker, pace the submission,
        submit, then wait for the reply or the timeout.  On timeout or
        a failed reply, abandon the attempt (cancel server-side so no
        late answer races the retry), back off exponentially, and
        re-issue carrying the newest checkpoint — bytes a previous
        attempt completed are never re-read.  Re-issues additionally
        need a token from the global retry budget, and an expired
        per-request deadline ends recovery immediately.
        """
        checkpoint: Optional[KernelCheckpoint] = request.resume_from
        last_error: Optional[BaseException] = None
        gave_up = ""
        for attempt in range(retry.max_retries + 1):
            if attempt > 0:
                if self.retry_budget is not None and not self.retry_budget.try_acquire(
                    self.env.now
                ):
                    self.stats["retries_denied_budget"] += 1
                    gave_up = "retry budget exhausted"
                    break
                self.stats["retries"] += 1
                yield self.env.timeout(retry.backoff(attempt - 1, rng=self.rng))
                request = self.pvfs.reissue(request, resume_from=checkpoint)
            if request.deadline is not None and self.env.now >= request.deadline:
                self.stats["deadline_failures"] += 1
                last_error = DeadlineExceeded(
                    f"request {request.rid} missed its deadline before "
                    f"attempt {attempt}"
                )
                gave_up = "deadline expired"
                break
            if self.dispatcher is None:
                ranked: Optional[List[int]] = None
                breaker = self._breaker_for(request)
            else:
                # Straggler-aware routing: rank replica candidates
                # (breaker-blocked servers excluded, deadline pressure
                # honoured) and guard the attempt with the *chosen*
                # primary's breaker, not the layout primary's.
                ranked = self.dispatcher.order(
                    self.pvfs.candidates_for(request),
                    self.env.now,
                    breakers=self.breakers,
                    deadline=request.deadline,
                )
                breaker = (
                    self.breakers.for_server(ranked[0])
                    if self.breakers is not None
                    else None
                )
            if breaker is not None and not breaker.allow(self.env.now):
                if request.is_active:
                    # Route around the sick node: demote to local
                    # compute right away instead of hammering it.
                    self.stats["breaker_demotions"] += 1
                    return self._demoted_locally(request, checkpoint)
                # A normal read has nowhere else to get the data —
                # fast-fail the attempt (no traffic) and back off.
                self.stats["breaker_fast_fails"] += 1
                self._log_retry(request, attempt, "breaker-open")
                continue
            if self.pace is not None:
                wait = self.pace.reserve(request.size, self.env.now)
                if wait > 0:
                    yield self.env.timeout(wait)
            if ranked is not None:
                hedged_reply, h_reason, h_error = yield from self._attempt_hedged(
                    request, ranked, breaker, retry, checkpoint
                )
                if h_error is not None:
                    last_error = h_error
                if hedged_reply is not None:
                    if attempt > 0:
                        self.stats["requests_recovered"] += 1
                    return hedged_reply
                if h_reason == "timeout":
                    self.stats["retry_timeouts"] += 1
                else:
                    self.stats["retry_failures"] += 1
                self._log_retry(request, attempt, h_reason)
                continue
            self.pvfs.submit(request)
            # Preemptive defuse: if the reply fails *after* the timeout
            # below already decided the race, nobody would otherwise
            # handle the failure and the engine would crash the run.
            request.reply.defuse()
            deadline = self.env.timeout(retry.timeout)
            reason: Optional[str] = None
            try:
                yield AnyOf(self.env, [request.reply, deadline])
            except PVFSError as err:
                reason = f"failed: {err}"
                last_error = err
            # The race is decided; a still-pending deadline is dead
            # weight in the event queue (its only callback is the
            # decided AnyOf's no-op check), so let the scheduler's
            # compaction sweep reclaim it instead of carrying it to
            # its timestamp.
            deadline.abandon()
            if reason is None and request.reply.processed and request.reply.ok:
                # Also covers the same-timestamp race where the timeout
                # decided the AnyOf but the real reply landed anyway.
                reply: IOReply = request.reply.value
                if breaker is not None:
                    breaker.on_success(self.env.now)
                if attempt > 0:
                    self.stats["requests_recovered"] += 1
                return reply
            if breaker is not None:
                breaker.on_failure(self.env.now)
            if reason is None:
                reason = "timeout"
                self.stats["retry_timeouts"] += 1
            else:
                self.stats["retry_failures"] += 1
            self.pvfs.server_for(request).cancel(request.rid)
            self._log_retry(request, attempt, reason)
        raise RetryExhausted(
            f"request {request.rid} ({request.operation or 'normal'}) gave up "
            + (f"({gave_up})" if gave_up
               else f"after {retry.max_retries + 1} attempts"),
            last_cause=last_error,
        ) from last_error

    def _attempt_hedged(
        self,
        request: IORequest,
        ranked: List[int],
        breaker: Optional[CircuitBreaker],
        retry: RetryPolicy,
        checkpoint: Optional[KernelCheckpoint],
    ) -> Generator[Event, Any, Tuple[Optional[IOReply], str, Optional[BaseException]]]:
        """One dispatcher-routed attempt: primary plus hedged backups.

        Simulation process.  Submits to ``ranked[0]``; once the
        adaptive hedge delay elapses without an answer (and the hedge
        budget permits), a backup clone goes to the next candidate —
        first successful reply wins.  Every reply is preemptively
        defused, so a loser completing after (or racing) its cancel
        drains through the server's late-reply accounting instead of
        crashing the engine, and hedge conservation
        (``won + wasted == issued``) holds structurally: each issued
        hedge settles exactly once at the single exit below.

        Breaker composition: the chosen primary's breaker hears
        success only when the *primary* wins and failure when the
        primary demonstrably failed (hard error or attempt timeout).  A
        hedge win says the primary was slow, not sick — it costs the
        primary a full-elapsed-time latency observation, nothing more.

        Returns ``(reply, reason, error)``: a winning reply, or
        ``None`` with the abandon reason for the retry loop.
        """
        dispatcher = self.dispatcher
        assert dispatcher is not None
        env = self.env
        servers = self.pvfs.servers
        primary_idx = ranked[0]
        backups = ranked[1:]

        self.pvfs.submit_to(request, servers[primary_idx])
        request.reply.defuse()
        dispatcher.note_primary()
        dispatcher.board.note_submit(primary_idx)
        issued_at = env.now
        deadline = env.timeout(retry.timeout)
        max_hedges = min(dispatcher.config.max_hedges, len(backups))
        hedge_timer: Optional[Event] = (
            env.timeout(dispatcher.hedge_delay()) if max_hedges > 0 else None
        )
        pending: List[Tuple[IORequest, int]] = [(request, primary_idx)]
        hedged: List[Tuple[IORequest, int]] = []
        winner: Optional[Tuple[IORequest, int]] = None
        primary_settled = False
        last_error: Optional[BaseException] = None
        reason = ""

        while True:
            waits: List[Event] = [r.reply for r, _ in pending]
            waits.append(deadline)
            if hedge_timer is not None:
                waits.append(hedge_timer)
            try:
                yield AnyOf(env, waits)
            except PVFSError as err:
                last_error = err
                reason = f"failed: {err}"
            for entry in pending:
                if entry[0].reply.processed and entry[0].reply.ok:
                    # Covers the same-timestamp race where the timeout
                    # (or a loser's failure) decided the AnyOf but a
                    # real reply landed anyway.
                    winner = entry
                    break
            if winner is not None:
                break
            still: List[Tuple[IORequest, int]] = []
            for entry in pending:
                r, idx = entry
                if not r.reply.processed:
                    still.append(entry)
                    continue
                # A hard-failed attempt: its server's breaker learns
                # immediately (latency boards don't — a crash is not a
                # slowness signal).
                if isinstance(r.reply.value, BaseException):
                    last_error = r.reply.value
                if idx == primary_idx and not primary_settled:
                    primary_settled = True
                    if breaker is not None:
                        breaker.on_failure(env.now)
                elif idx != primary_idx and self.breakers is not None:
                    self.breakers.for_server(idx).on_failure(env.now)
            pending = still
            if deadline.processed:
                reason = reason or "timeout"
                break
            if not pending:
                reason = reason or "failed: every replica attempt failed"
                break
            if hedge_timer is not None and hedge_timer.processed:
                hedge_timer = None
                if dispatcher.try_hedge():
                    idx = backups[len(hedged)]
                    clone = self.pvfs.reissue(request, resume_from=checkpoint)
                    self.pvfs.submit_to(clone, servers[idx])
                    clone.reply.defuse()
                    dispatcher.board.note_submit(idx)
                    self.stats["hedges_issued"] += 1
                    hedged.append((clone, idx))
                    pending.append((clone, idx))
                    tr = env.tracer
                    if tr.enabled:
                        tr.instant(
                            env.now,
                            "hedge",
                            f"client:{self.node.name}",
                            rid=clone.rid,
                            parent=clone.parent_id,
                            server=servers[idx].node.name,
                        )
                    if len(hedged) < max_hedges:
                        hedge_timer = env.timeout(dispatcher.hedge_delay())

        # Single exit: settle losers, then the hedge ledger, then the
        # primary's breaker and the latency board.  First release the
        # attempt's dead timers — a still-pending deadline or hedge
        # timer only feeds decided AnyOf checks now, so the scheduler
        # may sweep them early (lazy deletion) instead of keeping them
        # queued until their timestamps.
        deadline.abandon()
        if hedge_timer is not None:
            hedge_timer.abandon()
        for r, idx in pending:
            if winner is not None and r is winner[0]:
                continue
            servers[idx].cancel(r.rid)
        # Every submission of this attempt — primary plus hedges, won,
        # lost, or timed out — leaves the in-flight ledger exactly once.
        for _, idx in [(request, primary_idx)] + hedged:
            dispatcher.board.note_settle(idx)
        for r, idx in hedged:
            if winner is not None and r is winner[0]:
                self.stats["hedges_won"] += 1
            else:
                self.stats["hedges_wasted"] += 1
        if winner is not None:
            win_req, win_idx = winner
            dispatcher.observe(win_idx, env.now - win_req.submitted_at)
            if win_req is request:
                if breaker is not None:
                    breaker.on_success(env.now)
            else:
                dispatcher.observe(primary_idx, env.now - issued_at)
            win_reply: IOReply = win_req.reply.value
            return win_reply, "", None
        if reason == "timeout":
            dispatcher.observe(primary_idx, env.now - issued_at)
        if not primary_settled and breaker is not None:
            breaker.on_failure(env.now)
        return None, reason, last_error

    def _breaker_for(self, request: IORequest) -> Optional[CircuitBreaker]:
        if self.breakers is None:
            return None
        return self.breakers.for_server(self.pvfs.server_for(request).server_index)

    def _demoted_locally(
        self, request: IORequest, checkpoint: Optional[KernelCheckpoint]
    ) -> IOReply:
        """Synthesize a demoted reply without touching the server."""
        done = checkpoint.bytes_done if checkpoint is not None else 0
        tr = self.env.tracer
        if tr.enabled:
            tr.instant(
                self.env.now,
                "breaker-demote",
                f"client:{self.node.name}",
                rid=request.rid,
                server=self.pvfs.server_for(request).node.name,
            )
        return IOReply(
            rid=request.rid,
            completed=False,
            checkpoint=checkpoint,
            fh=request.fh,
            offset=request.offset + done,
            remaining=request.size - done,
            extents=request.extents,
            bytes_done=done,
            bytes_streamed=0.0,
            demoted=True,
            served_active=False,
            finished_at=self.env.now,
        )

    def _log_retry(self, request: IORequest, attempt: int, reason: str) -> None:
        tr = self.env.tracer
        if tr.enabled:
            tr.instant(
                self.env.now,
                "retry",
                f"client:{self.node.name}",
                rid=request.rid,
                parent=request.parent_id,
                attempt=attempt,
                reason=reason,
            )
        self.retry_log.append(
            {
                "time": self.env.now,
                "rid": request.rid,
                "parent": request.parent_id,
                "attempt": attempt,
                "reason": reason,
            }
        )

    # -- demotion completion (paper: "manage the rest of the processing") ----------
    def _finish_demoted(
        self,
        kernel: Kernel,
        reply: IOReply,
        operation: str,
        meta: Optional[Dict[str, Any]],
        retry: Optional[RetryPolicy] = None,
    ) -> Generator[Event, Any, Tuple[Any, int, int]]:
        """Normal-read the remaining data and run the client-side PK.

        Returns ``(partial_result, bytes_read, bytes_computed)``.
        """
        checkpoint: Optional[KernelCheckpoint] = reply.checkpoint
        done = reply.bytes_done
        remaining = int(reply.remaining)
        # The unprocessed data is the tail of the request's extent
        # stream — for striped requests that tail spans several file
        # pieces; each is read with its own normal I/O.
        pieces = slice_extents(reply.extents, done, remaining)

        for file_offset, nbytes in pieces:
            yield from self.read(reply.fh, offset=file_offset, size=nbytes,
                                 retry=retry)

        # Client-side compute at C_{C,op} on this node's cores.
        if remaining > 0:
            yield from self.node.cpu.compute(
                float(remaining),
                kernel.rate * self.client_speed_factor,
            )

        partial = None
        if self.execute_kernels:
            file = self.pvfs.mds.lookup(reply.fh.name)
            state = (
                kernel.resume(checkpoint)
                if checkpoint is not None and checkpoint.records
                else kernel.init_state(self._meta_for(reply.fh, meta))
            )
            if remaining > 0:
                data = read_extent_stream(file, reply.extents, done, remaining,
                                          dtype=kernel.dtype)
                kernel.process_chunk(state, data)
            partial = kernel.finalize(state)
        return partial, int(remaining), int(remaining)

    def _combine(self, kernel: Kernel, partials: List[Any]) -> Any:
        if not self.execute_kernels:
            return None
        real = [p for p in partials if p is not None]
        if not real:
            return None
        if len(real) == 1:
            return real[0]
        return kernel.combine(real)

    @staticmethod
    def _meta_for(
        fh: FileHandle, meta: Optional[Dict[str, Any]]
    ) -> Optional[Dict[str, Any]]:
        merged: Dict[str, Any] = dict(fh.meta_dict)
        merged.update(meta or {})
        return merged or None
