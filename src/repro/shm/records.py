"""Binary codec for the paper's (name, type, value) variable records.

The format is deliberately simple and self-describing so a kernel
checkpoint written on a storage node can be decoded by the client-side
PK deployment of a different process:

.. code-block:: text

    u32 record_count
    repeat:
        u16 name_len      | name bytes (utf-8)
        u16 type_len      | type bytes (utf-8)
        u64 payload_len   | payload bytes

Payload encodings by type tag:

- ``int``/``bool`` — 8-byte little-endian signed
- ``float``       — 8-byte IEEE double
- ``str``         — utf-8
- ``bytes``       — raw
- ``ndarray:<dtype>`` — u32 ndim, u64 shape…, raw C-order buffer
- ``scalar:<dtype>``  — the dtype's buffer
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.kernels.base import KernelState


@dataclass(frozen=True)
class VariableRecord:
    """One (variable name, variable type, value) triple."""

    name: str
    type_tag: str
    value: Any


class RecordCodecError(Exception):
    """Raised on malformed record buffers."""


def _encode_payload(tag: str, value: Any) -> bytes:
    if tag in ("int", "bool"):
        return struct.pack("<q", int(value))
    if tag == "float":
        return struct.pack("<d", float(value))
    if tag == "str":
        return str(value).encode("utf-8")
    if tag == "bytes":
        return bytes(value)
    if tag.startswith("ndarray:"):
        arr = np.ascontiguousarray(value)
        header = struct.pack("<I", arr.ndim) + b"".join(
            struct.pack("<Q", dim) for dim in arr.shape
        )
        return header + arr.tobytes()
    if tag.startswith("scalar:"):
        return np.asarray(value).tobytes()
    if tag == "list":
        # Lists of scalars: encode as a float64 ndarray for simplicity.
        arr = np.asarray(value, dtype=np.float64)
        return _encode_payload(f"ndarray:{arr.dtype}", arr)
    raise RecordCodecError(f"unsupported type tag {tag!r}")


def _decode_payload(tag: str, payload: bytes) -> Any:
    if tag == "int":
        return struct.unpack("<q", payload)[0]
    if tag == "bool":
        return bool(struct.unpack("<q", payload)[0])
    if tag == "float":
        return struct.unpack("<d", payload)[0]
    if tag == "str":
        return payload.decode("utf-8")
    if tag == "bytes":
        return payload
    if tag.startswith("ndarray:") or tag == "list":
        dtype = np.dtype(tag.split(":", 1)[1]) if ":" in tag else np.dtype(np.float64)
        (ndim,) = struct.unpack_from("<I", payload, 0)
        offset = 4
        shape = []
        for _ in range(ndim):
            (dim,) = struct.unpack_from("<Q", payload, offset)
            shape.append(dim)
            offset += 8
        arr = np.frombuffer(payload, dtype=dtype, offset=offset).reshape(shape)
        return arr.copy()
    if tag.startswith("scalar:"):
        dtype = np.dtype(tag.split(":", 1)[1])
        return np.frombuffer(payload, dtype=dtype)[0]
    raise RecordCodecError(f"unsupported type tag {tag!r}")


def _type_tag(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, bytes):
        return "bytes"
    if isinstance(value, np.ndarray):
        return f"ndarray:{value.dtype}"
    if isinstance(value, np.generic):
        return f"scalar:{value.dtype}"
    if isinstance(value, list):
        return "list"
    raise RecordCodecError(f"cannot serialise value of type {type(value).__name__}")


def records_from_state(state: KernelState) -> List[VariableRecord]:
    """Turn a live kernel state into variable records."""
    return [VariableRecord(name, _type_tag(v), v) for name, v in state.items()]


def state_from_records(records: Sequence[VariableRecord]) -> KernelState:
    """Rebuild a kernel state from decoded records."""
    state = KernelState()
    for rec in records:
        value = rec.value
        if isinstance(value, np.ndarray):
            value = value.copy()
        state[rec.name] = value
    return state


def encode_records(records: Sequence[VariableRecord]) -> bytes:
    """Serialise records to the wire format."""
    out = [struct.pack("<I", len(records))]
    for rec in records:
        name_b = rec.name.encode("utf-8")
        type_b = rec.type_tag.encode("utf-8")
        payload = _encode_payload(rec.type_tag, rec.value)
        out.append(struct.pack("<H", len(name_b)))
        out.append(name_b)
        out.append(struct.pack("<H", len(type_b)))
        out.append(type_b)
        out.append(struct.pack("<Q", len(payload)))
        out.append(payload)
    return b"".join(out)


def decode_records(buffer: bytes) -> List[VariableRecord]:
    """Parse the wire format back into records."""
    if len(buffer) < 4:
        raise RecordCodecError("buffer too short for record count")
    (count,) = struct.unpack_from("<I", buffer, 0)
    offset = 4
    records: List[VariableRecord] = []
    for _ in range(count):
        try:
            (name_len,) = struct.unpack_from("<H", buffer, offset)
            offset += 2
            name = buffer[offset : offset + name_len].decode("utf-8")
            offset += name_len
            (type_len,) = struct.unpack_from("<H", buffer, offset)
            offset += 2
            tag = buffer[offset : offset + type_len].decode("utf-8")
            offset += type_len
            (payload_len,) = struct.unpack_from("<Q", buffer, offset)
            offset += 8
            payload = buffer[offset : offset + payload_len]
            if len(payload) != payload_len:
                raise RecordCodecError("truncated payload")
            offset += payload_len
        except struct.error as exc:
            raise RecordCodecError(f"malformed record buffer: {exc}") from exc
        records.append(VariableRecord(name, tag, _decode_payload(tag, payload)))
    return records
