"""Shared-memory IPC emulation between the Active I/O Runtime and PKs.

Paper Sec. III-E: "the PKs component in our design communicates with
the R through shared memory ... When a kernel receives a terminating
signal from the R, it will write the shared memory with its status,
including the values of all variables in the form (variable name,
variable type, value), and then send a signal indicating the kernel's
termination to the R."

Only the protocol matters for behaviour, not the transport, so the
"shared memory" here is (a) a byte-accurate record codec
(:mod:`repro.shm.records`) and (b) a duplex in-simulation channel
(:mod:`repro.shm.channel`) carrying those records plus the terminate/
terminated signals.
"""

from repro.shm.records import (
    VariableRecord,
    decode_records,
    encode_records,
    records_from_state,
    state_from_records,
)
from repro.shm.channel import Channel, Signal, SharedRegion

__all__ = [
    "Channel",
    "SharedRegion",
    "Signal",
    "VariableRecord",
    "decode_records",
    "encode_records",
    "records_from_state",
    "state_from_records",
]
