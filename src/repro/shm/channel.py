"""In-simulation shared-memory channel between Runtime and kernels.

``SharedRegion`` is the byte region itself (a bounded scratch buffer
with the record codec on top); ``Channel`` is the duplex signal path:
the Runtime sends :data:`Signal.TERMINATE`, the kernel writes its
status records into the region and answers :data:`Signal.TERMINATED`.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, List, Optional

from repro.sim.engine import Environment
from repro.sim.store import Store
from repro.shm.records import (
    VariableRecord,
    decode_records,
    encode_records,
)


class Signal(enum.Enum):
    """Control signals exchanged over a :class:`Channel`."""

    TERMINATE = "terminate"
    TERMINATED = "terminated"
    RESULT_READY = "result_ready"


class SharedRegion:
    """A bounded byte region both endpoints can read and write.

    Writes exceeding ``capacity`` raise, mirroring a fixed-size shm
    segment.  Contents are the encoded variable records of the paper's
    checkpoint protocol.
    """

    def __init__(self, capacity: int = 64 * 1024 * 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._buffer: bytes = b""

    @property
    def used(self) -> int:
        """Bytes currently stored."""
        return len(self._buffer)

    def write_records(self, records: List[VariableRecord]) -> int:
        """Encode and store ``records``; returns bytes written."""
        encoded = encode_records(records)
        if len(encoded) > self.capacity:
            raise MemoryError(
                f"records need {len(encoded)} bytes, region holds {self.capacity}"
            )
        self._buffer = encoded
        return len(encoded)

    def read_records(self) -> List[VariableRecord]:
        """Decode the stored records (empty list if never written)."""
        if not self._buffer:
            return []
        return decode_records(self._buffer)

    def clear(self) -> None:
        """Reset the region."""
        self._buffer = b""


class Channel:
    """Duplex signal channel + shared region between two processes.

    One side is conventionally the Active I/O Runtime, the other a
    running processing kernel.  Each direction is a FIFO
    :class:`~repro.sim.store.Store` of ``(signal, payload)`` tuples.
    """

    def __init__(self, env: Environment, region_capacity: int = 64 * 1024 * 1024) -> None:
        self.env = env
        self.region = SharedRegion(region_capacity)
        self._to_kernel: Store = Store(env)
        self._to_runtime: Store = Store(env)

    # -- runtime side -------------------------------------------------------
    def send_to_kernel(self, signal: Signal, payload: Any = None):
        """(Runtime) push a signal toward the kernel; returns the put event."""
        return self._to_kernel.put((signal, payload))

    def recv_from_kernel(self):
        """(Runtime) get event for the kernel's next signal."""
        return self._to_runtime.get()

    # -- kernel side ---------------------------------------------------------
    def send_to_runtime(self, signal: Signal, payload: Any = None):
        """(Kernel) push a signal toward the runtime; returns the put event."""
        return self._to_runtime.put((signal, payload))

    def recv_from_runtime(self):
        """(Kernel) get event for the runtime's next signal."""
        return self._to_kernel.get()

    def pending_for_kernel(self) -> int:
        """Signals queued toward the kernel (poll without blocking)."""
        return len(self._to_kernel)

    def terminate_handshake(self) -> Generator:
        """(Runtime) full terminate round-trip as a sub-process.

        Sends TERMINATE, waits for TERMINATED, returns the kernel's
        checkpoint records read from the shared region.
        """
        yield self.send_to_kernel(Signal.TERMINATE)
        signal, _payload = yield self.recv_from_kernel()
        if signal is not Signal.TERMINATED:
            raise RuntimeError(f"expected TERMINATED, kernel sent {signal}")
        return self.region.read_records()
