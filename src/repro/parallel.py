"""Parallel sweep execution (``repro.parallel``).

Every figure and table of the paper's evaluation is a *sweep*: dozens
of independent (scheme, workload) simulations whose results are then
merged into a series.  Each point is a self-contained simulation —
its own :class:`~repro.sim.engine.Environment`, cluster and RNGs — so
points can run in any order, in any process, and merge back
deterministically.

:class:`SweepRunner` fans the points across a
``concurrent.futures.ProcessPoolExecutor``:

- **Deterministic ordering** — results are returned in point order
  regardless of completion order, so a ``jobs=4`` sweep is
  byte-identical to the serial one once serialised.
- **Caching** — give the runner a :class:`~repro.cache.ResultCache`
  and already-computed points are loaded instead of re-simulated.
- **Graceful fallback** — ``jobs=1`` never touches multiprocessing,
  and a pool that cannot start (restricted sandbox, missing
  semaphores) degrades to in-process execution with a log line
  instead of an error.

.. code-block:: python

    from repro.parallel import SweepPoint, SweepRunner
    from repro.cache import ResultCache
    from repro.core import Scheme, WorkloadSpec

    points = [SweepPoint(s, WorkloadSpec(n_requests=n))
              for s in Scheme for n in (1, 4, 16)]
    runner = SweepRunner(jobs=4, cache=ResultCache(".sweep-cache"))
    results = runner.run(points)   # aligned with `points`
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from repro.core.planrun import PlanResult, run_plan
from repro.core.schemes import Scheme, SchemeResult, WorkloadSpec, run_scheme
from repro.workload.generator import RequestPlan

from repro.cache import ResultCache

__all__ = ["SweepPoint", "SweepRunner", "run_point"]

SweepResult = Union[SchemeResult, PlanResult]
ProgressFn = Callable[[int, int, "SweepPoint", bool], None]
LogFn = Callable[[str], None]


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation of a sweep.

    A point either runs :func:`~repro.core.run_scheme` (``plan is
    None``) or :func:`~repro.core.run_plan` (``plan`` set; ``spec``
    then supplies the machine knobs).
    """

    scheme: Scheme
    spec: WorkloadSpec = field(default_factory=WorkloadSpec)
    plan: Optional[RequestPlan] = None
    #: Free-form tag carried through to progress callbacks (e.g.
    #: ``"gaussian2d/8x256MB"``); not part of the cache key.
    label: str = ""

    def describe(self) -> str:
        """Short human-readable id for progress lines."""
        if self.label:
            return f"{self.scheme.value}:{self.label}"
        if self.plan is not None:
            return f"{self.scheme.value}:plan[{len(self.plan)}]"
        mb = self.spec.request_bytes // (1024 * 1024)
        return f"{self.scheme.value}:{self.spec.kernel}/{self.spec.n_requests}x{mb}MB"


def run_point(point: SweepPoint) -> SweepResult:
    """Execute one point in this process.

    Module-level (not a method) so the process pool can pickle it.
    """
    if point.plan is None:
        return run_scheme(point.scheme, point.spec)
    return run_plan(point.scheme, point.plan, point.spec)


class SweepRunner:
    """Runs sweep points, optionally in parallel and through a cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) stays in-process.
    cache:
        Optional :class:`~repro.cache.ResultCache`; hits skip the
        simulation entirely and fresh results are stored back.
    progress:
        ``progress(done, total, point, cached)`` called after every
        resolved point (from the parent process, never a worker).
    log:
        Sink for one-line notices (pool fallback, cache stats);
        defaults to stderr.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional["ResultCache"] = None,
        progress: Optional[ProgressFn] = None,
        log: Optional[LogFn] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.log = log

    # -- internals ----------------------------------------------------------
    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(message)
        else:
            print(f"[sweep] {message}", file=sys.stderr)

    def _tick(self, done: int, total: int, point: SweepPoint, cached: bool) -> None:
        if self.progress is not None:
            self.progress(done, total, point, cached)

    # -- execution ----------------------------------------------------------
    def run(self, points: Sequence[SweepPoint]) -> List[SweepResult]:
        """Resolve every point; results align index-for-index.

        The merged output is independent of ``jobs``: each point is a
        sealed simulation, and results slot into their input position
        whatever order workers finish in.
        """
        points = list(points)
        total = len(points)
        results: List[Optional[SweepResult]] = [None] * total

        def tick(point: SweepPoint, cached: bool) -> None:
            self._tick(sum(1 for r in results if r is not None),
                       total, point, cached)

        # Pass 1 — cache lookups.
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * total
        for i, point in enumerate(points):
            if self.cache is not None:
                keys[i] = self.cache.key(point.scheme, point.spec, point.plan)
                hit = self.cache.get(keys[i])
                if hit is not None:
                    results[i] = hit
                    tick(point, True)
                    continue
            pending.append(i)

        # Pass 2 — execute the misses.
        if pending:
            ran_in_pool = False
            if self.jobs > 1 and len(pending) > 1:
                ran_in_pool = self._run_pool(points, pending, results, keys, tick)
            if not ran_in_pool:
                for i in pending:
                    if results[i] is not None:
                        continue  # filled before a pool later broke
                    results[i] = self._finish(points[i], keys[i],
                                              run_point(points[i]))
                    tick(points[i], False)

        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _finish(
        self, point: SweepPoint, key: Optional[str], result: SweepResult
    ) -> SweepResult:
        if self.cache is not None and key is not None:
            self.cache.put(key, result)
        return result

    def _run_pool(
        self,
        points: Sequence[SweepPoint],
        pending: List[int],
        results: List[Optional[SweepResult]],
        keys: List[Optional[str]],
        tick: Callable[[SweepPoint, bool], None],
    ) -> bool:
        """Fan ``pending`` across a process pool.

        Returns False (after logging) when the pool itself cannot run —
        the caller then falls back to in-process execution.  Exceptions
        raised *by a point's simulation* propagate unchanged.
        """
        try:
            from concurrent.futures import ProcessPoolExecutor, as_completed
            from concurrent.futures.process import BrokenProcessPool
        except ImportError as exc:  # pragma: no cover - stdlib always has it
            self._say(f"process pool unavailable ({exc}); running in-process")
            return False

        workers = min(self.jobs, len(pending))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(run_point, points[i]): i for i in pending}
                for future in as_completed(futures):
                    i = futures[future]
                    results[i] = self._finish(points[i], keys[i], future.result())
                    tick(points[i], False)
        except BrokenProcessPool as exc:
            self._say(
                f"process pool broke ({exc}); finishing remaining points "
                "in-process"
            )
            return False
        except (OSError, PermissionError) as exc:
            self._say(
                f"cannot start process pool ({exc}); running in-process"
            )
            return False
        return True
