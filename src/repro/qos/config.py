"""Overload-protection configuration.

One frozen knob object describes every QoS mechanism this package
offers; ``repro.core.schemes.run_scheme`` threads it through the stack
(admission controllers on servers, breakers/budgets/pacing on
clients).  ``None`` on any knob disables that mechanism, so
``QoSConfig()`` with no arguments is a sane, conservative default and
a fully disabled configuration is simply not passing a config at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class QoSConfig:
    """Knobs for the overload-protection stack.

    Attributes
    ----------
    max_queue_depth:
        Bound on each I/O server's outstanding table.  At the bound,
        active arrivals are shed to client-side execution and normal
        reads are refused with ``ServerOverloaded`` (after queued
        active work has been demoted to make room — the DOSAS shedding
        order).  ``None`` leaves intake unbounded.
    shed_active_first:
        When True (default), an active request hitting a full queue is
        demoted (reply ``completed=0``) instead of rejected, mirroring
        the paper's demotion path; False rejects it like a normal read.
    intake_rate / intake_burst:
        AdapTBF-style token-bucket policing of each server's intake, in
        bytes per simulated second / burst bytes.  A request whose size
        cannot be covered is shed (active) or rejected (normal).
        ``None`` disables policing.
    pace_rate / pace_burst:
        Client-side pacing of submissions over the link, bytes per
        second / burst bytes.  Unlike intake policing this never drops:
        the client waits for tokens before submitting.
    breaker_threshold:
        Consecutive per-server failures (crash, timeout, overload) that
        trip a client's circuit breaker from closed to open.
    breaker_cooldown:
        Seconds an open breaker waits before letting one half-open
        probe request through.
    retry_budget:
        Global pool of retry tokens shared by every client in a run; a
        re-issue that finds the pool empty gives up immediately
        (``RetryExhausted``) instead of joining a retry storm.
        ``None`` leaves retries bounded only by the per-piece policy.
    retry_replenish_rate:
        Retry tokens returned to the pool per simulated second (never
        past the pool's initial size), turning the budget into a bound
        on *sustained* retry volume — without it one storm permanently
        exhausts the pool and all later recovery in a long soak fails
        fast.  ``None`` (default) keeps the historical fixed pool.
    deadline:
        Relative per-request deadline in simulated seconds.  Requests
        carry ``now + deadline`` absolute; servers cancel expired work
        and answer with ``DeadlineExceeded``.  ``None`` disables it.
    tenant_borrow:
        When the workload carries :class:`repro.qos.tenancy.TenantSpec`
        tenants, True (default) arms decentralized token borrowing at
        every server — an idle tenant's unused tokens are lent to busy
        tenants, with bounded deterministic reclaim.  False keeps the
        static partition (each tenant strictly inside its own
        guarantee), the work-conservation baseline.
    tenant_lend_reserve:
        Fraction of its bucket capacity a lender always keeps for
        itself (default 0.5), so lending never strips a tenant of its
        whole burst.
    tenant_reclaim_fraction:
        Fraction of a borrower's refill redirected to repaying its
        debt at each settlement (default 0.5) — bounds how hard reclaim
        can stall the borrower.
    """

    max_queue_depth: Optional[int] = 16
    shed_active_first: bool = True
    intake_rate: Optional[float] = None
    intake_burst: Optional[float] = None
    pace_rate: Optional[float] = None
    pace_burst: Optional[float] = None
    breaker_threshold: int = 3
    breaker_cooldown: float = 1.0
    retry_budget: Optional[int] = 64
    retry_replenish_rate: Optional[float] = None
    deadline: Optional[float] = None
    tenant_borrow: bool = True
    tenant_lend_reserve: float = 0.5
    tenant_reclaim_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        for name in ("intake_rate", "pace_rate"):
            value: Optional[float] = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("intake_burst", "pace_burst"):
            burst: Optional[float] = getattr(self, name)
            if burst is not None and burst <= 0:
                raise ValueError(f"{name} must be positive")
        if self.intake_burst is not None and self.intake_rate is None:
            raise ValueError("intake_burst needs intake_rate")
        if self.pace_burst is not None and self.pace_rate is None:
            raise ValueError("pace_burst needs pace_rate")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be positive")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        if self.retry_replenish_rate is not None and self.retry_replenish_rate <= 0:
            raise ValueError("retry_replenish_rate must be positive")
        if self.retry_replenish_rate is not None and self.retry_budget is None:
            # Same discipline as the burst/rate pairs: a dependent knob
            # set without its base must raise, never silently no-op.
            raise ValueError("retry_replenish_rate needs retry_budget")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if not 0.0 <= self.tenant_lend_reserve <= 1.0:
            raise ValueError("tenant_lend_reserve must lie in [0, 1]")
        if not 0.0 <= self.tenant_reclaim_fraction <= 1.0:
            raise ValueError("tenant_reclaim_fraction must lie in [0, 1]")
