"""Per-server circuit breakers for the Active Storage Client.

A breaker watches one client→server path.  Consecutive failures
(crash, timeout, overload rejection) trip it open; while open the
client routes around the node — active work is demoted to local
compute immediately instead of hammering a sick server.  After a
cooldown the breaker goes half-open and admits exactly one probe
request; the probe's outcome closes the breaker or re-opens it for
another cooldown.

Time comes in through method arguments (simulated seconds), never from
a wall clock, so breaker behaviour is exactly reproducible.
"""

from __future__ import annotations

import enum
from typing import Dict


class BreakerState(enum.Enum):
    """The classic three-state breaker machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """One client→server path's breaker."""

    __slots__ = ("threshold", "cooldown", "state", "failures", "trips",
                 "_opened_at", "_probe_in_flight")

    def __init__(self, threshold: int = 3, cooldown: float = 1.0) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = BreakerState.CLOSED
        #: Consecutive failures while closed.
        self.failures = 0
        #: Times the breaker transitioned closed/half-open → open.
        self.trips = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    def allow(self, now: float) -> bool:
        """May the client send a request at ``now``?

        Open breakers start admitting again after the cooldown, but
        only one probe at a time: the first ``allow`` moves to
        half-open and grants the probe; further calls are refused until
        :meth:`on_success` / :meth:`on_failure` settles it.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self._opened_at >= self.cooldown:
                self.state = BreakerState.HALF_OPEN
                self._probe_in_flight = True
                return True
            return False
        # HALF_OPEN: one probe in flight at a time.
        if not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def blocked(self, now: float) -> bool:
        """Is this path routed around at ``now``?  Read-only.

        Unlike :meth:`allow`, this never grants a half-open probe (no
        state change), so candidate-set filtering in the straggler
        dispatcher can consult every breaker without consuming probe
        slots.  A cooled-down open breaker reads as *not* blocked —
        the path is eligible again and the actual :meth:`allow` call
        at submit time arbitrates the probe.
        """
        return (
            self.state is BreakerState.OPEN
            and now - self._opened_at < self.cooldown
        )

    def on_success(self, now: float) -> None:
        """A request on this path completed — close and reset."""
        self.state = BreakerState.CLOSED
        self.failures = 0
        self._probe_in_flight = False

    def on_failure(self, now: float) -> None:
        """A request on this path crashed, timed out, or was rejected."""
        if self.state is BreakerState.HALF_OPEN:
            self._trip(now)
        elif self.state is BreakerState.CLOSED:
            self.failures += 1
            if self.failures >= self.threshold:
                self._trip(now)
        # OPEN: a straggling failure from before the trip — nothing new.

    def _trip(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.trips += 1
        self.failures = 0
        self._opened_at = now
        self._probe_in_flight = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CircuitBreaker {self.state.value} failures={self.failures}>"


class BreakerBoard:
    """One client's set of per-server breakers, created on demand."""

    __slots__ = ("threshold", "cooldown", "breakers")

    def __init__(self, threshold: int = 3, cooldown: float = 1.0) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.breakers: Dict[int, CircuitBreaker] = {}

    def for_server(self, index: int) -> CircuitBreaker:
        """The breaker guarding server ``index`` (created on first use)."""
        breaker = self.breakers.get(index)
        if breaker is None:
            breaker = self.breakers[index] = CircuitBreaker(
                threshold=self.threshold, cooldown=self.cooldown
            )
        return breaker

    def trips(self) -> int:
        """Total trips across every path."""
        return sum(b.trips for b in self.breakers.values())
