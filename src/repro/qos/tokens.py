"""Deterministic token bucket driven by simulated time.

The bucket holds no clock of its own: every operation takes ``now``
explicitly and refills lazily from the elapsed simulated time, so the
bucket is exactly reproducible given the same call sequence — the
AdapTBF-style primitive behind both server intake policing and
client-side pacing.
"""

from __future__ import annotations

from typing import Optional


class TokenBucket:
    """A lazily refilled token bucket.

    Parameters
    ----------
    rate:
        Tokens added per simulated second.
    capacity:
        Maximum stored tokens (defaults to one second of refill).
    start:
        Simulated time of construction (refill baseline).
    """

    __slots__ = ("rate", "capacity", "_tokens", "_last")

    def __init__(
        self, rate: float, capacity: Optional[float] = None, start: float = 0.0
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else float(rate)
        self._tokens = self.capacity
        self._last = float(start)

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._last = max(self._last, now)

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (may be negative under debt)."""
        self._refill(now)
        return self._tokens

    def try_consume(self, amount: float, now: float) -> bool:
        """Take ``amount`` tokens if covered; False leaves the bucket alone.

        A request larger than the whole capacity could never be covered,
        so it is allowed whenever the bucket is full — it then drives
        the balance negative and later arrivals pay the debt.  Without
        this, policing would starve oversized requests forever.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._refill(now)
        if amount <= self._tokens or (
            amount > self.capacity and self._tokens >= self.capacity
        ):
            self._tokens -= amount
            return True
        return False

    def reserve(self, amount: float, now: float) -> float:
        """Consume ``amount`` unconditionally; return the pacing delay.

        The bucket may go negative (tokens are borrowed from the
        future); the return value is how long the caller must wait for
        the balance to recover to zero — the shaping discipline, where
        nothing is dropped but everything is slowed to the rate.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._refill(now)
        self._tokens -= amount
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TokenBucket rate={self.rate} capacity={self.capacity} "
            f"tokens={self._tokens:.1f}>"
        )
