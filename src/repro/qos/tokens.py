"""Deterministic token bucket driven by simulated time.

The bucket holds no clock of its own: every operation takes ``now``
explicitly and refills lazily from the elapsed simulated time, so the
bucket is exactly reproducible given the same call sequence — the
AdapTBF-style primitive behind both server intake policing and
client-side pacing.
"""

from __future__ import annotations

from typing import Optional


class TokenBucket:
    """A lazily refilled token bucket.

    Parameters
    ----------
    rate:
        Tokens added per simulated second.
    capacity:
        Maximum stored tokens (defaults to one second of refill).
    start:
        Simulated time of construction (refill baseline).
    """

    __slots__ = ("rate", "capacity", "_tokens", "_last")

    def __init__(
        self, rate: float, capacity: Optional[float] = None, start: float = 0.0
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else float(rate)
        self._tokens = self.capacity
        self._last = float(start)

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._last = max(self._last, now)

    def _projected(self, now: float) -> float:
        """The balance ``_refill(now)`` would produce, without mutating.

        Probes must be side-effect-free: advancing ``_last`` on every
        read would split one refill interval into float-rounded pieces,
        so the *frequency* of probes could flip a later ``try_consume``
        in the last ulp — a byte-determinism hazard once borrowing
        peers poll each other's buckets.
        """
        elapsed = now - self._last
        if elapsed <= 0:
            return self._tokens
        return min(self.capacity, self._tokens + elapsed * self.rate)

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (may be negative under debt).

        A pure read: the bucket's stored state is untouched, so any
        number of interleaved probes leaves later consume decisions
        bit-for-bit identical.
        """
        return self._projected(now)

    def would_admit(self, amount: float, now: float) -> bool:
        """Side-effect-free preview of :meth:`try_consume`'s verdict.

        Exactly the same predicate (including the oversize rule) over
        the projected balance, so callers can compose several buckets
        — probe all, then commit — without burning tokens on a branch
        that another bucket vetoes.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        tokens = self._projected(now)
        return amount <= tokens or (amount > self.capacity and tokens >= self.capacity)

    def try_consume(self, amount: float, now: float) -> bool:
        """Take ``amount`` tokens if covered; False leaves the bucket alone.

        A request larger than the whole capacity could never be covered,
        so it is allowed whenever the bucket is full — it then drives
        the balance negative and later arrivals pay the debt.  Without
        this, policing would starve oversized requests forever.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._refill(now)
        if amount <= self._tokens or (
            amount > self.capacity and self._tokens >= self.capacity
        ):
            self._tokens -= amount
            return True
        return False

    def drain(self, amount: float, now: float) -> float:
        """Withdraw up to ``amount`` of the *positive* balance.

        The lending primitive: a peer bucket gives away only tokens it
        actually holds (never going negative), and the caller learns
        exactly how much it got.  Returns the withdrawn amount.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._refill(now)
        taken = max(0.0, min(amount, self._tokens))
        self._tokens -= taken
        return taken

    def credit(self, amount: float, now: float) -> float:
        """Deposit up to ``amount`` tokens, clamped at capacity.

        The repayment primitive: a lender absorbs returned tokens only
        up to its headroom, and the caller's debt ledger shrinks by the
        returned (accepted) amount — so borrowed == reclaimed +
        outstanding stays exact instead of silently overflowing.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._refill(now)
        accepted = max(0.0, min(amount, self.capacity - self._tokens))
        self._tokens += accepted
        return accepted

    def reserve(self, amount: float, now: float) -> float:
        """Consume ``amount`` unconditionally; return the pacing delay.

        The bucket may go negative (tokens are borrowed from the
        future); the return value is how long the caller must wait for
        the balance to recover to zero — the shaping discipline, where
        nothing is dropped but everything is slowed to the rate.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._refill(now)
        self._tokens -= amount
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TokenBucket rate={self.rate} capacity={self.capacity} "
            f"tokens={self._tokens:.1f}>"
        )
