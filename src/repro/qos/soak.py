"""The chaos-soak harness: overload + random faults, invariants asserted.

``run_soak`` drives the full stack through an *overload* scenario
(more concurrent active I/Os than storage cores) under a seeded random
fault schedule that always contains at least one crash, once per seed,
for both DOSAS and plain AS.  Each run is checked against conservation
invariants derived from the per-server metric snapshots:

- every request the server accepted is accounted for exactly once:
  ``received == completed + cancelled + failed_crash + deadline_expired``
  with an empty outstanding table at the end;
- every logical client operation finished (no watchdog timeout, one
  completion time per request).

The report is plain data with a deterministic JSON rendering — the
same seed produces a byte-identical report, which the CI smoke job and
the determinism test both pin.

This module imports ``repro.core`` and therefore is *not* re-exported
from ``repro.qos`` (whose other modules must stay import-cycle-free);
reach it as ``repro.qos.soak``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.config import MB
from repro.core.asc import RetryPolicy
from repro.core.schemes import Scheme, SchemeResult, WorkloadSpec, run_scheme
from repro.faults.injector import WatchdogTimeout
from repro.faults.schedule import FaultSchedule, chaos, with_guaranteed_crash
from repro.pvfs.client import reset_parent_ids
from repro.pvfs.metadata import PVFSError
from repro.pvfs.requests import reset_request_ids
from repro.qos.config import QoSConfig
from repro.qos.tenancy import TenantSpec


@dataclass(frozen=True)
class SoakSpec:
    """One chaos-soak campaign.

    The workload defaults deliberately overload the machine: each
    storage node sees ``n_requests`` concurrent active I/Os against
    ``storage_cores`` cores, so admission control and demotion have
    real work to do even before the faults land.
    """

    scenario: str = "chaos"
    seeds: Tuple[int, ...] = (0, 1, 2)
    kernel: str = "gaussian2d"
    n_requests: int = 10
    request_bytes: int = 32 * MB
    n_storage: int = 2
    storage_cores: int = 2
    #: Arm the overload-protection stack (admission, breakers, budget).
    protected: bool = True
    #: Watchdog bound on each run's virtual time.
    max_virtual_time: float = 120.0
    #: Fault density of the chaos schedule.
    n_fault_events: int = 4
    fault_span: float = 1.5
    #: Arm the straggler-aware dispatcher (and replicated layouts) on
    #: the protected DOSAS runs, so the soak exercises hedged reads
    #: against crashes and verifies hedge conservation.
    straggler: bool = True
    n_replicas: int = 2
    #: Split the workload into a two-tenant mix (gold with a rate
    #: guarantee + SLO, noisy with a small guarantee and the bulk of
    #: the demand) so the soak exercises per-tenant policing and token
    #: borrowing under faults; the ledger conservation invariants
    #: (borrowed == reclaimed + outstanding, borrowed total == lent
    #: total) are then asserted per run.
    tenants: bool = False
    #: Engine event scheduler for every run (``"calendar"``/``"heap"``,
    #: see ``repro.sim.scheduler``).  Result-identical per seed — the
    #: soak report stays byte-identical whichever is picked, which the
    #: equivalence tests pin.
    sim_scheduler: str = "calendar"

    def __post_init__(self) -> None:
        # ``scenario`` is a label: "chaos" for the native campaign, or
        # the name of a declarative scenario (repro.scenario) whose
        # fields were lowered onto this spec via ``soak_spec_kwargs``.
        if not self.scenario:
            raise ValueError("the soak campaign needs a scenario label")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.n_replicas < 1 or self.n_replicas > self.n_storage:
            raise ValueError("n_replicas must lie in [1, n_storage]")
        if self.sim_scheduler not in ("calendar", "heap"):
            raise ValueError(f"unknown sim_scheduler {self.sim_scheduler!r}")


def default_qos(spec: SoakSpec) -> QoSConfig:
    """The protection stack a soak run arms.

    The queue bound sits just above the per-node concurrency so steady
    state fits but a retry storm cannot pile up; breakers react fast
    (the chaos crash durations are sub-second); the retry budget allows
    a handful of recoveries per request and no more.
    """
    return QoSConfig(
        max_queue_depth=2 * spec.n_requests,
        breaker_threshold=3,
        breaker_cooldown=0.3,
        retry_budget=8 * spec.n_requests * spec.n_storage,
        # Tenant soaks retry through per-tenant denials on top of the
        # fault recovery, so the budget replenishes over simulated time
        # (bounding sustained retry volume instead of total volume).
        retry_replenish_rate=4.0 if spec.tenants else None,
        deadline=spec.max_virtual_time / 2,
    )


def tenant_mix(spec: SoakSpec) -> Tuple[TenantSpec, ...]:
    """The soak's default two-tenant mix (same total demand per node).

    Bursts cover two whole requests so arrivals are policed by *rate*,
    not permanently by the oversize rule; the guarantees still
    undersubscribe the NIC, so the noisy tenant's backlog needs
    borrowed gold tokens to drain quickly.
    """
    gold = max(1, spec.n_requests // 3)
    return (
        TenantSpec(
            name="gold",
            weight=2.0,
            rate=80 * MB,
            burst=2.0 * spec.request_bytes,
            slo_latency=spec.max_virtual_time / 4,
            requests=gold,
        ),
        TenantSpec(
            name="noisy",
            rate=30 * MB,
            burst=2.0 * spec.request_bytes,
            requests=spec.n_requests - gold,
        ),
    )


def protected_retry(base: RetryPolicy) -> RetryPolicy:
    """The schedule's retry policy with de-synchronizing full jitter."""
    return replace(base, full_jitter=True)


def unprotected_retry() -> RetryPolicy:
    """The retry-storm policy: aggressive, near-zero backoff, no jitter.

    This is what a naive client does under overload — every timeout
    re-issues almost immediately, so each crash multiplies the queue
    the restarted server faces.  Soak runs use it with
    ``protected=False`` to pin the degradation the QoS stack exists to
    prevent; such runs may fail outright (``RetryExhausted``), which
    the report records instead of raising.
    """
    return RetryPolicy(
        timeout=1.0, max_retries=24, backoff_base=0.05, backoff_factor=1.0,
        backoff_cap=0.05,
    )


def check_invariants(result: SchemeResult) -> List[str]:
    """Conservation violations in one run's server metrics (empty = clean)."""
    violations: List[str] = []
    if len(result.per_request_times) != result.spec.total_requests:
        violations.append(
            f"completions: {len(result.per_request_times)} request finish "
            f"times for {result.spec.total_requests} requests"
        )
    for m in result.server_metrics:
        name = m["server"]
        received = int(m.get("requests_received", 0))
        completed = int(m.get("requests_completed", 0))
        cancelled = int(m.get("requests_cancelled", 0))
        crash_failed = int(m.get("requests_failed_crash", 0))
        expired = int(m.get("deadline_expired", 0))
        outstanding = int(m.get("outstanding_final", 0))
        accounted = completed + cancelled + crash_failed + expired + outstanding
        if received != accounted:
            violations.append(
                f"{name}: conservation broken — received {received} != "
                f"completed {completed} + cancelled {cancelled} + "
                f"crash-failed {crash_failed} + expired {expired} + "
                f"outstanding {outstanding}"
            )
        if outstanding != 0:
            violations.append(
                f"{name}: {outstanding} requests still outstanding at the end"
            )
    # Hedge conservation: every issued hedge settles exactly once —
    # either its clone won the race or it was wasted work.
    if result.hedges_won + result.hedges_wasted != result.hedges_issued:
        violations.append(
            f"hedge conservation broken — issued {result.hedges_issued} != "
            f"won {result.hedges_won} + wasted {result.hedges_wasted}"
        )
    # Borrow-ledger conservation (tenant runs): every borrowed token is
    # either repaid or still owed, and lenders gave exactly what
    # borrowers took.  Tolerance is one byte — the ledger works in
    # floats and forgives sub-1e-12 residues when closing a debt.
    tenants = result.qos_stats.get("tenants")
    if tenants:
        total_borrowed = total_lent = 0.0
        for name, t in tenants["per_tenant"].items():
            ledger = t.get("ledger")
            if ledger is None:
                continue
            borrowed = ledger["borrowed_bytes"]
            reclaimed = ledger["reclaimed_bytes"]
            outstanding = ledger["debt_outstanding"]
            if abs(borrowed - (reclaimed + outstanding)) > 1.0:
                violations.append(
                    f"tenant {name}: borrow ledger broken — borrowed "
                    f"{borrowed:.0f} != reclaimed {reclaimed:.0f} + "
                    f"outstanding {outstanding:.0f}"
                )
            total_borrowed += borrowed
            total_lent += ledger["lent_bytes"]
        if abs(total_borrowed - total_lent) > 1.0:
            violations.append(
                f"borrow/lend mismatch — tenants borrowed "
                f"{total_borrowed:.0f} but peers lent {total_lent:.0f}"
            )
    return violations


@dataclass
class SoakRun:
    """One scheme's outcome under one seed."""

    scheme: str
    goodput: float
    makespan: float
    retries: int
    retry_timeouts: int
    served_active: int
    demoted: int
    qos_stats: Dict[str, Any]
    hedges_issued: int = 0
    hedges_won: int = 0
    hedges_wasted: int = 0
    violations: List[str] = field(default_factory=list)
    #: Non-empty when the run died (watchdog / RetryExhausted) — the
    #: degradation an unprotected retry storm is allowed to show.
    failed: str = ""


@dataclass
class SoakSeedResult:
    """DOSAS vs plain AS under one seed's fault schedule."""

    seed: int
    schedule: str
    n_fault_events: int
    dosas: SoakRun
    plain_as: SoakRun


@dataclass
class SoakReport:
    """The whole campaign, deterministic given the spec."""

    scenario: str
    protected: bool
    seeds: List[SoakSeedResult] = field(default_factory=list)

    def violations(self) -> List[str]:
        """Every invariant violation across all seeds and schemes."""
        out: List[str] = []
        for sr in self.seeds:
            for run in (sr.dosas, sr.plain_as):
                out.extend(
                    f"seed {sr.seed} [{run.scheme}]: {v}" for v in run.violations
                )
        return out

    def to_json(self) -> str:
        """Byte-stable rendering: same seed ⇒ identical text."""
        return json.dumps(asdict(self), sort_keys=True, indent=2)


def _schedule_for(spec: SoakSpec, seed: int) -> FaultSchedule:
    base = chaos(
        seed=seed,
        n_events=spec.n_fault_events,
        span=spec.fault_span,
        n_targets=spec.n_storage,
        horizon=spec.max_virtual_time,
    )
    # The workload must actually feel a crash: require one inside the
    # first half of the fault span or add an early one.
    return with_guaranteed_crash(
        base, at=0.1, downtime=0.4, before=spec.fault_span / 2
    )


def _run_one(
    scheme: Scheme,
    spec: SoakSpec,
    seed: int,
    schedule: FaultSchedule,
    qos: Optional[QoSConfig],
    retry: RetryPolicy,
    straggler: bool = False,
) -> SoakRun:
    workload = WorkloadSpec(
        kernel=spec.kernel,
        n_requests=spec.n_requests,
        request_bytes=spec.request_bytes,
        n_storage=spec.n_storage,
        storage_cores=spec.storage_cores,
        seed=seed,
        straggler_scheduler=straggler,
        n_replicas=spec.n_replicas if straggler else 1,
        # The mix keeps total demand per node equal to n_requests, so
        # tenant soaks stress the machine exactly as hard as flat ones.
        tenants=tenant_mix(spec) if spec.tenants else (),
    )
    # Process-global id sequences restart so two soaks of the same seed
    # serialise byte-identically (rids leak into nothing the report
    # keeps, but determinism of the runs themselves is non-negotiable).
    reset_request_ids()
    reset_parent_ids()
    violations: List[str] = []
    try:
        result = run_scheme(
            scheme,
            workload,
            fault_schedule=schedule,
            retry_policy=retry,
            max_virtual_time=spec.max_virtual_time,
            qos=qos,
            sim_scheduler=spec.sim_scheduler,
        )
    except WatchdogTimeout as err:
        # A hung run breaks the "every request finishes" invariant.
        return SoakRun(
            scheme=scheme.value,
            goodput=0.0,
            makespan=float("inf"),
            retries=0,
            retry_timeouts=0,
            served_active=0,
            demoted=0,
            qos_stats={},
            violations=[f"watchdog timeout: {err}"],
            failed=f"watchdog timeout: {err}",
        )
    except PVFSError as err:
        # The run died (typically RetryExhausted in a retry storm).
        # That is degradation evidence, not an accounting violation —
        # protected-mode tests assert ``failed == ""`` separately.
        return SoakRun(
            scheme=scheme.value,
            goodput=0.0,
            makespan=float("inf"),
            retries=0,
            retry_timeouts=0,
            served_active=0,
            demoted=0,
            qos_stats={},
            failed=f"{type(err).__name__}: {err}",
        )
    violations = check_invariants(result)
    return SoakRun(
        scheme=scheme.value,
        goodput=result.goodput,
        makespan=result.makespan,
        retries=result.retries,
        retry_timeouts=result.retry_timeouts,
        served_active=result.served_active,
        demoted=result.demoted,
        qos_stats=dict(result.qos_stats),
        hedges_issued=result.hedges_issued,
        hedges_won=result.hedges_won,
        hedges_wasted=result.hedges_wasted,
        violations=violations,
    )


def run_soak(
    spec: SoakSpec,
    schedule_for: Optional[Callable[[int], FaultSchedule]] = None,
) -> SoakReport:
    """Run the campaign: per seed, DOSAS and plain AS under one schedule.

    ``plain_as`` is always the unprotected baseline — plain AS with the
    schedule's stock retry policy and no QoS stack.  The DOSAS run arms
    the protection stack when ``spec.protected`` and otherwise uses the
    retry-storm policy, so the two report flavours pin both acceptance
    outcomes: protected DOSAS beats the plain baseline with clean
    accounting; unprotected DOSAS melts down against the same faults.

    ``schedule_for`` replaces the native per-seed chaos builder — the
    hook declarative scenarios use to soak under their own fault
    schedules (``repro.scenario.soak_schedule_factory``).
    """
    report = SoakReport(scenario=spec.scenario, protected=spec.protected)
    for seed in spec.seeds:
        schedule = (
            schedule_for(seed) if schedule_for is not None
            else _schedule_for(spec, seed)
        )
        if spec.protected:
            qos: Optional[QoSConfig] = default_qos(spec)
            retry = protected_retry(schedule.retry)
        else:
            qos = None
            retry = unprotected_retry()
        dosas = _run_one(
            Scheme.DOSAS,
            spec,
            seed,
            schedule,
            qos,
            retry,
            straggler=spec.straggler and spec.protected,
        )
        plain = _run_one(
            Scheme.AS, spec, seed, schedule, None, schedule.retry
        )
        report.seeds.append(
            SoakSeedResult(
                seed=seed,
                schedule=schedule.name,
                n_fault_events=len(schedule.events),
                dosas=dosas,
                plain_as=plain,
            )
        )
    return report
