"""A global retry budget shared by every client in a run.

Per-piece retry policies bound how often one request re-issues; the
budget bounds how much retrying the *whole system* does.  Under a mass
failure (every client's pieces timing out at once) per-piece bounds
multiply into a retry storm — the budget is the brake: once the pool
is empty, further re-issues give up immediately instead of piling more
load onto nodes that are already drowning.
"""

from __future__ import annotations

from typing import Optional


class RetryBudget:
    """A finite pool of retry tokens (``None`` ⇒ unlimited)."""

    __slots__ = ("tokens", "granted", "denied")

    def __init__(self, tokens: Optional[int]) -> None:
        if tokens is not None and tokens < 0:
            raise ValueError("tokens must be non-negative")
        self.tokens = tokens
        self.granted = 0
        self.denied = 0

    def try_acquire(self) -> bool:
        """Take one retry token; False when the pool is dry."""
        if self.tokens is not None and self.granted >= self.tokens:
            self.denied += 1
            return False
        self.granted += 1
        return True

    @property
    def remaining(self) -> Optional[int]:
        """Tokens left (None for an unlimited budget)."""
        if self.tokens is None:
            return None
        return self.tokens - self.granted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RetryBudget granted={self.granted} remaining={self.remaining}>"
