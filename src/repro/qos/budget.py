"""A global retry budget shared by every client in a run.

Per-piece retry policies bound how often one request re-issues; the
budget bounds how much retrying the *whole system* does.  Under a mass
failure (every client's pieces timing out at once) per-piece bounds
multiply into a retry storm — the budget is the brake: once the pool
is empty, further re-issues give up immediately instead of piling more
load onto nodes that are already drowning.

A budget may optionally *replenish* over simulated time
(``replenish_rate`` tokens per second, ``now``-driven exactly like
:class:`repro.qos.tokens.TokenBucket`, so it is deterministic given the
call sequence).  Without replenishment a single storm permanently
exhausts the pool and every later recovery in a long soak or
service-mode run fails fast — replenishment turns the budget into a
rate limit on *sustained* retry volume while keeping the burst bound.
The pool never grows beyond its initial size.
"""

from __future__ import annotations

from typing import Optional


class RetryBudget:
    """A finite pool of retry tokens (``None`` ⇒ unlimited).

    Parameters
    ----------
    tokens:
        Initial pool size, which is also the cap replenishment can
        never push the pool past.
    replenish_rate:
        Tokens returned to the pool per simulated second (``None``, the
        default, preserves the historical never-replenish behavior).
        Callers must then pass ``now`` to :meth:`try_acquire`.
    start:
        Simulated time of construction (replenishment baseline).
    """

    __slots__ = ("tokens", "granted", "denied", "replenish_rate",
                 "replenished", "_last", "_credit")

    def __init__(
        self,
        tokens: Optional[int],
        replenish_rate: Optional[float] = None,
        start: float = 0.0,
    ) -> None:
        if tokens is not None and tokens < 0:
            raise ValueError("tokens must be non-negative")
        if replenish_rate is not None and replenish_rate <= 0:
            raise ValueError("replenish_rate must be positive")
        self.tokens = tokens
        self.replenish_rate = replenish_rate
        self.granted = 0
        self.denied = 0
        #: Whole tokens returned to the pool so far.
        self.replenished = 0
        self._last = float(start)
        #: Fractional replenishment carried between acquisitions.
        self._credit = 0.0

    def _replenish(self, now: float) -> None:
        if self.replenish_rate is None or self.tokens is None:
            return
        elapsed = now - self._last
        self._last = max(self._last, now)
        if elapsed <= 0:
            return
        self._credit += elapsed * self.replenish_rate
        whole = int(self._credit)
        if whole <= 0:
            return
        # The pool can recover only what was actually spent: available
        # (= tokens - granted + replenished) never exceeds the initial
        # pool size.
        spent = self.granted - self.replenished
        returned = min(whole, spent)
        self.replenished += returned
        self._credit -= whole

    def try_acquire(self, now: Optional[float] = None) -> bool:
        """Take one retry token; False when the pool is dry.

        ``now`` drives time-based replenishment; omitting it skips the
        replenish step (the historical fixed-pool behavior).
        """
        if now is not None:
            self._replenish(now)
        if (
            self.tokens is not None
            and self.granted - self.replenished >= self.tokens
        ):
            self.denied += 1
            return False
        self.granted += 1
        return True

    @property
    def remaining(self) -> Optional[int]:
        """Tokens left (None for an unlimited budget)."""
        if self.tokens is None:
            return None
        return self.tokens - self.granted + self.replenished

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RetryBudget granted={self.granted} remaining={self.remaining}>"
