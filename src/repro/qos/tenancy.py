"""Per-tenant QoS: SLOs, rate guarantees, and decentralized borrowing.

DOSAS demotes active requests to protect shared servers, but a single
static intake bucket per server polices every *job* together — one
noisy tenant can starve every other tenant while staying inside the
server-wide rate.  This module generalizes the QoS layer to
multi-tenant workloads:

:class:`TenantSpec`
    One tenant's contract — an SLO latency target, a fairness weight,
    a per-server rate guarantee (with burst) and an optional hard
    ceiling — plus the tenant's workload demand.  Specs ride on
    ``WorkloadSpec.tenants`` and every ``IORequest`` carries its
    tenant's name from workload → ASC → PVFS server.
:class:`TenantLedger`
    One server's per-tenant token buckets with AdapTBF-style
    *decentralized borrowing*: when a tenant's own bucket cannot cover
    a request, idle peers at the same server lend their surplus (above
    a configurable reserve), the loan is recorded as debt, and a
    bounded share of the borrower's future refill repays the lenders —
    no coordinator, no cross-server traffic, deterministic given the
    call sequence and the ledger's seed (which only permutes the
    peer-scan order so lending pressure doesn't always fall on the
    same tenant).

Pure policy, like ``repro.qos.admission``: the ledger sees tenant
names, sizes and times, never a request object — which keeps the
qos ↔ pvfs dependency acyclic.  ``AdmissionController`` layers the
ledger *under* its depth and server-wide intake checks, and
``IOServer.shed_queued_active`` consults :meth:`TenantLedger.over_quota`
so the DOSAS shedding order demotes the over-quota tenant's active
work first.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.qos.tokens import TokenBucket

__all__ = ["TenantSpec", "TenantLedger", "interleave"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's QoS contract and workload demand.

    Attributes
    ----------
    name:
        Tenant identity, carried on every request the tenant issues.
    weight:
        Relative fairness weight; drives the deterministic interleave
        of tenant arrivals and is the tie-break share for future
        weighted policies.
    rate:
        Guaranteed token refill in bytes per simulated second *per
        server*.  ``None`` leaves the tenant unpoliced (admitted by
        depth/intake checks only, neither lending nor borrowing).
    burst:
        Bucket capacity in bytes (default: one second of ``rate``).
        Requires ``rate`` — a burst without a rate would silently
        no-op, so it raises instead.
    ceiling:
        Hard cap on the tenant's consumption rate *including borrowed
        tokens* (bytes/s per server); ``None`` lets borrowing extend
        the tenant up to whatever peers can lend.
    ceiling_burst:
        Burst of the ceiling bucket (default: one second of
        ``ceiling``).  Requires ``ceiling``.
    slo_latency:
        Per-request latency target in simulated seconds; attainment
        (fraction of the tenant's requests finishing within it) is
        reported per run.  ``None`` disables attainment accounting.
    requests:
        Workload demand: active reads this tenant issues per storage
        node per run.
    """

    name: str
    weight: float = 1.0
    rate: Optional[float] = None
    burst: Optional[float] = None
    ceiling: Optional[float] = None
    ceiling_burst: Optional[float] = None
    slo_latency: Optional[float] = None
    requests: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst is not None and self.burst <= 0:
            raise ValueError("burst must be positive")
        if self.burst is not None and self.rate is None:
            raise ValueError("burst needs rate")
        if self.ceiling is not None and self.ceiling <= 0:
            raise ValueError("ceiling must be positive")
        if self.ceiling_burst is not None and self.ceiling_burst <= 0:
            raise ValueError("ceiling_burst must be positive")
        if self.ceiling_burst is not None and self.ceiling is None:
            raise ValueError("ceiling_burst needs ceiling")
        if self.ceiling is not None and self.rate is not None \
                and self.ceiling < self.rate:
            raise ValueError("ceiling must be at least the guaranteed rate")
        if self.ceiling is not None and self.rate is None:
            raise ValueError("ceiling needs rate")
        if self.slo_latency is not None and self.slo_latency <= 0:
            raise ValueError("slo_latency must be positive")
        if self.requests < 0:
            raise ValueError("requests must be non-negative")


def interleave(tenants: Sequence[TenantSpec]) -> Tuple[str, ...]:
    """Per-storage-node tenant sequence, smooth-weighted by demand.

    Deterministic smooth weighted round-robin over each tenant's
    ``requests`` count: every tenant appears exactly ``requests``
    times, spread as evenly as possible, so tenant arrivals genuinely
    contend instead of running in sequential phases.  Ties break by
    spec order.
    """
    demands = [(t.name, t.requests) for t in tenants if t.requests > 0]
    if not demands:
        return ()
    total = sum(d for _, d in demands)
    credit = {name: 0.0 for name, _ in demands}
    left = {name: d for name, d in demands}
    out: List[str] = []
    for _ in range(total):
        for name, d in demands:
            if left[name] > 0:
                credit[name] += d
        pick = max(
            (name for name, _ in demands if left[name] > 0),
            key=lambda n: credit[n],
        )
        credit[pick] -= total
        left[pick] -= 1
        out.append(pick)
    return tuple(out)


@dataclass
class _TenantState:
    """One policed tenant's buckets and counters at one server."""

    spec: TenantSpec
    bucket: TokenBucket
    ceiling: Optional[TokenBucket]
    granted: int = 0
    granted_bytes: float = 0.0
    denied: int = 0
    borrowed_bytes: float = 0.0
    lent_bytes: float = 0.0
    reclaimed_bytes: float = 0.0
    #: Outstanding debt to each lender (tokens owed, by lender name).
    debts: Dict[str, float] = field(default_factory=dict)
    #: Refill baseline for bounded reclaim.
    last_settle: float = 0.0

    @property
    def debt(self) -> float:
        """Total tokens this tenant still owes its peers."""
        return sum(self.debts.values())


class TenantLedger:
    """Per-server, per-tenant token buckets with decentralized borrowing.

    The borrowing protocol, per :meth:`try_consume` call:

    1. *Settle*: each indebted tenant repays lenders out of a bounded
       share (``reclaim_fraction``) of the refill it earned since its
       last settlement — repayment can slow a borrower, never stall it.
    2. *Ceiling*: a tenant with a ceiling bucket must cover the request
       there too — borrowed or not, it cannot exceed its cap.
    3. *Own bucket*: covered requests (including the oversize rule —
       a request larger than the whole bucket is admitted when the
       bucket is full, driving it into debt) consume locally.
    4. *Borrow*: otherwise the deficit is taken from peers' surplus
       above their ``lend_reserve``, scanned in a seeded-deterministic
       order, and recorded as debt.  If peers cannot cover the whole
       deficit, nothing is consumed anywhere and the request is denied
       (shed or rejected by the admission controller above).

    All mutation happens in commit steps that follow side-effect-free
    probes (:meth:`TokenBucket.would_admit` / ``available``), so a
    denial burns no tokens anywhere — the invariant the admission
    controller's depth check already pins.
    """

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        start: float = 0.0,
        borrow: bool = True,
        lend_reserve: float = 0.5,
        reclaim_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= lend_reserve <= 1.0:
            raise ValueError("lend_reserve must lie in [0, 1]")
        if not 0.0 <= reclaim_fraction <= 1.0:
            raise ValueError("reclaim_fraction must lie in [0, 1]")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.borrow = borrow
        self.lend_reserve = lend_reserve
        self.reclaim_fraction = reclaim_fraction
        self._states: Dict[str, _TenantState] = {}
        for t in tenants:
            if t.rate is None:
                continue
            ceiling = (
                TokenBucket(t.ceiling, t.ceiling_burst, start=start)
                if t.ceiling is not None
                else None
            )
            self._states[t.name] = _TenantState(
                spec=t,
                bucket=TokenBucket(t.rate, t.burst, start=start),
                ceiling=ceiling,
                last_settle=start,
            )
        #: Requests admitted without per-tenant policing (no tenant
        #: label, or a tenant with no rate guarantee).
        self.unpoliced = 0
        # The seed only permutes peer-scan order (lending and
        # repayment), so structural bias — always draining the same
        # peer first — is broken deterministically.
        rng = random.Random(seed)
        self._scan_order: List[str] = sorted(self._states)
        rng.shuffle(self._scan_order)

    # -- the decision ---------------------------------------------------------
    def try_consume(self, tenant: Optional[str], size: float, now: float) -> bool:
        """Grant or deny ``size`` bytes for ``tenant`` at ``now``.

        Unknown or unpoliced tenants are granted (the server-wide depth
        and intake checks still apply above this ledger).
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        self._settle(now)
        state = self._states.get(tenant) if tenant is not None else None
        if state is None:
            self.unpoliced += 1
            return True
        if state.ceiling is not None and not state.ceiling.would_admit(size, now):
            state.denied += 1
            return False
        if state.bucket.would_admit(size, now):
            state.bucket.try_consume(size, now)
            if state.ceiling is not None:
                state.ceiling.try_consume(size, now)
            self._grant(state, size)
            return True
        if not self.borrow:
            state.denied += 1
            return False
        own = max(0.0, state.bucket.available(now))
        deficit = size - own
        plan = self._borrow_plan(state, deficit, now)
        if plan is None:
            state.denied += 1
            return False
        # Commit: drain own balance to zero, then take the planned
        # share from each lender and record the debt.
        state.bucket.drain(own, now)
        for lender_name, share in plan:
            lender = self._states[lender_name]
            lender.bucket.drain(share, now)
            lender.lent_bytes += share
            state.debts[lender_name] = state.debts.get(lender_name, 0.0) + share
        state.borrowed_bytes += deficit
        if state.ceiling is not None:
            state.ceiling.try_consume(size, now)
        self._grant(state, size)
        return True

    def _grant(self, state: _TenantState, size: float) -> None:
        state.granted += 1
        state.granted_bytes += size

    def _borrow_plan(
        self, borrower: _TenantState, deficit: float, now: float
    ) -> Optional[List[Tuple[str, float]]]:
        """How to cover ``deficit`` from peers, or None if they can't.

        Side-effect-free: only probes peer balances.  Lenders are
        scanned in the ledger's seeded order; each lends its surplus
        above ``lend_reserve`` of its capacity.
        """
        plan: List[Tuple[str, float]] = []
        remaining = deficit
        for name in self._scan_order:
            if remaining <= 0:
                break
            if name == borrower.spec.name:
                continue
            peer = self._states[name]
            reserve = self.lend_reserve * peer.bucket.capacity
            surplus = peer.bucket.available(now) - reserve
            if surplus <= 0:
                continue
            share = min(surplus, remaining)
            plan.append((name, share))
            remaining -= share
        if remaining > 1e-9:
            return None
        return plan

    # -- repayment ------------------------------------------------------------
    def _settle(self, now: float) -> None:
        """Bounded debt repayment out of each borrower's refill.

        Per borrower: at most ``reclaim_fraction`` of the refill earned
        since its last settlement (and never more than its positive
        balance) moves back to lenders, scanned in the seeded order.
        A lender absorbs repayment only up to its bucket headroom, so
        the ledger identity ``borrowed == reclaimed + outstanding``
        stays exact.
        """
        for name in self._scan_order:
            state = self._states[name]
            elapsed = now - state.last_settle
            if elapsed <= 0:
                continue
            state.last_settle = now
            if not state.debts:
                continue
            budget = min(
                self.reclaim_fraction * state.bucket.rate * elapsed,
                max(0.0, state.bucket.available(now)),
                state.debt,
            )
            if budget <= 0:
                continue
            for lender_name in self._scan_order:
                owed = state.debts.get(lender_name, 0.0)
                if owed <= 0 or budget <= 0:
                    continue
                offer = min(owed, budget)
                lender = self._states[lender_name]
                accepted = lender.bucket.credit(offer, now)
                if accepted <= 0:
                    continue
                state.bucket.drain(accepted, now)
                state.debts[lender_name] = owed - accepted
                if state.debts[lender_name] <= 1e-12:
                    del state.debts[lender_name]
                state.reclaimed_bytes += accepted
                budget -= accepted

    # -- introspection --------------------------------------------------------
    def over_quota(self, tenant: Optional[str], now: float) -> float:
        """How far ``tenant`` is living beyond its guarantee at ``now``.

        Outstanding borrowed debt plus any negative own balance; 0 for
        a tenant inside its guarantee (or an unpoliced one).  The
        server's shedding path sorts queued active work by this, so
        DOSAS demotion hits the over-quota tenant's requests first.
        """
        state = self._states.get(tenant) if tenant is not None else None
        if state is None:
            return 0.0
        return state.debt + max(0.0, -state.bucket.available(now))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic per-tenant counters (sorted by tenant name)."""
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._states):
            s = self._states[name]
            out[name] = {
                "granted": s.granted,
                "granted_bytes": s.granted_bytes,
                "denied": s.denied,
                "borrowed_bytes": s.borrowed_bytes,
                "lent_bytes": s.lent_bytes,
                "reclaimed_bytes": s.reclaimed_bytes,
                "debt_outstanding": s.debt,
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TenantLedger tenants={sorted(self._states)} "
            f"borrow={self.borrow}>"
        )
