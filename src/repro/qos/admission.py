"""Admission control for the I/O server's intake.

Pure policy: the controller sees only the queue depth and the request
shape, and answers accept / shed / reject.  The I/O server owns all
side effects (synthesizing demoted replies, failing rejected replies,
demoting queued active work to make room) so this module stays free of
any ``repro.pvfs`` import — which is what keeps the qos ↔ pvfs
dependency acyclic.

The shedding order mirrors DOSAS demotion: an active request that hits
a full queue is turned into client-side work (its data still flows, the
compute moves), and a normal read is refused only after the server has
tried to demote queued active work to free a slot.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.qos.config import QoSConfig
from repro.qos.tenancy import TenantLedger, TenantSpec
from repro.qos.tokens import TokenBucket


class AdmissionDecision(enum.Enum):
    """What to do with one arriving request."""

    ACCEPT = "accept"
    #: Demote to client-side execution (active requests only).
    SHED = "shed"
    #: Refuse with a typed ``ServerOverloaded`` failure.
    REJECT = "reject"


class AdmissionController:
    """Bounded queue depth plus optional token-bucket intake policing.

    When a :class:`~repro.qos.tenancy.TenantLedger` is attached, a
    third layer runs under depth and server-wide intake: the arriving
    request's tenant must cover the bytes from its own guarantee (or
    borrow from idle peers).  All three checks are probe-then-commit:
    a denial at any layer burns tokens at none of them.
    """

    __slots__ = ("max_queue_depth", "shed_active_first", "intake", "tenants")

    def __init__(
        self,
        max_queue_depth: Optional[int] = 16,
        shed_active_first: bool = True,
        intake: Optional[TokenBucket] = None,
        tenants: Optional[TenantLedger] = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.shed_active_first = shed_active_first
        self.intake = intake
        self.tenants = tenants

    @classmethod
    def from_config(
        cls,
        config: QoSConfig,
        start: float = 0.0,
        tenants: Sequence[TenantSpec] = (),
        seed: int = 0,
    ) -> Optional["AdmissionController"]:
        """Build a controller (or None when the config disables intake control).

        Each server needs its own controller — the intake bucket and
        the tenant ledger hold per-server state; ``seed`` feeds the
        ledger's deterministic peer-scan permutation and should differ
        per server so lending pressure doesn't correlate across nodes.
        """
        policed = [t for t in tenants if t.rate is not None]
        if (
            config.max_queue_depth is None
            and config.intake_rate is None
            and not policed
        ):
            return None
        intake = (
            TokenBucket(config.intake_rate, config.intake_burst, start=start)
            if config.intake_rate is not None
            else None
        )
        ledger = (
            TenantLedger(
                tenants,
                start=start,
                borrow=config.tenant_borrow,
                lend_reserve=config.tenant_lend_reserve,
                reclaim_fraction=config.tenant_reclaim_fraction,
                seed=seed,
            )
            if policed
            else None
        )
        return cls(
            max_queue_depth=config.max_queue_depth,
            shed_active_first=config.shed_active_first,
            intake=intake,
            tenants=ledger,
        )

    def screen(
        self,
        queue_depth: int,
        is_active: bool,
        size: float,
        now: float,
        tenant: Optional[str] = None,
    ) -> AdmissionDecision:
        """Decide one arrival.  Consumes tokens (anywhere) only on ACCEPT.

        Depth is checked first, then the server-wide intake bucket is
        *probed*, then the tenant ledger decides, and only then does the
        intake bucket commit — so a depth or tenant denial never burns
        shared tokens and an intake denial never burns tenant tokens.
        The server may shed queued active work and screen again, at
        which point every check re-runs.
        """
        if self.max_queue_depth is not None and queue_depth >= self.max_queue_depth:
            return self._overflow(is_active)
        if self.intake is not None and not self.intake.would_admit(size, now):
            return self._overflow(is_active)
        if self.tenants is not None and not self.tenants.try_consume(
            tenant, size, now
        ):
            return self._overflow(is_active)
        if self.intake is not None:
            # Guaranteed to succeed: the probe above admitted it and
            # nothing has touched the bucket since.
            self.intake.try_consume(size, now)
        return AdmissionDecision.ACCEPT

    def _overflow(self, is_active: bool) -> AdmissionDecision:
        if is_active and self.shed_active_first:
            return AdmissionDecision.SHED
        return AdmissionDecision.REJECT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AdmissionController depth={self.max_queue_depth} "
            f"policed={self.intake is not None}>"
        )
