"""Admission control for the I/O server's intake.

Pure policy: the controller sees only the queue depth and the request
shape, and answers accept / shed / reject.  The I/O server owns all
side effects (synthesizing demoted replies, failing rejected replies,
demoting queued active work to make room) so this module stays free of
any ``repro.pvfs`` import — which is what keeps the qos ↔ pvfs
dependency acyclic.

The shedding order mirrors DOSAS demotion: an active request that hits
a full queue is turned into client-side work (its data still flows, the
compute moves), and a normal read is refused only after the server has
tried to demote queued active work to free a slot.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.qos.config import QoSConfig
from repro.qos.tokens import TokenBucket


class AdmissionDecision(enum.Enum):
    """What to do with one arriving request."""

    ACCEPT = "accept"
    #: Demote to client-side execution (active requests only).
    SHED = "shed"
    #: Refuse with a typed ``ServerOverloaded`` failure.
    REJECT = "reject"


class AdmissionController:
    """Bounded queue depth plus optional token-bucket intake policing."""

    __slots__ = ("max_queue_depth", "shed_active_first", "intake")

    def __init__(
        self,
        max_queue_depth: Optional[int] = 16,
        shed_active_first: bool = True,
        intake: Optional[TokenBucket] = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.shed_active_first = shed_active_first
        self.intake = intake

    @classmethod
    def from_config(cls, config: QoSConfig, start: float = 0.0) -> Optional["AdmissionController"]:
        """Build a controller (or None when the config disables intake control).

        Each server needs its own controller — the intake bucket holds
        per-server state.
        """
        if config.max_queue_depth is None and config.intake_rate is None:
            return None
        intake = (
            TokenBucket(config.intake_rate, config.intake_burst, start=start)
            if config.intake_rate is not None
            else None
        )
        return cls(
            max_queue_depth=config.max_queue_depth,
            shed_active_first=config.shed_active_first,
            intake=intake,
        )

    def screen(
        self, queue_depth: int, is_active: bool, size: float, now: float
    ) -> AdmissionDecision:
        """Decide one arrival.  Consumes intake tokens only on ACCEPT.

        Depth is checked before the bucket so a depth rejection never
        burns tokens; the server may shed queued active work and screen
        again, at which point both checks re-run.
        """
        if self.max_queue_depth is not None and queue_depth >= self.max_queue_depth:
            return self._overflow(is_active)
        if self.intake is not None and not self.intake.try_consume(size, now):
            return self._overflow(is_active)
        return AdmissionDecision.ACCEPT

    def _overflow(self, is_active: bool) -> AdmissionDecision:
        if is_active and self.shed_active_first:
            return AdmissionDecision.SHED
        return AdmissionDecision.REJECT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AdmissionController depth={self.max_queue_depth} "
            f"policed={self.intake is not None}>"
        )
