"""Overload protection for the DOSAS reproduction.

The paper's premise is that storage nodes melt down when too many
active I/Os pile onto them; this package keeps the melt-down bounded
and recoverable with four mechanisms, threaded through the stack by
``repro.core.schemes.run_scheme(..., qos=QoSConfig(...))``:

``AdmissionController`` (``repro.qos.admission``)
    Bounded queue depth + token-bucket intake policing per I/O server.
    Active arrivals over the bound are *shed* (demoted to client-side
    execution, mirroring DOSAS demotion); normal reads are refused with
    a typed ``ServerOverloaded`` only after queued active work has
    been demoted to make room.
``TokenBucket`` (``repro.qos.tokens``)
    AdapTBF-style rate/bandwidth limiting, deterministic because its
    refill is driven purely by simulated time.
``CircuitBreaker`` / ``BreakerBoard`` (``repro.qos.breaker``)
    Per-server breakers on each client: consecutive crashes, timeouts
    or overload rejections open the path; clients route around the
    sick node (active work demotes to local compute) and a half-open
    probe discovers recovery.
``RetryBudget`` (``repro.qos.budget``)
    A global token pool over ``RetryPolicy`` so the whole system's
    retry volume is bounded — the anti-retry-storm brake.  Optionally
    replenishes over simulated time so long soaks recover.
``TenantSpec`` / ``TenantLedger`` (``repro.qos.tenancy``)
    Multi-tenant QoS: per-(server, tenant) token buckets with SLO
    targets and AdapTBF-style decentralized borrowing — an idle
    tenant's unused refill is lent to busy peers at the same server
    with bounded, seeded-deterministic reclaim.  Layers under the
    admission controller and steers the DOSAS shedding order toward
    the over-quota tenant's work.

Deadline propagation rides on ``IORequest.deadline`` (see
``repro.pvfs``); servers cancel expired work with a ``DeadlineExceeded``
failure.  The chaos-soak harness that exercises the whole package
under randomized fault schedules lives in ``repro.qos.soak`` (imported
lazily — it pulls in ``repro.core``).

See ``docs/failure_model.md`` for the overload model.
"""

from repro.qos.admission import AdmissionController, AdmissionDecision
from repro.qos.breaker import BreakerBoard, BreakerState, CircuitBreaker
from repro.qos.budget import RetryBudget
from repro.qos.config import QoSConfig
from repro.qos.tenancy import TenantLedger, TenantSpec, interleave
from repro.qos.tokens import TokenBucket

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BreakerBoard",
    "BreakerState",
    "CircuitBreaker",
    "QoSConfig",
    "RetryBudget",
    "TenantLedger",
    "TenantSpec",
    "TokenBucket",
    "interleave",
]
