"""The tenant-fairness bench: isolation and work conservation, per seed.

``run_fairness_bench`` drives one seeded two-tenant contention scenario
— a *gold* tenant with a real rate guarantee, an SLO and light demand,
against a *noisy* tenant with a small guarantee and saturating demand —
through DOSAS three times:

``borrowing``
    Per-tenant policing with decentralized token borrowing armed (the
    full ``repro.qos.tenancy`` protocol).
``static``
    The same guarantees with borrowing off — each tenant strictly
    partitioned inside its own bucket, the work-conservation baseline.
``unpoliced``
    No per-tenant policing at all (tenants carry no rate), pinning what
    raw FIFO contention does to the gold tenant — the contention the
    policed modes exist to prevent.

Two gates come out of the comparison, asserted by the CI smoke job and
``benchmarks/bench_tenant_fairness.py``:

- **isolation**: under borrowing, the noisy tenant cannot push the gold
  tenant below its SLO (gold attainment stays 1.0);
- **work conservation**: borrowing's aggregate goodput is at least the
  static partition's — lending idle gold tokens to the noisy tenant
  recovers the throughput strict partitioning wastes.

The report is plain data with a deterministic JSON rendering (same
seed ⇒ byte-identical text).  Like ``repro.qos.soak`` this module
imports ``repro.core`` and is therefore *not* re-exported from
``repro.qos``; reach it as ``repro.qos.fairness``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Sequence

from repro.cluster.config import MB
from repro.core.asc import RetryPolicy
from repro.core.schemes import Scheme, WorkloadSpec, run_scheme
from repro.pvfs.client import reset_parent_ids
from repro.pvfs.requests import reset_request_ids
from repro.qos.config import QoSConfig
from repro.qos.tenancy import TenantSpec

__all__ = ["run_fairness_bench", "fairness_json"]


def _tenants(
    gold_requests: int,
    noisy_requests: int,
    gold_rate: Optional[float],
    noisy_rate: Optional[float],
    gold_slo: float,
) -> tuple:
    return (
        TenantSpec(
            name="gold",
            weight=2.0,
            rate=gold_rate,
            slo_latency=gold_slo,
            requests=gold_requests,
        ),
        TenantSpec(name="noisy", rate=noisy_rate, requests=noisy_requests),
    )


def run_fairness_bench(
    seed: int,
    n_storage: int = 2,
    request_bytes: int = 16 * MB,
    gold_requests: int = 3,
    noisy_requests: int = 16,
    gold_rate: float = 70 * MB,
    noisy_rate: float = 20 * MB,
    gold_slo: float = 2.0,
    max_virtual_time: float = 600.0,
    retry: Optional[RetryPolicy] = None,
) -> Dict[str, Any]:
    """One seed's fairness comparison: borrowing vs static vs unpoliced.

    The guarantees deliberately under-subscribe the 118 MB/s NIC
    (gold 70 + noisy 20 = 90 MB/s) while the *demand* oversubscribes it:
    the noisy tenant's backlog can only drain quickly by borrowing the
    idle share of gold's guarantee.  Tenant-denied work recovers through
    the retry machinery, so every mode runs with a patient retry policy
    (bench-long timeouts, many attempts) and breakers effectively off —
    fairness, not fault tolerance, is what's being measured.
    """
    if retry is None:
        retry = RetryPolicy(
            timeout=60.0, max_retries=24, backoff_base=0.25,
            backoff_factor=2.0, backoff_cap=2.0,
        )

    def _qos(borrow: bool) -> QoSConfig:
        return QoSConfig(
            # Deep enough that queue-depth shedding never fires: only
            # the tenant ledger polices, so the gates measure it alone.
            max_queue_depth=8 * (gold_requests + noisy_requests),
            breaker_threshold=10_000,
            retry_budget=None,
            tenant_borrow=borrow,
        )

    modes: Dict[str, Any] = {}
    for label, rates, qos in (
        ("borrowing", (gold_rate, noisy_rate), _qos(borrow=True)),
        ("static", (gold_rate, noisy_rate), _qos(borrow=False)),
        ("unpoliced", (None, None), _qos(borrow=True)),
    ):
        # Rebased id sequences keep every run — and therefore the whole
        # report — byte-identical for a given seed.
        reset_request_ids()
        reset_parent_ids()
        spec = WorkloadSpec(
            request_bytes=request_bytes,
            n_storage=n_storage,
            seed=seed,
            tenants=_tenants(
                gold_requests, noisy_requests, rates[0], rates[1], gold_slo
            ),
        )
        r = run_scheme(
            Scheme.DOSAS,
            spec,
            retry_policy=retry,
            max_virtual_time=max_virtual_time,
            qos=qos,
        )
        modes[label] = {
            "makespan": r.makespan,
            "goodput": r.goodput,
            "retries": r.retries,
            "tenants": r.qos_stats["tenants"],
        }

    gold_attainment = modes["borrowing"]["tenants"]["per_tenant"]["gold"][
        "slo_attainment"
    ]
    gates = {
        "isolation": bool(gold_attainment is not None and gold_attainment >= 1.0),
        "work_conservation": bool(
            modes["borrowing"]["goodput"] >= modes["static"]["goodput"]
        ),
    }
    return {
        "bench": "tenant_fairness",
        "seed": seed,
        "workload": {
            "n_storage": n_storage,
            "request_mb": request_bytes // MB,
            "gold_requests": gold_requests,
            "noisy_requests": noisy_requests,
            "gold_rate_mb": gold_rate / MB,
            "noisy_rate_mb": noisy_rate / MB,
            "gold_slo": gold_slo,
        },
        "modes": modes,
        "gates": gates,
    }


def fairness_json(reports: Sequence[Dict[str, Any]]) -> str:
    """Byte-stable rendering of one or more seeds' reports."""
    return json.dumps(list(reports), sort_keys=True, indent=2)
