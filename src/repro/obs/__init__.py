"""Observability: request-lifecycle tracing and typed metrics.

See ``docs/observability.md`` for the span taxonomy, metric naming
conventions, and how to open exported traces in Chrome.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    PHASES,
    SPAN_KINDS,
    SpanEvent,
    Tracer,
    merge_events,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeWeightedGauge,
    WindowedHistogram,
)
from repro.obs.export import (
    TRACE_SCHEMA,
    chrome_trace,
    events_from_file,
    format_trace_summary,
    unclosed_spans,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "SpanEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SPAN_KINDS",
    "PHASES",
    "merge_events",
    "Counter",
    "Gauge",
    "TimeWeightedGauge",
    "Histogram",
    "WindowedHistogram",
    "MetricsRegistry",
    "chrome_trace",
    "write_chrome_trace",
    "events_from_file",
    "validate_chrome_trace",
    "unclosed_spans",
    "format_trace_summary",
    "TRACE_SCHEMA",
]
