"""Request-lifecycle tracing.

The simulator's layers (engine, resources, PVFS servers and clients,
the Active I/O Runtime, the Contention Estimator, the fault injector)
emit typed *span events* through a :class:`Tracer` attached to the
:class:`~repro.sim.engine.Environment`.  Every layer fetches the
tracer at call time via ``env.tracer``, so instrumentation needs no
constructor threading and costs one attribute load plus one truthiness
check when tracing is off (the default is the :data:`NULL_TRACER`
singleton whose ``enabled`` flag is ``False``).

Span events come in three phases:

``"i"``
    An instant — a point-in-time marker such as ``enqueue``,
    ``policy-decision``, ``dispatch``, ``reply``, ``retry``,
    ``probe`` or ``fault``.
``"b"`` / ``"e"``
    Begin/end of an *async* span — a duration keyed by an explicit
    id rather than by call nesting.  Request lifetimes (keyed by
    request id) and resource slot waits (keyed by a per-resource
    sequence number) use these.

Determinism matters: trace exports must be byte-identical across runs
with the same seed.  Events therefore never record wall-clock time or
memory addresses — ids are request ids or per-resource counters, and
attributes are stored as sorted tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SpanEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SPAN_KINDS",
    "PHASES",
]

#: Known span kinds.  The tracer accepts any string (forward
#: compatibility for downstream experiments) but the core layers only
#: emit these; the validator warns on unknown kinds.
SPAN_KINDS = frozenset(
    {
        # Request lifecycle (pvfs.server / pvfs.client / core.asc)
        "request",          # async span: accepted by a server -> terminal reply
        "enqueue",          # instant: entered a server's outstanding set
        "issue",            # instant: client handed the request to a server
        "dispatch",         # instant: service begins (normal / kernel / demote)
        "reply",            # instant: server delivered the reply event
        "reject",           # instant: server was down, request refused
        "retry",            # instant: ASC abandoned an attempt and re-issues
        "client-finish",    # async span: client finishing a demoted kernel
        # Active I/O runtime (core.runtime)
        "runtime-enqueue",  # instant: admitted to the runtime queue
        "policy-decision",  # instant: per-request active/normal verdict
        "demote",           # instant: kernel demoted to normal I/O
        "kernel",           # async span: kernel executing on storage cores
        "kernel-start",     # instant: kernel began executing
        "kernel-checkpoint",  # instant: interrupted kernel checkpointed
        "kernel-migrate",   # instant: checkpoint shipped back to the client
        "deliver",          # async span: reply payload streaming to client
        # Estimation (core.estimator / cluster.probe)
        "probe",            # instant: SystemProbe sampled (n, k, D, D_A, cpu)
        "policy",           # instant: estimator produced a policy
        # Infrastructure
        "slot-wait",        # async span: queued on a Resource until granted
        "fault",            # instant: fault injector applied an event
        "server-crash",     # instant
        "server-restart",   # instant
        "event",            # instant: engine processed an event (trace_engine)
    }
)

PHASES = frozenset({"b", "e", "i"})


@dataclass(frozen=True)
class SpanEvent:
    """One trace record.

    ``attrs`` is a tuple of ``(key, value)`` pairs sorted by key so
    that equal events compare equal and serialise identically.
    """

    time: float
    kind: str
    phase: str  # "b" | "e" | "i"
    track: str  # logical timeline, e.g. "server:sn0"
    rid: Optional[int] = None
    span_id: Optional[int] = None
    attrs: Tuple[Tuple[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (used by the raw export)."""
        d: Dict[str, Any] = {
            "time": self.time,
            "kind": self.kind,
            "phase": self.phase,
            "track": self.track,
        }
        if self.rid is not None:
            d["rid"] = self.rid
        if self.span_id is not None:
            d["span_id"] = self.span_id
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SpanEvent":
        """Inverse of :meth:`to_dict` (for trace-file tooling)."""
        return cls(
            time=d["time"],
            kind=d["kind"],
            phase=d["phase"],
            track=d["track"],
            rid=d.get("rid"),
            span_id=d.get("span_id"),
            attrs=tuple(sorted(d.get("attrs", {}).items())),
        )


class Tracer:
    """Records span events in emission order.

    One tracer per simulation run.  ``trace_engine`` additionally
    records every engine event processed — high volume, off by
    default even when tracing is on.
    """

    __slots__ = ("events", "trace_engine")

    #: Class-level so ``tracer.enabled`` costs no per-instance storage
    #: and the null tracer can override it.
    enabled: ClassVar[bool] = True

    def __init__(self, trace_engine: bool = False) -> None:
        self.events: List[SpanEvent] = []
        self.trace_engine = trace_engine and self.enabled

    def __len__(self) -> int:
        return len(self.events)

    def _emit(
        self,
        time: float,
        kind: str,
        phase: str,
        track: str,
        rid: Optional[int],
        span_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self.events.append(
            SpanEvent(
                time=time,
                kind=kind,
                phase=phase,
                track=track,
                rid=rid,
                span_id=span_id,
                attrs=tuple(sorted(attrs.items())),
            )
        )

    def instant(
        self,
        time: float,
        kind: str,
        track: str,
        rid: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Record a point-in-time marker."""
        self._emit(time, kind, "i", track, rid, None, attrs)

    def begin(
        self,
        time: float,
        kind: str,
        track: str,
        rid: Optional[int] = None,
        span_id: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Open an async span.

        The span is correlated by ``(kind, span_id)`` where ``span_id``
        defaults to ``rid``.  Callers must pass a deterministic id —
        never ``id(obj)``.
        """
        if span_id is None:
            span_id = rid
        self._emit(time, kind, "b", track, rid, span_id, attrs)

    def end(
        self,
        time: float,
        kind: str,
        track: str,
        rid: Optional[int] = None,
        span_id: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Close the async span opened with the same ``(kind, span_id)``."""
        if span_id is None:
            span_id = rid
        self._emit(time, kind, "e", track, rid, span_id, attrs)

    # -- Introspection helpers (used by tests and analysis) ----------

    def by_kind(self, kind: str) -> List[SpanEvent]:
        """All events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def for_request(self, rid: int) -> List[SpanEvent]:
        """All events tagged with a request id, in emission order."""
        return [e for e in self.events if e.rid == rid]

    def open_spans(self) -> List[Tuple[str, Optional[int]]]:
        """``(kind, span_id)`` keys with unbalanced begin/end counts."""
        balance: Dict[Tuple[str, Optional[int]], int] = {}
        for e in self.events:
            if e.phase == "b":
                balance[(e.kind, e.span_id)] = balance.get((e.kind, e.span_id), 0) + 1
            elif e.phase == "e":
                balance[(e.kind, e.span_id)] = balance.get((e.kind, e.span_id), 0) - 1
        return sorted(k for k, v in balance.items() if v != 0)


class NullTracer(Tracer):
    """Zero-cost default: every method is a no-op.

    Hot paths guard emission with ``if tracer.enabled:`` so the
    disabled cost is a single attribute test; even unguarded calls
    land in empty methods.
    """

    __slots__ = ()

    enabled: ClassVar[bool] = False

    def __init__(self) -> None:
        super().__init__()

    def _emit(self, *args: Any, **kwargs: Any) -> None:  # pragma: no cover
        pass

    def instant(self, *args: Any, **kwargs: Any) -> None:
        pass

    def begin(self, *args: Any, **kwargs: Any) -> None:
        pass

    def end(self, *args: Any, **kwargs: Any) -> None:
        pass


#: Shared no-op tracer; ``Environment`` points at this by default.
NULL_TRACER = NullTracer()


def merge_events(tracers: Iterable[Tracer]) -> List[SpanEvent]:
    """Concatenate several tracers' events, stably ordered by time.

    Emission order breaks ties, keeping merges deterministic.
    """
    out: List[SpanEvent] = []
    for t in tracers:
        out.extend(t.events)
    out.sort(key=lambda e: e.time)
    return out
