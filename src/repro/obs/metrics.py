"""Typed metrics: counters, gauges, time-weighted gauges, histograms.

Replaces the stringly-typed ``Monitor`` counter bag on hot components
with named, typed instruments collected in a :class:`MetricsRegistry`.
The registry is deliberately Monitor-compatible where tests and older
callers expect it (``get_counter``) and exports a deterministic JSON
snapshot for run artefacts.

Histogram percentiles reuse :func:`repro.sim.monitor.percentile`, the
dependency-free linear-interpolation implementation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.sim.monitor import TimeWeightedStat, percentile

__all__ = [
    "Counter",
    "Gauge",
    "TimeWeightedGauge",
    "Histogram",
    "WindowedHistogram",
    "MetricsRegistry",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (by {amount})")
        self.value += amount


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, initial: float = 0.0) -> None:
        self.name = name
        self.value = initial

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class TimeWeightedGauge:
    """A gauge whose mean is weighted by how long each value held.

    Wraps :class:`~repro.sim.monitor.TimeWeightedStat` with the
    registry's clock, so callers just ``set()`` and read ``mean()``.
    """

    __slots__ = ("name", "_stat", "_now")

    def __init__(self, name: str, now: Callable[[], float], initial: float = 0.0) -> None:
        self.name = name
        self._now = now
        self._stat = TimeWeightedStat(start_time=now(), initial=initial)

    @property
    def value(self) -> float:
        """Present value of the signal."""
        return self._stat.current

    def set(self, value: float) -> None:
        self._stat.update(self._now(), value)

    def mean(self) -> float:
        """Time-weighted mean from registry creation to now."""
        return self._stat.mean(self._now())


class Histogram:
    """Raw-sample distribution with percentile readout.

    Stores every observation — simulation runs are small enough that
    exact percentiles beat bucketing error.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"empty histogram {self.name!r}")
        return self.sum / len(self.values)

    def percentile(self, q: float) -> float:
        return percentile(self.values, q)

    def snapshot(self) -> Dict[str, float]:
        """Summary stats for export (empty histograms export count=0)."""
        if not self.values:
            return {"count": 0}
        return {
            "count": len(self.values),
            "sum": self.sum,
            "mean": self.mean(),
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class WindowedHistogram:
    """Percentiles over the last ``window`` observations only.

    A bounded ring buffer, so long-lived online estimators (the
    client-side per-server latency trackers) track the *recent*
    distribution and forget a server's bad spell once it recovers,
    at O(window) memory regardless of run length.
    """

    __slots__ = ("name", "window", "count", "_ring", "_next")

    def __init__(self, name: str, window: int = 64) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.name = name
        self.window = window
        #: Total observations ever (not just those still in the window).
        self.count = 0
        self._ring: List[float] = []
        self._next = 0

    def observe(self, value: float) -> None:
        self.count += 1
        if len(self._ring) < self.window:
            self._ring.append(value)
        else:
            self._ring[self._next] = value
            self._next = (self._next + 1) % self.window

    def __len__(self) -> int:
        """Observations currently inside the window."""
        return len(self._ring)

    def percentile(self, q: float) -> float:
        return percentile(self._ring, q)

    def snapshot(self) -> Dict[str, float]:
        if not self._ring:
            return {"count": 0}
        return {
            "count": self.count,
            "window": len(self._ring),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named instruments for one component (e.g. one I/O server).

    ``now`` supplies the clock for time-weighted gauges — pass
    ``lambda: env.now`` when attached to a simulation component.  A
    name identifies exactly one instrument; asking for it under a
    different type raises ``ValueError``.
    """

    def __init__(self, now: Optional[Callable[[], float]] = None) -> None:
        self._now = now or (lambda: 0.0)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._time_gauges: Dict[str, TimeWeightedGauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, within: Dict[str, Any]) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("time_gauge", self._time_gauges),
            ("histogram", self._histograms),
        ):
            if table is not within and name in table:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    # -- get-or-create accessors -------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, self._counters)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str, initial: float = 0.0) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, self._gauges)
            g = self._gauges[name] = Gauge(name, initial)
        return g

    def time_gauge(self, name: str, initial: float = 0.0) -> TimeWeightedGauge:
        g = self._time_gauges.get(name)
        if g is None:
            self._check_free(name, self._time_gauges)
            g = self._time_gauges[name] = TimeWeightedGauge(name, self._now, initial)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name, self._histograms)
            h = self._histograms[name] = Histogram(name)
        return h

    # -- conveniences -------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter ``name`` (created on demand)."""
        self.counter(name).inc(amount)

    def get_counter(self, name: str) -> float:
        """Counter value, 0 if never incremented (Monitor-compatible)."""
        c = self._counters.get(name)
        return c.value if c is not None else 0.0

    # -- export --------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """Deterministic snapshot: keys sorted, plain JSON types only."""
        return {
            "counters": {n: self._counters[n].value for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
            "time_gauges": {
                n: {
                    "current": self._time_gauges[n].value,
                    "mean": self._time_gauges[n].mean(),
                }
                for n in sorted(self._time_gauges)
            },
            "histograms": {
                n: self._histograms[n].snapshot() for n in sorted(self._histograms)
            },
        }

    def summary(self) -> Dict[str, Any]:
        """Flat Monitor-style view: counters plus derived stats."""
        out: Dict[str, Any] = {
            n: self._counters[n].value for n in sorted(self._counters)
        }
        for n in sorted(self._gauges):
            out[n] = self._gauges[n].value
        for n in sorted(self._time_gauges):
            g = self._time_gauges[n]
            out[f"{n}.mean"] = g.mean()
            out[f"{n}.last"] = g.value
        for n in sorted(self._histograms):
            for k, v in self._histograms[n].snapshot().items():
                out[f"{n}.{k}"] = v
        return out
