"""Trace exporters: Chrome ``trace_event`` JSON and a schema validator.

``chrome_trace`` converts one or more tracers into the Chrome trace
object format (open with ``chrome://tracing`` or https://ui.perfetto.dev).
Each run (e.g. one scheme) becomes a *process*; each track within a run
(``server:sn0``, ``client:cn1``, ``faults``…) becomes a *thread*.
Request lifetimes and slot waits map to async-nestable ``b``/``e``
events correlated by id; everything else maps to instants.

The exported object also carries the raw span events under a ``spans``
key (Chrome ignores unknown top-level keys), so trace files round-trip
into :class:`~repro.obs.tracer.SpanEvent` for offline analysis —
see ``repro trace critical-path``.

``validate_chrome_trace`` is a hand-rolled structural check against
:data:`TRACE_SCHEMA` — the repo deliberately avoids a ``jsonschema``
dependency, but CI uses it to gate the ``--trace`` smoke run.

Determinism: everything here is a pure function of the span events —
no wall-clock, no ids derived from memory addresses — so two runs with
the same seed serialise byte-identically.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Sequence, Union

from repro.obs.tracer import PHASES, SPAN_KINDS, SpanEvent, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "events_from_file",
    "validate_chrome_trace",
    "unclosed_spans",
    "format_trace_summary",
    "TRACE_SCHEMA",
]

#: JSON-Schema-style description of the exported trace document.  Kept
#: as data (not enforced with the ``jsonschema`` package) so tooling
#: and humans share one source of truth for the file format.
TRACE_SCHEMA: Dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro trace export",
    "type": "object",
    "required": ["traceEvents", "spans"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "ts", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ph": {"enum": ["M", "i", "b", "e"]},
                    "ts": {"type": "number", "minimum": 0},
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "id": {"type": "integer"},
                    "s": {"enum": ["t", "p", "g"]},
                    "args": {"type": "object"},
                },
            },
        },
        "spans": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["time", "kind", "phase", "track"],
                "properties": {
                    "time": {"type": "number"},
                    "kind": {"type": "string"},
                    "phase": {"enum": ["b", "e", "i"]},
                    "track": {"type": "string"},
                    "rid": {"type": "integer"},
                    "span_id": {"type": "integer"},
                    "attrs": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
    },
}


def _ts(time: float) -> float:
    """Simulated seconds → trace microseconds, stably rounded.

    Rounding to 3 decimal µs (nanosecond grain) keeps float repr noise
    out of the export without losing meaningful resolution.
    """
    return round(time * 1e6, 3)


def chrome_trace(
    tracers: Union[Tracer, Mapping[str, Tracer]],
    run_label: str = "run",
) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from one or more runs.

    ``tracers`` is either a single tracer or an ordered mapping of
    ``label -> tracer``; each label gets its own pid.  Thread ids are
    assigned per track in first-appearance order, which is
    deterministic because event emission order is.
    """
    if isinstance(tracers, Tracer):
        tracers = {run_label: tracers}

    trace_events: List[Dict[str, Any]] = []
    spans: List[Dict[str, Any]] = []

    for pid, (label, tracer) in enumerate(tracers.items()):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        tids: Dict[str, int] = {}
        for ev in tracer.events:
            tid = tids.get(ev.track)
            if tid is None:
                tid = tids[ev.track] = len(tids)
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "ts": 0,
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": ev.track},
                    }
                )
            args = dict(ev.attrs)
            if ev.rid is not None:
                args["rid"] = ev.rid
            rec: Dict[str, Any] = {
                "name": ev.kind,
                "cat": ev.kind,
                "ph": ev.phase,
                "ts": _ts(ev.time),
                "pid": pid,
                "tid": tid,
            }
            if ev.phase == "i":
                rec["s"] = "t"  # thread-scoped instant
            else:
                rec["id"] = ev.span_id if ev.span_id is not None else 0
            if args:
                rec["args"] = args
            trace_events.append(rec)
            d = ev.to_dict()
            d["run"] = label
            spans.append(d)

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "spans": spans,
    }


def write_chrome_trace(
    path: str,
    tracers: Union[Tracer, Mapping[str, Tracer]],
    run_label: str = "run",
) -> Dict[str, Any]:
    """Serialise :func:`chrome_trace` to ``path``; returns the document.

    ``sort_keys`` plus the deterministic event stream makes the file
    byte-identical across same-seed runs.
    """
    doc = chrome_trace(tracers, run_label=run_label)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return doc


def events_from_file(path: str) -> List[SpanEvent]:
    """Load the raw span events back out of an exported trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    errors = validate_chrome_trace(doc)
    if errors:
        raise ValueError(f"invalid trace file {path}: {errors[0]}")
    return [SpanEvent.from_dict(d) for d in doc["spans"]]


def _check(cond: bool, errors: List[str], msg: str) -> None:
    if not cond:
        errors.append(msg)


def validate_chrome_trace(doc: Any, max_errors: int = 20) -> List[str]:
    """Structural validation against :data:`TRACE_SCHEMA`.

    Returns a list of human-readable problems (empty == valid).  Checks
    stop after ``max_errors`` so a malformed file doesn't drown the
    report.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["top level: expected an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents: missing or not an array"]
    raw = doc.get("spans")
    if not isinstance(raw, list):
        return ["spans: missing or not an array"]

    for i, ev in enumerate(events):
        if len(errors) >= max_errors:
            return errors
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            _check(key in ev, errors, f"{where}: missing {key!r}")
        if not {"name", "ph", "ts", "pid", "tid"} <= ev.keys():
            continue
        _check(isinstance(ev["name"], str), errors, f"{where}: name not a string")
        _check(
            ev["ph"] in ("M", "i", "b", "e"),
            errors,
            f"{where}: unexpected phase {ev['ph']!r}",
        )
        _check(
            isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0,
            errors,
            f"{where}: ts must be a non-negative number",
        )
        _check(
            isinstance(ev["pid"], int) and isinstance(ev["tid"], int),
            errors,
            f"{where}: pid/tid must be integers",
        )
        if ev["ph"] in ("b", "e"):
            _check(
                isinstance(ev.get("id"), int),
                errors,
                f"{where}: async event needs an integer id",
            )

    for i, sp in enumerate(raw):
        if len(errors) >= max_errors:
            return errors
        where = f"spans[{i}]"
        if not isinstance(sp, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("time", "kind", "phase", "track"):
            _check(key in sp, errors, f"{where}: missing {key!r}")
        if not {"time", "kind", "phase", "track"} <= sp.keys():
            continue
        _check(
            isinstance(sp["time"], (int, float)),
            errors,
            f"{where}: time must be a number",
        )
        _check(
            sp["phase"] in PHASES, errors, f"{where}: unexpected phase {sp['phase']!r}"
        )
        _check(
            sp["kind"] in SPAN_KINDS,
            errors,
            f"{where}: unknown span kind {sp['kind']!r}",
        )
    return errors


def unclosed_spans(events: Sequence[SpanEvent]) -> List[Any]:
    """``(kind, span_id)`` pairs whose begin/end counts don't balance."""
    balance: Dict[Any, int] = {}
    for e in events:
        if e.phase == "b":
            balance[(e.kind, e.span_id)] = balance.get((e.kind, e.span_id), 0) + 1
        elif e.phase == "e":
            balance[(e.kind, e.span_id)] = balance.get((e.kind, e.span_id), 0) - 1
    return sorted((k for k, v in balance.items() if v != 0), key=repr)


def format_trace_summary(events: Sequence[SpanEvent]) -> str:
    """One-paragraph digest of a trace (used by ``repro trace validate``)."""
    kinds: Dict[str, int] = {}
    rids = set()
    for e in events:
        kinds[e.kind] = kinds.get(e.kind, 0) + 1
        if e.rid is not None:
            rids.add(e.rid)
    parts = [f"{len(events)} events", f"{len(rids)} requests"]
    top = sorted(kinds.items(), key=lambda kv: (-kv[1], kv[0]))[:6]
    parts.append(", ".join(f"{k}×{n}" for k, n in top))
    open_ = unclosed_spans(events)
    parts.append(f"{len(open_)} unclosed spans" if open_ else "all spans closed")
    return "; ".join(parts)
