"""repro — a full reproduction of DOSAS (IEEE CLUSTER 2012).

"DOSAS: Mitigating the Resource Contention in Active Storage Systems",
Chao Chen, Yong Chen and Philip C. Roth.

Subpackages
-----------
``repro.sim``
    From-scratch discrete-event simulation engine (SimPy-style).
``repro.cluster``
    The modelled machine: nodes, cores, NIC links, probes (calibrated
    to the paper's Discfarm testbed).
``repro.pvfs``
    PVFS2-like parallel file system: striping, metadata, I/O servers.
``repro.kernels``
    Processing kernels: real numpy implementations with streaming
    checkpoint/restore plus calibrated cost models.
``repro.shm``
    Shared-memory protocol between the Active I/O Runtime and kernels.
``repro.mpiio``
    Enhanced MPI-IO interface (``MPI_File_read_ex`` + struct result).
``repro.core``
    The paper's contribution: cost model, 0/1 offload schedulers,
    Contention Estimator, Active I/O Runtime, ASC/ASS, and the
    TS/AS/DOSAS scheme runners.
``repro.workload``
    Workload generators and the paper's sweep grids.
``repro.parallel`` / ``repro.cache``
    Parallel sweep runner (deterministic merged results) and the
    on-disk result cache it reuses points from.
``repro.analysis``
    Metrics and one driver per paper figure/table.

Quickstart
----------
.. code-block:: python

    from repro import Scheme, WorkloadSpec, run_scheme
    from repro.cluster import MB

    spec = WorkloadSpec(kernel="gaussian2d", n_requests=8,
                        request_bytes=128 * MB)
    for scheme in Scheme:
        r = run_scheme(scheme, spec)
        print(scheme.value, f"{r.makespan:.2f}s")
"""

from repro.core.schemes import DEFAULT_SEED, Scheme, SchemeResult, WorkloadSpec, run_scheme
from repro.cluster.config import GB, KB, MB, discfarm_config
from repro.qos import QoSConfig

__version__ = "1.1.0"

__all__ = [
    "DEFAULT_SEED",
    "GB",
    "KB",
    "MB",
    "QoSConfig",
    "ResultCache",
    "Scheme",
    "SchemeResult",
    "SweepPoint",
    "SweepRunner",
    "WorkloadSpec",
    "discfarm_config",
    "run_scheme",
    "__version__",
]

from repro.cache import ResultCache  # noqa: E402  (needs __version__ for the salt)
from repro.parallel import SweepPoint, SweepRunner  # noqa: E402
