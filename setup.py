"""Legacy setup shim — project metadata lives in pyproject.toml.

Present so ``pip install -e .`` works in offline environments that
lack the ``wheel`` package (pip falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
