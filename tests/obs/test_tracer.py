"""Tracer and SpanEvent semantics."""

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    SPAN_KINDS,
    SpanEvent,
    Tracer,
    merge_events,
)


class TestSpanEvent:
    def test_round_trip(self):
        ev = SpanEvent(
            time=1.5, kind="request", phase="b", track="server:sn0",
            rid=7, span_id=7, attrs=(("io", "active"), ("size", 128)),
        )
        assert SpanEvent.from_dict(ev.to_dict()) == ev

    def test_minimal_round_trip(self):
        ev = SpanEvent(time=0.0, kind="probe", phase="i", track="probe:sn0")
        d = ev.to_dict()
        assert "rid" not in d and "span_id" not in d and "attrs" not in d
        assert SpanEvent.from_dict(d) == ev

    def test_attrs_sorted_for_equality(self):
        a = SpanEvent(0.0, "fault", "i", "faults", attrs=(("a", 1), ("b", 2)))
        d = {"time": 0.0, "kind": "fault", "phase": "i", "track": "faults",
             "attrs": {"b": 2, "a": 1}}
        assert SpanEvent.from_dict(d) == a


class TestTracer:
    def test_instant_records_sorted_attrs(self):
        tr = Tracer()
        tr.instant(2.0, "dispatch", "server:sn0", rid=3, mode="kernel", b=1)
        (ev,) = tr.events
        assert ev.phase == "i" and ev.rid == 3
        assert ev.attrs == (("b", 1), ("mode", "kernel"))

    def test_begin_end_default_span_id_to_rid(self):
        tr = Tracer()
        tr.begin(0.0, "request", "server:sn0", rid=5)
        tr.end(1.0, "request", "server:sn0", rid=5, outcome="completed")
        assert [e.span_id for e in tr.events] == [5, 5]
        assert tr.open_spans() == []

    def test_open_spans_reports_unbalanced(self):
        tr = Tracer()
        tr.begin(0.0, "kernel", "ass:sn0", rid=1)
        tr.begin(0.0, "request", "server:sn0", rid=2)
        tr.end(1.0, "request", "server:sn0", rid=2)
        assert tr.open_spans() == [("kernel", 1)]

    def test_by_kind_and_for_request(self):
        tr = Tracer()
        tr.instant(0.0, "enqueue", "server:sn0", rid=1)
        tr.instant(0.5, "enqueue", "server:sn0", rid=2)
        tr.instant(1.0, "reply", "server:sn0", rid=1)
        assert [e.rid for e in tr.by_kind("enqueue")] == [1, 2]
        assert [e.kind for e in tr.for_request(1)] == ["enqueue", "reply"]

    def test_len(self):
        tr = Tracer()
        assert len(tr) == 0
        tr.instant(0.0, "probe", "probe:sn0")
        assert len(tr) == 1

    def test_core_kinds_registered(self):
        for kind in ("request", "enqueue", "policy-decision", "dispatch",
                     "reply", "retry", "kernel", "kernel-checkpoint",
                     "kernel-migrate", "slot-wait", "fault", "probe"):
            assert kind in SPAN_KINDS


class TestNullTracer:
    def test_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.instant(0.0, "enqueue", "t", rid=1)
        NULL_TRACER.begin(0.0, "request", "t", rid=1)
        NULL_TRACER.end(1.0, "request", "t", rid=1)
        assert NULL_TRACER.events == []

    def test_is_a_tracer(self):
        assert isinstance(NullTracer(), Tracer)
        assert Tracer.enabled is True


class TestMergeEvents:
    def test_time_ordered_stable(self):
        a, b = Tracer(), Tracer()
        a.instant(1.0, "probe", "probe:sn0", n=1)
        a.instant(3.0, "probe", "probe:sn0", n=2)
        b.instant(1.0, "probe", "probe:sn1", n=3)
        b.instant(2.0, "probe", "probe:sn1", n=4)
        merged = merge_events([a, b])
        assert [dict(e.attrs)["n"] for e in merged] == [1, 3, 4, 2]
