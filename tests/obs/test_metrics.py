"""MetricsRegistry and its instruments."""

import json

import pytest

from repro.obs import MetricsRegistry


class TestCounter:
    def test_inc_and_default(self):
        reg = MetricsRegistry()
        reg.inc("requests")
        reg.inc("requests", 2)
        assert reg.get_counter("requests") == 3
        assert reg.get_counter("never_touched") == 0

    def test_negative_increment_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("requests", -1)


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.add(-2)
        assert reg.gauge("depth").value == 3


class TestTimeWeightedGauge:
    def test_mean_weighs_by_duration(self):
        clock = {"t": 0.0}
        reg = MetricsRegistry(now=lambda: clock["t"])
        g = reg.time_gauge("queue_length")
        g.set(4)            # 4 from t=0
        clock["t"] = 8.0
        g.set(0)            # 0 from t=8
        clock["t"] = 10.0
        # (4*8 + 0*2) / 10
        assert g.mean() == pytest.approx(3.2)
        assert g.value == 0


class TestHistogram:
    def test_stats_and_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("service_time")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean() == pytest.approx(2.5)
        assert h.percentile(50) == pytest.approx(2.5)
        snap = h.snapshot()
        assert snap["min"] == 1.0 and snap["max"] == 4.0
        assert {"p50", "p95", "p99"} <= snap.keys()

    def test_empty_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("empty")
        assert h.snapshot() == {"count": 0}
        with pytest.raises(ValueError):
            h.mean()


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_cross_type_name_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")
        with pytest.raises(ValueError):
            reg.time_gauge("x")

    def test_to_json_is_deterministic_and_serialisable(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a", 2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        doc = reg.to_json()
        assert list(doc["counters"]) == ["a", "b"]
        # Round-trips through JSON without custom encoders.
        assert json.loads(json.dumps(doc)) == doc

    def test_summary_flattens_all_instruments(self):
        clock = {"t": 0.0}
        reg = MetricsRegistry(now=lambda: clock["t"])
        reg.inc("done", 3)
        reg.time_gauge("q").set(2)
        clock["t"] = 4.0
        reg.histogram("lat").observe(0.5)
        s = reg.summary()
        assert s["done"] == 3
        assert s["q.mean"] == pytest.approx(2.0)
        assert s["q.last"] == 2
        assert s["lat.count"] == 1
