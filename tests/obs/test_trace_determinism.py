"""End-to-end tracing: determinism and span-chain acceptance.

Two runs with the same seed must serialise to byte-identical trace
exports — the guarantee the whole tracer design (no memory addresses,
no wall-clock, sorted attrs, counter-based span ids) exists to uphold.
"""

import json

import pytest

from repro.cluster.config import MB
from repro.core import Scheme, WorkloadSpec, run_scheme
from repro.faults import scenario
from repro.obs import Tracer, chrome_trace
from repro.pvfs.client import reset_parent_ids
from repro.pvfs.requests import reset_request_ids

SPEC = dict(kernel="sum", n_requests=4, request_bytes=8 * MB, seed=7)


def _traced_run(scheme, fault_schedule=None, spec=None):
    # Request/parent ids are module-global counters; rebase them so two
    # in-process runs number their requests identically.
    reset_request_ids()
    reset_parent_ids()
    tracer = Tracer()
    run_scheme(scheme, WorkloadSpec(**(spec or SPEC)),
               fault_schedule=fault_schedule, tracer=tracer)
    return tracer


def _export_bytes(tracer, label):
    return json.dumps(chrome_trace({label: tracer}),
                      sort_keys=True, separators=(",", ":"))


class TestByteIdenticalExports:
    @pytest.mark.parametrize("scheme", list(Scheme), ids=lambda s: s.value)
    def test_same_seed_same_bytes(self, scheme):
        a = _export_bytes(_traced_run(scheme), scheme.value)
        b = _export_bytes(_traced_run(scheme), scheme.value)
        assert a == b
        assert len(json.loads(a)["spans"]) > 0

    def test_fault_run_same_seed_same_bytes(self):
        def run():
            # Degrade one node mid-run so fault + checkpoint/migrate
            # events land inside the trace.
            return _traced_run(
                Scheme.DOSAS,
                fault_schedule=scenario("degraded-node", at=0.01),
            )

        a, b = run(), run()
        assert a.events == b.events
        assert _export_bytes(a, "dosas") == _export_bytes(b, "dosas")
        assert a.by_kind("fault"), "the fault should have been traced"


class TestSpanChainAcceptance:
    def test_every_completed_request_has_a_closed_chain(self):
        tracer = _traced_run(Scheme.DOSAS)
        replies = tracer.by_kind("reply")
        assert replies, "the run should complete requests"
        for reply in replies:
            chain = [e.kind for e in tracer.for_request(reply.rid)]
            for step in ("enqueue", "policy-decision", "dispatch", "reply"):
                assert step in chain, f"rid {reply.rid} missing {step}"
            # enqueue precedes decision precedes dispatch precedes reply.
            order = [chain.index(s) for s in
                     ("enqueue", "policy-decision", "dispatch", "reply")]
            assert order == sorted(order)
        assert tracer.open_spans() == []

    def test_ts_requests_close_without_policy_steps(self):
        tracer = _traced_run(Scheme.TS)
        assert tracer.open_spans() == []
        assert tracer.by_kind("reply")
        # TS never consults the runtime: no policy decisions traced.
        assert tracer.by_kind("policy-decision") == []


class TestDisabledTracing:
    def test_runs_without_tracer_record_nothing(self):
        from repro.obs import NULL_TRACER

        before = len(NULL_TRACER.events)
        run_scheme(Scheme.DOSAS, WorkloadSpec(**SPEC))
        assert len(NULL_TRACER.events) == before == 0
