"""Chrome trace export, validation, and file round-trip."""

import json

import pytest

from repro.obs import (
    SpanEvent,
    Tracer,
    chrome_trace,
    events_from_file,
    format_trace_summary,
    unclosed_spans,
    validate_chrome_trace,
    write_chrome_trace,
)


def _sample_tracer():
    tr = Tracer()
    tr.begin(0.0, "request", "server:sn0", rid=1, io="active")
    tr.instant(0.0, "enqueue", "server:sn0", rid=1)
    tr.instant(0.5, "dispatch", "server:sn0", rid=1, mode="kernel")
    tr.instant(1.0, "reply", "server:sn0", rid=1)
    tr.end(1.0, "request", "server:sn0", rid=1, outcome="completed")
    tr.instant(0.2, "probe", "probe:sn0", n=1)
    return tr


class TestChromeTrace:
    def test_structure(self):
        doc = chrome_trace(_sample_tracer(), run_label="dosas")
        assert set(doc) == {"traceEvents", "displayTimeUnit", "spans"}
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"]: e["args"]["name"] for e in metas
                 if e["name"] == "process_name"}
        assert names == {"process_name": "dosas"}
        threads = {e["args"]["name"] for e in metas
                   if e["name"] == "thread_name"}
        assert threads == {"server:sn0", "probe:sn0"}

    def test_times_in_microseconds(self):
        doc = chrome_trace(_sample_tracer())
        reply = [e for e in doc["traceEvents"] if e["name"] == "reply"]
        assert reply[0]["ts"] == 1_000_000.0

    def test_async_events_carry_span_id(self):
        doc = chrome_trace(_sample_tracer())
        spans = [e for e in doc["traceEvents"] if e["ph"] in ("b", "e")]
        assert all(e["id"] == 1 for e in spans)

    def test_instants_are_thread_scoped(self):
        doc = chrome_trace(_sample_tracer())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_multi_run_gets_one_pid_per_label(self):
        doc = chrome_trace({"ts": _sample_tracer(), "dosas": _sample_tracer()})
        pids = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                if e["name"] == "process_name"}
        assert pids == {"ts": 0, "dosas": 1}
        runs = {d["run"] for d in doc["spans"]}
        assert runs == {"ts", "dosas"}

    def test_valid_against_schema(self):
        assert validate_chrome_trace(chrome_trace(_sample_tracer())) == []


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) == ["top level: expected an object"]

    def test_rejects_missing_arrays(self):
        assert validate_chrome_trace({}) == ["traceEvents: missing or not an array"]
        assert validate_chrome_trace({"traceEvents": []}) == [
            "spans: missing or not an array"
        ]

    def test_flags_bad_phase_and_kind(self):
        doc = chrome_trace(_sample_tracer())
        doc["traceEvents"][2]["ph"] = "X"
        doc["spans"][0]["kind"] = "nonsense"
        errors = validate_chrome_trace(doc)
        assert any("unexpected phase 'X'" in e for e in errors)
        assert any("unknown span kind 'nonsense'" in e for e in errors)

    def test_flags_async_without_id(self):
        doc = chrome_trace(_sample_tracer())
        for e in doc["traceEvents"]:
            if e["ph"] == "b":
                del e["id"]
        assert any("needs an integer id" in e
                   for e in validate_chrome_trace(doc))

    def test_error_cap(self):
        doc = {"traceEvents": [{} for _ in range(100)], "spans": []}
        assert len(validate_chrome_trace(doc, max_errors=5)) == 5


class TestFileRoundTrip:
    def test_write_then_read_back(self, tmp_path):
        tr = _sample_tracer()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tr)
        events = events_from_file(str(path))
        assert events == tr.events

    def test_read_back_rejects_corruption(self, tmp_path):
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(str(path), _sample_tracer())
        doc["spans"][0]["phase"] = "z"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError):
            events_from_file(str(path))


class TestSpanAccounting:
    def test_unclosed_spans(self):
        events = [
            SpanEvent(0.0, "request", "b", "server:sn0", rid=1, span_id=1),
            SpanEvent(1.0, "request", "e", "server:sn0", rid=1, span_id=1),
            SpanEvent(0.0, "kernel", "b", "ass:sn0", rid=2, span_id=2),
        ]
        assert unclosed_spans(events) == [("kernel", 2)]

    def test_summary_mentions_balance(self):
        tr = _sample_tracer()
        text = format_trace_summary(tr.events)
        assert "all spans closed" in text
        tr.begin(2.0, "kernel", "ass:sn0", rid=9)
        assert "1 unclosed spans" in format_trace_summary(tr.events)
