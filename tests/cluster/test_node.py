"""CPU core pool and node models."""

import pytest

from repro.sim import Environment, Interrupt
from repro.cluster import ComputeNode, NodeSpec, StorageNode
from repro.cluster.node import ComputeInterrupted, CpuCores

MB = 1024 * 1024


class TestCpuCores:
    def test_single_compute_duration(self, env):
        cpu = CpuCores(env, NodeSpec(cores=2))

        def proc(env, cpu):
            done = yield from cpu.compute(80 * MB, 80 * MB)
            return (env.now, done)

        t, done = env.run(until=env.process(proc(env, cpu)))
        assert t == pytest.approx(1.0)
        assert done == 80 * MB

    def test_core_speed_scales_rate(self, env):
        cpu = CpuCores(env, NodeSpec(cores=1, core_speed=2.0))

        def proc(env, cpu):
            yield from cpu.compute(80 * MB, 80 * MB)
            return env.now

        assert env.run(until=env.process(proc(env, cpu))) == pytest.approx(0.5)

    def test_contention_serialises_beyond_cores(self, env):
        cpu = CpuCores(env, NodeSpec(cores=2))
        finishes = []

        def proc(env, cpu):
            yield from cpu.compute(80 * MB, 80 * MB)
            finishes.append(env.now)

        for _ in range(4):
            env.process(proc(env, cpu))
        env.run()
        assert finishes == pytest.approx([1, 1, 2, 2])

    def test_already_done_shortens_work(self, env):
        cpu = CpuCores(env, NodeSpec(cores=1))

        def proc(env, cpu):
            yield from cpu.compute(80 * MB, 80 * MB, already_done=40 * MB)
            return env.now

        assert env.run(until=env.process(proc(env, cpu))) == pytest.approx(0.5)

    def test_already_complete_returns_instantly(self, env):
        cpu = CpuCores(env, NodeSpec(cores=1))

        def proc(env, cpu):
            done = yield from cpu.compute(10, 100, already_done=10)
            return (env.now, done)

        assert env.run(until=env.process(proc(env, cpu))) == (0, 10)

    def test_interrupt_reports_partial_progress(self, env):
        cpu = CpuCores(env, NodeSpec(cores=1))
        out = {}

        def victim(env, cpu):
            try:
                yield from cpu.compute(80 * MB, 80 * MB)
            except ComputeInterrupted as ci:
                out["done"] = ci.bytes_done
                out["cause"] = ci.cause

        def attacker(env, p):
            yield env.timeout(0.25)
            p.interrupt("migrate")

        p = env.process(victim(env, cpu))
        env.process(attacker(env, p))
        env.run()
        assert out["done"] == pytest.approx(20 * MB)
        assert out["cause"] == "migrate"

    def test_interrupt_while_queued_reports_zero_progress(self, env):
        cpu = CpuCores(env, NodeSpec(cores=1))
        out = {}

        def holder(env, cpu):
            yield from cpu.compute(80 * MB, 80 * MB)

        def victim(env, cpu):
            try:
                yield from cpu.compute(80 * MB, 80 * MB)
            except ComputeInterrupted as ci:
                out["done"] = ci.bytes_done

        def attacker(env, p):
            yield env.timeout(0.5)  # victim still queued (holder runs 1s)
            p.interrupt()

        env.process(holder(env, cpu))
        p = env.process(victim(env, cpu))
        env.process(attacker(env, p))
        env.run()
        assert out["done"] == 0

    def test_interrupt_releases_core(self, env):
        cpu = CpuCores(env, NodeSpec(cores=1))
        finishes = []

        def victim(env, cpu):
            try:
                yield from cpu.compute(80 * MB, 80 * MB)
            except ComputeInterrupted:
                pass

        def other(env, cpu):
            yield from cpu.compute(80 * MB, 80 * MB)
            finishes.append(env.now)

        def attacker(env, p):
            yield env.timeout(0.5)
            p.interrupt()

        p = env.process(victim(env, cpu))
        env.process(other(env, cpu))
        env.process(attacker(env, p))
        env.run()
        # Other gets the core at 0.5 and runs a full second.
        assert finishes == pytest.approx([1.5])

    def test_utilization_tracks_busy_cores(self, env):
        cpu = CpuCores(env, NodeSpec(cores=2))
        samples = []

        def worker(env, cpu):
            yield from cpu.compute(80 * MB, 80 * MB)

        def sampler(env, cpu):
            yield env.timeout(0.5)
            samples.append(cpu.utilization())
            yield env.timeout(1)
            samples.append(cpu.utilization())

        env.process(worker(env, cpu))
        env.process(sampler(env, cpu))
        env.run()
        assert samples == [0.5, 0.0]

    def test_validation(self, env):
        cpu = CpuCores(env, NodeSpec(cores=1))
        with pytest.raises(ValueError):
            list(cpu.compute(-1, 10))
        with pytest.raises(ValueError):
            list(cpu.compute(10, 0))


class TestNodes:
    def test_memory_utilization(self, env):
        node = ComputeNode(env, "cn0", NodeSpec(memory_bytes=1000))

        def proc(env, node):
            yield node.memory.put(250)
            return node.memory_utilization()

        assert env.run(until=env.process(proc(env, node))) == pytest.approx(0.25)

    def test_disk_read_time(self, env):
        node = StorageNode(env, "sn0", NodeSpec(disk_bandwidth=100 * MB))

        def proc(env, node):
            yield from node.disk_read(50 * MB)
            return env.now

        assert env.run(until=env.process(proc(env, node))) == pytest.approx(0.5)

    def test_disk_read_validation(self, env):
        node = StorageNode(env, "sn0", NodeSpec())
        with pytest.raises(ValueError):
            list(node.disk_read(-1))
