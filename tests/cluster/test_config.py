"""Cluster configuration validation and the Discfarm preset."""

import pytest

from repro.cluster import ClusterConfig, GB, MB, NodeSpec, discfarm_config
from repro.cluster.config import (
    DISCFARM_BANDWIDTH,
    DISCFARM_BANDWIDTH_MAX,
    DISCFARM_BANDWIDTH_MIN,
)


class TestNodeSpec:
    def test_defaults(self):
        spec = NodeSpec()
        assert spec.cores == 2
        assert spec.core_speed == 1.0

    @pytest.mark.parametrize("field,value", [
        ("cores", 0),
        ("cores", -1),
        ("core_speed", 0),
        ("memory_bytes", 0),
        ("disk_bandwidth", -5),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            NodeSpec(**{field: value})


class TestClusterConfig:
    def test_defaults_are_paper_like(self):
        cfg = ClusterConfig()
        assert cfg.network_bandwidth == 118 * MB
        assert cfg.storage_spec.cores == 2

    @pytest.mark.parametrize("kwargs", [
        {"n_compute": 0},
        {"n_storage": -1},
        {"network_bandwidth": 0},
        {"bandwidth_jitter": 1.0},
        {"bandwidth_jitter": -0.1},
        {"stripe_size": 0},
        {"network_latency": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)

    def test_with_copies(self):
        cfg = ClusterConfig()
        cfg2 = cfg.with_(n_storage=3)
        assert cfg2.n_storage == 3
        assert cfg.n_storage == 1
        assert cfg2.network_bandwidth == cfg.network_bandwidth


class TestDiscfarm:
    def test_paper_constants(self):
        assert DISCFARM_BANDWIDTH == 118 * MB
        assert DISCFARM_BANDWIDTH_MIN == 111 * MB
        assert DISCFARM_BANDWIDTH_MAX == 120 * MB

    def test_default_shape(self):
        cfg = discfarm_config()
        assert cfg.n_storage == 1
        assert cfg.n_compute == 64
        assert cfg.storage_spec.cores == 2
        assert cfg.bandwidth_jitter == 0.0

    def test_jitter_envelope_matches_observed_range(self):
        cfg = discfarm_config(jitter=True)
        half_width = (DISCFARM_BANDWIDTH_MAX - DISCFARM_BANDWIDTH_MIN) / 2
        assert cfg.bandwidth_jitter == pytest.approx(half_width / DISCFARM_BANDWIDTH)

    def test_scales_with_storage(self):
        cfg = discfarm_config(n_storage=4)
        assert cfg.n_compute == 256
