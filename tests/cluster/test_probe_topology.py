"""System probes and cluster topology."""

import pytest

from repro.sim import Environment
from repro.cluster import (
    ClusterTopology,
    FairShareLink,
    NodeProber,
    NodeSpec,
    StorageNode,
    SystemProbe,
    discfarm_config,
)

MB = 1024 * 1024


class TestSystemProbe:
    def _probe(self, **overrides):
        base = dict(
            time=0.0, cpu_utilization=0.5, memory_utilization=0.25,
            io_queue_length=10, active_queue_length=4,
            queued_bytes=1000.0, active_bytes=400.0,
        )
        base.update(overrides)
        return SystemProbe(**base)

    def test_normal_bytes_derived(self):
        p = self._probe()
        assert p.normal_bytes == 600.0

    def test_saturation(self):
        assert self._probe(cpu_utilization=1.0).is_saturated
        assert not self._probe(cpu_utilization=0.9).is_saturated

    @pytest.mark.parametrize("overrides", [
        {"cpu_utilization": 1.5},
        {"memory_utilization": -0.1},
        {"io_queue_length": -1},
        {"active_queue_length": 11},  # exceeds io_queue_length
    ])
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            self._probe(**overrides)


class TestNodeProber:
    def test_probe_reads_node_and_queue(self, env):
        node = StorageNode(env, "sn0", NodeSpec(cores=2))
        prober = NodeProber(node, lambda: (5, 2, 640 * MB, 256 * MB))

        def busy(env, node):
            yield from node.cpu.compute(80 * MB, 80 * MB)

        def sample(env, prober):
            yield env.timeout(0.5)
            return prober.probe()

        env.process(busy(env, node))
        probe = env.run(until=env.process(sample(env, prober)))
        assert probe.cpu_utilization == 0.5
        assert probe.io_queue_length == 5
        assert probe.active_queue_length == 2
        assert probe.active_bytes == 256 * MB
        assert prober.latest() is probe
        assert len(prober.history) == 1

    def test_latest_none_before_first(self, env):
        node = StorageNode(env, "sn0", NodeSpec())
        assert NodeProber(node).latest() is None


class TestClusterTopology:
    def test_counts_from_config(self, env):
        topo = ClusterTopology(env, discfarm_config(n_storage=2))
        assert len(topo.storage_nodes) == 2
        assert len(topo.compute_nodes) == 128
        assert len(topo.links) == 2

    def test_link_lookup(self, env):
        topo = ClusterTopology(env, discfarm_config())
        sn = topo.storage_node(0)
        assert topo.link_for(sn).name == "sn0.nic"

    def test_graph_structure(self, env):
        topo = ClusterTopology(env, discfarm_config(n_storage=2, n_compute=4))
        # star topology: every node connects through the switch
        assert topo.graph.number_of_nodes() == 2 + 4 + 1
        assert topo.graph.number_of_edges() == 6
        assert topo.path_bandwidth("cn0", "sn1") == 118 * MB

    def test_assignment_round_robin(self, env):
        topo = ClusterTopology(env, discfarm_config(n_storage=2, n_compute=4))
        a = topo.assignment()
        assert a == {"cn0": "sn0", "cn1": "sn1", "cn2": "sn0", "cn3": "sn1"}

    def test_alternate_link_class(self, env):
        topo = ClusterTopology(env, discfarm_config(), link_cls=FairShareLink)
        assert isinstance(topo.link_for(topo.storage_node(0)), FairShareLink)

    def test_jitter_config_propagates(self, env):
        topo = ClusterTopology(env, discfarm_config(jitter=True))
        assert topo.link_for(topo.storage_node(0)).jitter > 0
