"""Link models: serial FIFO and fluid fair sharing."""

import pytest

from repro.sim import Environment
from repro.cluster import FairShareLink, SerialLink

MB = 1024 * 1024


def xfer(env, link, size, start=0.0):
    def proc(env):
        if start:
            yield env.timeout(start)
        yield link.transfer(size)
        return env.now
    return env.process(proc(env))


class TestLinkValidation:
    def test_bad_bandwidth(self, env):
        with pytest.raises(ValueError):
            SerialLink(env, bandwidth=0)

    def test_bad_jitter(self, env):
        with pytest.raises(ValueError):
            SerialLink(env, bandwidth=1, jitter=1.0)

    def test_bad_latency(self, env):
        with pytest.raises(ValueError):
            SerialLink(env, bandwidth=1, latency=-1)

    def test_negative_size_rejected(self, env):
        link = SerialLink(env, bandwidth=100)
        with pytest.raises(ValueError):
            link.transfer(-1)
        fair = FairShareLink(env, bandwidth=100)
        with pytest.raises(ValueError):
            fair.transfer(-1)


class TestSerialLink:
    def test_single_transfer_time(self, env):
        link = SerialLink(env, bandwidth=118 * MB)
        p = xfer(env, link, 118 * MB)
        assert env.run(until=p) == pytest.approx(1.0)

    def test_transfers_serialise(self, env):
        link = SerialLink(env, bandwidth=100.0)
        p1 = xfer(env, link, 100)
        p2 = xfer(env, link, 100)
        p3 = xfer(env, link, 50)
        env.run()
        assert p1.value == pytest.approx(1)
        assert p2.value == pytest.approx(2)
        assert p3.value == pytest.approx(2.5)

    def test_latency_added_per_transfer(self, env):
        link = SerialLink(env, bandwidth=100.0, latency=0.5)
        p1 = xfer(env, link, 100)
        p2 = xfer(env, link, 100)
        env.run()
        assert p1.value == pytest.approx(1.5)
        assert p2.value == pytest.approx(3.0)

    def test_jitter_bounded_and_deterministic(self, env):
        link = SerialLink(env, bandwidth=100.0, jitter=0.1, seed=3)
        times = []
        for _ in range(20):
            times.append(xfer(env, link, 100))
        env.run()
        durations = [t.value for t in times]
        steps = [b - a for a, b in zip([0] + durations, durations)]
        assert all(1 / 1.1 - 1e-9 <= s <= 1 / 0.9 + 1e-9 for s in steps)
        # Determinism: same seed, same draws.
        env2 = Environment()
        link2 = SerialLink(env2, bandwidth=100.0, jitter=0.1, seed=3)
        times2 = [xfer(env2, link2, 100) for _ in range(20)]
        env2.run()
        assert [t.value for t in times2] == durations

    def test_bytes_accounted(self, env):
        link = SerialLink(env, bandwidth=100.0)
        xfer(env, link, 70)
        xfer(env, link, 30)
        env.run()
        assert link.bytes_transferred == 100

    def test_zero_size_transfer(self, env):
        link = SerialLink(env, bandwidth=100.0)
        p = xfer(env, link, 0)
        assert env.run(until=p) == 0


class TestFairShareLink:
    def test_single_flow_full_rate(self, env):
        link = FairShareLink(env, bandwidth=100.0)
        p = xfer(env, link, 200)
        assert env.run(until=p) == pytest.approx(2.0)

    def test_equal_flows_share_equally(self, env):
        link = FairShareLink(env, bandwidth=100.0)
        p1 = xfer(env, link, 100)
        p2 = xfer(env, link, 100)
        env.run()
        assert p1.value == pytest.approx(2.0)
        assert p2.value == pytest.approx(2.0)

    def test_short_flow_departs_long_flow_speeds_up(self, env):
        link = FairShareLink(env, bandwidth=100.0)
        long = xfer(env, link, 150)
        short = xfer(env, link, 50)
        env.run()
        # Both at 50 B/s until short finishes at t=1 (50B);
        # long then has 100 left at full rate: t = 1 + 1 = 2.
        assert short.value == pytest.approx(1.0)
        assert long.value == pytest.approx(2.0)

    def test_late_arrival_shares_remaining(self, env):
        link = FairShareLink(env, bandwidth=100.0)
        early = xfer(env, link, 150)
        late = xfer(env, link, 50, start=1.0)
        env.run()
        assert early.value == pytest.approx(2.0)
        assert late.value == pytest.approx(2.0)

    def test_total_throughput_conserved(self, env):
        """Aggregate completion equals serial completion for same work."""
        link = FairShareLink(env, bandwidth=100.0)
        procs = [xfer(env, link, 100) for _ in range(5)]
        env.run()
        assert max(p.value for p in procs) == pytest.approx(5.0)

    def test_zero_size_completes_immediately(self, env):
        link = FairShareLink(env, bandwidth=100.0)
        p = xfer(env, link, 0)
        assert env.run(until=p) == 0

    def test_latency_delays_flow_start(self, env):
        link = FairShareLink(env, bandwidth=100.0, latency=0.25)
        p = xfer(env, link, 100)
        assert env.run(until=p) == pytest.approx(1.25)

    def test_active_transfers_counter(self, env):
        link = FairShareLink(env, bandwidth=100.0)
        seen = []

        def watcher(env, link):
            yield env.timeout(0.5)
            seen.append(link.active_transfers)

        xfer(env, link, 100)
        xfer(env, link, 100)
        env.process(watcher(env, link))
        env.run()
        assert seen == [2]
