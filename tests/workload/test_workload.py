"""Applications, generator, sweep grids, trace persistence."""

import pytest

from repro.cluster.config import GB, MB
from repro.workload import (
    ArrivalPattern,
    BatchApplication,
    MixedApplication,
    PAPER_REQUEST_COUNTS,
    PAPER_REQUEST_SIZES,
    StreamingApplication,
    WorkloadGenerator,
    load_trace,
    paper_grid,
    save_trace,
    table4_situations,
)
from repro.workload.apps import RequestTemplate


class TestApplications:
    def test_batch_one_request_per_process(self):
        app = BatchApplication("a", 5, 128 * MB, operation="sum")
        assert app.total_requests() == 5
        reqs = list(app.requests_for(0))
        assert len(reqs) == 1 and reqs[0].active and reqs[0].operation == "sum"

    def test_batch_normal_io(self):
        app = BatchApplication("a", 2, 1 * MB)
        assert not next(app.requests_for(0)).active

    def test_streaming_rounds(self):
        app = StreamingApplication("s", 2, 1 * MB, rounds=3, think_time=1.0,
                                   operation="sum")
        assert app.total_requests() == 6
        assert all(r.think_time == 1.0 for r in app.requests_for(0))

    def test_mixed_sequence(self):
        templates = [
            RequestTemplate(size=1 * MB, active=True, operation="sum"),
            RequestTemplate(size=2 * MB, active=False),
        ]
        app = MixedApplication("m", 1, templates)
        got = list(app.requests_for(0))
        assert [r.size for r in got] == [1 * MB, 2 * MB]

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchApplication("a", 0, 1)
        with pytest.raises(ValueError):
            RequestTemplate(size=0, active=False)
        with pytest.raises(ValueError):
            RequestTemplate(size=1, active=True)  # active without op
        with pytest.raises(ValueError):
            StreamingApplication("s", 1, 1, rounds=0)
        with pytest.raises(ValueError):
            MixedApplication("m", 1, [])


class TestGenerator:
    def _apps(self):
        return [
            BatchApplication("a", 3, 1 * MB, operation="sum"),
            StreamingApplication("b", 2, 2 * MB, rounds=2, think_time=1.0),
        ]

    def test_batch_arrivals_at_zero(self):
        plan = WorkloadGenerator(0).plan(self._apps(), ArrivalPattern.BATCH)
        assert len(plan) == 3 + 4
        assert all(r.arrival_time in (0.0, 1.0) for r in plan)

    def test_think_time_spaces_sequences(self):
        plan = WorkloadGenerator(0).plan(self._apps())
        b_reqs = plan.by_process()[("b", 0)]
        assert [r.arrival_time for r in b_reqs] == [0.0, 1.0]

    def test_uniform_window_bounds(self):
        plan = WorkloadGenerator(7).plan(self._apps(), ArrivalPattern.UNIFORM,
                                         window=5.0)
        firsts = [reqs[0].arrival_time for reqs in plan.by_process().values()]
        assert all(0 <= t <= 5 for t in firsts)
        assert len(set(firsts)) > 1  # actually spread

    def test_poisson_deterministic_per_seed(self):
        p1 = WorkloadGenerator(3).plan(self._apps(), ArrivalPattern.POISSON, rate=1)
        p2 = WorkloadGenerator(3).plan(self._apps(), ArrivalPattern.POISSON, rate=1)
        assert [r.arrival_time for r in p1] == [r.arrival_time for r in p2]

    def test_plan_stats(self):
        plan = WorkloadGenerator(0).plan(self._apps())
        assert plan.total_bytes == 3 * MB + 4 * 2 * MB
        assert plan.active_fraction == pytest.approx(3 / 7)

    def test_requests_sorted_by_arrival(self):
        plan = WorkloadGenerator(1).plan(self._apps(), ArrivalPattern.UNIFORM,
                                         window=10)
        times = [r.arrival_time for r in plan]
        assert times == sorted(times)


class TestSweeps:
    def test_paper_constants(self):
        assert PAPER_REQUEST_COUNTS == (1, 2, 4, 8, 16, 32, 64)
        assert PAPER_REQUEST_SIZES == (128 * MB, 256 * MB, 512 * MB, 1 * GB)

    def test_paper_grid_size(self):
        assert len(list(paper_grid("gaussian2d"))) == 28

    def test_table4_has_64_situations(self):
        situations = table4_situations()
        assert len(situations) == 64
        assert len({s.index for s in situations}) == 64
        # canonical grid plus boundary probes
        labels = {s.label() for s in situations}
        assert "gaussian2d/3x128MB" in labels
        assert "sum/64x1024MB" in labels


class TestTraces:
    def test_save_load_roundtrip(self, tmp_path):
        apps = [BatchApplication("a", 3, 1 * MB, operation="sum")]
        plan = WorkloadGenerator(0).plan(apps, ArrivalPattern.UNIFORM, window=2)
        path = tmp_path / "trace.jsonl"
        n = save_trace(plan, path)
        assert n == 3
        loaded = load_trace(path)
        assert len(loaded) == 3
        for a, b in zip(plan, loaded):
            assert (a.app, a.process_index, a.size, a.active, a.operation,
                    a.arrival_time) == (
                b.app, b.process_index, b.size, b.active, b.operation,
                b.arrival_time)

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="bad JSON"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        apps = [BatchApplication("a", 1, 1 * MB)]
        plan = WorkloadGenerator(0).plan(apps)
        path = tmp_path / "t.jsonl"
        save_trace(plan, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_trace(path)) == 1
