"""The enhanced MPI-IO interface (paper Table I semantics)."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.cluster import ClusterTopology, NodeProber, discfarm_config
from repro.core import ActiveStorageClient, ActiveStorageServer
from repro.core.estimator import AlwaysOffloadEstimator, NeverOffloadEstimator
from repro.core.runtime import RuntimeConfig
from repro.mpiio import (
    BYTE,
    DOUBLE,
    Datatype,
    File,
    INT,
    MPIIOContext,
    MPIIOError,
    ResultStruct,
    Status,
)
from repro.pvfs import IOServer, MetadataServer, PVFSClient

MB = 1024 * 1024


class TestDatatypes:
    def test_sizes(self):
        assert BYTE.size == 1
        assert INT.size == 4
        assert DOUBLE.size == 8
        assert DOUBLE.dtype == np.float64

    def test_extent(self):
        assert DOUBLE.extent(10) == 80
        with pytest.raises(ValueError):
            DOUBLE.extent(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Datatype("BAD", 0, "uint8")


class TestStatus:
    def test_get_count(self):
        s = Status()
        s.set_elements(80, finished_at=1.5, demotions=2)
        assert s.get_count(DOUBLE) == 10
        assert s.get_count(BYTE) == 80
        assert s.finished_at == 1.5
        assert s.demotions == 2
        assert not s.cancelled
        assert s.error == 0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Status().set_elements(-1, 0.0)


class TestResultStruct:
    def test_mark_completed(self):
        r = ResultStruct()
        r.mark_completed("result", offset=100)
        assert r.completed and r.buf == "result" and r.offset == 100

    def test_mark_uncompleted(self):
        from repro.kernels.base import KernelCheckpoint
        r = ResultStruct()
        cp = KernelCheckpoint(kernel="sum", bytes_done=64, records=())
        r.mark_uncompleted(cp, fh="handle", offset=64)
        assert not r.completed
        assert r.buf is cp
        assert r.offset == 64


def build_ctx(env, estimator_cls=AlwaysOffloadEstimator, execute=True,
              file_bytes=4 * MB):
    config = discfarm_config(n_storage=1, n_compute=1)
    topo = ClusterTopology(env, config)
    mds = MetadataServer(1, config.stripe_size)
    server = IOServer(env, topo.storage_node(0),
                      topo.link_for(topo.storage_node(0)), mds, config)
    ActiveStorageServer(env, server, estimator_cls(),
                        config=RuntimeConfig(execute_kernels=execute))
    mds.create("/data", size=file_bytes, seed=3)
    node = topo.compute_node(0)
    asc = ActiveStorageClient(env, node, PVFSClient(env, node, [server], mds),
                              execute_kernels=execute)
    return MPIIOContext(env, asc), mds


class TestFilePointer:
    def test_seek_tell_size(self, env):
        ctx, _ = build_ctx(env)
        fh = ctx.open("/data")
        assert fh.get_size() == 4 * MB
        fh.seek(100)
        assert fh.tell() == 100
        fh.seek(50, whence=1)
        assert fh.tell() == 150
        fh.seek(-8, whence=2)
        assert fh.tell() == 4 * MB - 8

    def test_seek_validation(self, env):
        ctx, _ = build_ctx(env)
        fh = ctx.open("/data")
        with pytest.raises(MPIIOError):
            fh.seek(-1)
        with pytest.raises(MPIIOError):
            fh.seek(1, whence=2)
        with pytest.raises(MPIIOError):
            fh.seek(0, whence=9)

    def test_closed_file_rejects_ops(self, env):
        ctx, _ = build_ctx(env)
        fh = ctx.open("/data")
        fh.close()
        with pytest.raises(MPIIOError):
            fh.seek(0)

    def test_read_past_eof_rejected(self, env):
        ctx, _ = build_ctx(env)
        fh = ctx.open("/data")
        fh.seek(0, whence=2)

        def app():
            yield from fh.read(1, DOUBLE)

        with pytest.raises(MPIIOError):
            env.run(until=env.process(app()))


class TestRead:
    def test_read_advances_pointer_and_fills_status(self, env):
        ctx, _ = build_ctx(env)
        fh = ctx.open("/data")
        status = Status()

        def app():
            nbytes = yield from fh.read(1024, DOUBLE, status)
            return nbytes

        nbytes = env.run(until=env.process(app()))
        assert nbytes == 8192
        assert fh.tell() == 8192
        assert status.get_count(DOUBLE) == 1024


class TestReadEx:
    def test_read_ex_completed_with_result(self, env):
        ctx, mds = build_ctx(env)
        fh = ctx.open("/data")
        result = ResultStruct()
        status = Status()

        def app():
            yield from fh.read_ex(result, 4 * MB // 8, DOUBLE, "sum", status)

        env.run(until=env.process(app()))
        expected = float(mds.lookup("/data").read_bytes_as_array(0, 4 * MB).sum())
        assert result.completed
        assert result.buf == pytest.approx(expected)
        assert result.offset == 4 * MB
        assert status.demotions == 0

    def test_read_ex_demoted_path_still_completes(self, env):
        """With a reject-all server, the ASC finishes client-side —
        the struct is completed but status records the demotion."""
        ctx, mds = build_ctx(env, estimator_cls=NeverOffloadEstimator)
        fh = ctx.open("/data")
        result = ResultStruct()
        status = Status()

        def app():
            yield from fh.read_ex(result, 4 * MB // 8, DOUBLE, "sum", status)

        env.run(until=env.process(app()))
        expected = float(mds.lookup("/data").read_bytes_as_array(0, 4 * MB).sum())
        assert result.completed
        assert result.buf == pytest.approx(expected)
        assert status.demotions == 1

    def test_sequential_read_ex_walks_file(self, env):
        ctx, mds = build_ctx(env)
        fh = ctx.open("/data")
        half_elems = 4 * MB // 16

        def app():
            r1, r2 = ResultStruct(), ResultStruct()
            yield from fh.read_ex(r1, half_elems, DOUBLE, "sum")
            yield from fh.read_ex(r2, half_elems, DOUBLE, "sum")
            return r1.buf + r2.buf

        total = env.run(until=env.process(app()))
        expected = float(mds.lookup("/data").read_bytes_as_array(0, 4 * MB).sum())
        assert total == pytest.approx(expected)
        assert fh.tell() == 4 * MB
