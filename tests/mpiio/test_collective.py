"""Collective and non-blocking MPI-IO operations."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.cluster import ClusterTopology, discfarm_config
from repro.core import ActiveStorageClient, ActiveStorageServer
from repro.core.estimator import AlwaysOffloadEstimator
from repro.core.runtime import RuntimeConfig
from repro.mpiio import (
    Communicator,
    DOUBLE,
    MPIIOContext,
    MPIIOError,
    ResultStruct,
    Status,
    iread,
    iread_ex,
)
from repro.pvfs import IOServer, MetadataServer, PVFSClient

MB = 1024 * 1024


def build(n_ranks=4, file_bytes=4 * MB, execute=True):
    env = Environment()
    config = discfarm_config(n_storage=1, n_compute=n_ranks)
    topo = ClusterTopology(env, config)
    mds = MetadataServer(1, config.stripe_size)
    server = IOServer(env, topo.storage_node(0),
                      topo.link_for(topo.storage_node(0)), mds, config)
    ActiveStorageServer(env, server, AlwaysOffloadEstimator(),
                        config=RuntimeConfig(execute_kernels=execute))
    mds.create("/shared", size=file_bytes, seed=6)
    contexts = []
    for i in range(n_ranks):
        node = topo.compute_node(i)
        asc = ActiveStorageClient(env, node, PVFSClient(env, node, [server], mds),
                                  execute_kernels=execute)
        contexts.append(MPIIOContext(env, asc))
    return env, mds, contexts


class TestCommunicator:
    def test_requires_ranks(self):
        with pytest.raises(MPIIOError):
            Communicator([])

    def test_requires_shared_environment(self):
        _env1, _m1, ctx1 = build(1)
        _env2, _m2, ctx2 = build(1)
        with pytest.raises(MPIIOError):
            Communicator([ctx1[0], ctx2[0]])

    def test_partition_covers_exactly(self):
        _env, _mds, contexts = build(3)
        comm = Communicator(contexts)
        spans = [comm.partition(10, r) for r in range(3)]
        assert spans == [(0, 4), (4, 3), (7, 3)]
        assert sum(c for _o, c in spans) == 10
        with pytest.raises(MPIIOError):
            comm.partition(10, 5)

    def test_file_count_checked(self):
        env, _mds, contexts = build(2)
        comm = Communicator(contexts)
        files = comm.open_all("/shared")

        def app():
            yield from comm.read_all(files[:1], 10, DOUBLE)

        with pytest.raises(MPIIOError):
            env.run(until=env.process(app()))


class TestReadAll:
    def test_collective_read_partitions(self):
        env, mds, contexts = build(4, file_bytes=4 * MB)
        comm = Communicator(contexts)
        files = comm.open_all("/shared")
        statuses = [Status() for _ in range(4)]
        total_items = 4 * MB // 8

        def app():
            counts = yield from comm.read_all(files, total_items, DOUBLE,
                                              statuses)
            return counts

        counts = env.run(until=env.process(app()))
        assert sum(counts) == 4 * MB
        assert all(s.get_count(DOUBLE) == total_items // 4 for s in statuses)

    def test_collective_read_ex_sums_to_whole_file(self):
        env, mds, contexts = build(3, file_bytes=3 * MB)
        comm = Communicator(contexts)
        files = comm.open_all("/shared")
        total_items = 3 * MB // 8

        def app():
            outcomes = yield from comm.read_ex_all(files, total_items, DOUBLE,
                                                   "sum")
            return outcomes

        outcomes = env.run(until=env.process(app()))
        total = sum(o.result for o in outcomes)
        expected = float(mds.lookup("/shared").read_bytes_as_array(0, 3 * MB).sum())
        assert total == pytest.approx(expected)

    def test_barrier_semantics(self):
        """read_all returns only after the slowest rank finishes."""
        env, mds, contexts = build(2, file_bytes=236 * MB, execute=False)
        comm = Communicator(contexts)
        files = comm.open_all("/shared")

        def app():
            yield from comm.read_all(files, 236 * MB // 8, DOUBLE)
            return env.now

        t = env.run(until=env.process(app()))
        # Two 118 MB transfers serialise on one NIC: 2 s total.
        assert t == pytest.approx(2.0)


class TestNonBlocking:
    def test_iread_overlaps_with_work(self):
        env, mds, contexts = build(1, file_bytes=118 * MB, execute=False)
        ctx = contexts[0]
        fh = ctx.open("/shared")

        def app():
            req = iread(fh, 118 * MB // 8, DOUBLE)
            assert not req.test()      # still in flight
            yield env.timeout(0.5)     # overlap computation
            nbytes = yield from req.wait()
            return env.now, nbytes, req.test()

        t, nbytes, done = env.run(until=env.process(app()))
        assert t == pytest.approx(1.0)  # overlap, not 1.5
        assert nbytes == 118 * MB
        assert done

    def test_iread_ex_result_struct(self):
        env, mds, contexts = build(1, file_bytes=1 * MB)
        ctx = contexts[0]
        fh = ctx.open("/shared")
        result = ResultStruct()

        def app():
            req = iread_ex(fh, result, 1 * MB // 8, DOUBLE, "sum")
            outcome = yield from req.wait()
            return outcome

        outcome = env.run(until=env.process(app()))
        expected = float(mds.lookup("/shared").read_bytes_as_array(0, 1 * MB).sum())
        assert result.completed
        assert result.buf == pytest.approx(expected)
        assert outcome.result == pytest.approx(expected)


class TestReadAt:
    def test_explicit_offset_leaves_pointer(self):
        env, mds, contexts = build(1, file_bytes=2 * MB, execute=False)
        fh = contexts[0].open("/shared")
        fh.seek(64)

        def app():
            nbytes = yield from fh.read_at(1 * MB, 16, DOUBLE)
            return nbytes

        assert env.run(until=env.process(app())) == 128
        assert fh.tell() == 64

    def test_bounds_checked(self):
        env, mds, contexts = build(1, file_bytes=1 * MB, execute=False)
        fh = contexts[0].open("/shared")

        def app():
            yield from fh.read_at(1 * MB, 1, DOUBLE)

        with pytest.raises(MPIIOError):
            env.run(until=env.process(app()))
